//! The analysis passes.
//!
//! Four passes over the three document dialects:
//!
//! 1. **Rate analysis** — the SDF-style balance/schedulability check:
//!    per-edge element counts, then the abstract Kahn-network execution
//!    of [`fblas_core::composition::rates`] for a deadlock verdict and
//!    exact minimum channel depths (generalizing the paper's multitree
//!    heuristic, Sec. V).
//! 2. **Contract checks** — planner-level stream contracts (tile-order
//!    compatibility, replay-from-computational-producer, shapes) and
//!    codegen spec validation.
//! 3. **Resource feasibility** — composes the `fblas-arch` estimates
//!    over the plan and flags DSP/M20K/bandwidth overcommit per device.
//! 4. **Numeric lints** — W-way accumulation reassociation and
//!    mixed-precision hazards.

use fblas_arch::resources::m20ks_for_buffer;
use fblas_arch::{
    design_overhead, estimate_circuit, interface_module, CircuitClass, Device, FrequencyModel,
    Precision, Resources, RoutineClass,
};
use fblas_core::codegen::{generate, CodegenError, RoutineKind, SpecFile};
use fblas_core::composition::{
    plan, ContractCause, Mdag, Op, Plan, PlanError, PlanNote, PlannedComponent, PlannerConfig,
    Program, RateGraph, RateOutcome, Validity,
};

use crate::diag::{Diagnostic, LintCode, LintReport, Location, Severity};
use crate::input::{Document, GraphDoc, ProgramDoc};

/// Lint one classified document; `file` is used for locations.
pub fn lint_document(doc: &Document, file: &str) -> LintReport {
    match doc {
        Document::Spec(json) => lint_spec(json, file),
        Document::Program(p) => lint_program_doc(p, file),
        Document::Graph(g) => lint_graph_doc(g, file),
    }
}

fn at(file: &str, mut loc: Location) -> Location {
    loc.file = Some(file.to_string());
    loc
}

// ---------------------------------------------------------------------
// Pass 1+2 over graph documents: rate analysis of a raw MDAG.
// ---------------------------------------------------------------------

fn lint_graph_doc(doc: &GraphDoc, file: &str) -> LintReport {
    let mut r = LintReport::new();
    let g = match doc.to_mdag() {
        Ok(g) => g,
        Err(e) => {
            r.push(Diagnostic::new(
                LintCode::FL0010,
                Severity::Error,
                at(file, Location::default()),
                e,
            ));
            return r;
        }
    };
    lint_mdag(&g, file, &mut r);
    r
}

/// Rate-analyze an MDAG: balance equations first, then the abstract
/// execution. Public so the differential harness and the planner lint
/// share one verdict path.
pub fn lint_mdag(g: &Mdag, file: &str, r: &mut LintReport) {
    // Balance check: per-edge element counts must agree for any steady
    // schedule to exist (the SDF balance equations specialize to
    // produced == consumed on a point-to-point FIFO).
    for e in g.edges() {
        if e.produced != e.consumed {
            let name = format!("{}->{}", g.node_name(e.from), g.node_name(e.to));
            r.push(
                Diagnostic::new(
                    LintCode::FL0001,
                    Severity::Error,
                    at(file, Location::channel(name)),
                    format!(
                        "stream count mismatch: producer emits {} elements, consumer expects {}",
                        e.produced, e.consumed
                    ),
                )
                .with_fixit("make producer and consumer agree on the element count".to_string()),
            );
        }
    }
    if r.errors() > 0 {
        return;
    }

    if g.validate() == Validity::Cyclic {
        r.push(Diagnostic::new(
            LintCode::FL0005,
            Severity::Error,
            at(file, Location::default()),
            "cyclic composition: a module's input depends on its own output",
        ));
        return;
    }

    let rg = RateGraph::from_mdag(g);
    match rg.analyze() {
        RateOutcome::Completed { .. } => {
            for im in rg.imbalances() {
                r.push(Diagnostic::new(
                    LintCode::FL0001,
                    Severity::Warning,
                    at(file, Location::channel(rg.channel_name(im.channel))),
                    format!(
                        "channel pushes {} elements but pops {}",
                        im.pushed, im.popped
                    ),
                ));
            }
        }
        RateOutcome::Deadlock { blocked } => match rg.repair() {
            Some(fixes) => {
                for (ch, depth) in &fixes {
                    let name = rg.channel_name(*ch).to_string();
                    r.push(
                        Diagnostic::new(
                            LintCode::FL0004,
                            Severity::Error,
                            at(file, Location::channel(name.clone())),
                            format!(
                                "composition deadlocks at depth {}: the consumer buffers a \
                                 burst before draining",
                                rg.capacity(*ch)
                            ),
                        )
                        .with_fixit(format!("increase the depth of `{name}` to {depth}")),
                    );
                    r.push(Diagnostic::new(
                        LintCode::FL0016,
                        Severity::Note,
                        at(file, Location::channel(name)),
                        format!("exact minimum depth: {depth} (depth {} stalls)", depth - 1),
                    ));
                }
            }
            None => {
                let who = blocked
                    .first()
                    .map(|b| rg.actor_name(b.actor).to_string())
                    .unwrap_or_default();
                r.push(Diagnostic::new(
                    LintCode::FL0017,
                    Severity::Error,
                    at(file, Location::module(who)),
                    "composition deadlocks and no finite channel depth removes the deadlock",
                ));
            }
        },
        RateOutcome::Disconnected { actor, channel, .. } => {
            r.push(Diagnostic::new(
                LintCode::FL0001,
                Severity::Error,
                at(
                    file,
                    Location {
                        module: Some(rg.actor_name(actor).to_string()),
                        channel: Some(rg.channel_name(channel).to_string()),
                        ..Default::default()
                    },
                ),
                "mid-stream disconnect: producer and consumer disagree on element counts",
            ));
        }
        RateOutcome::Budget => {
            r.push(Diagnostic::new(
                LintCode::FL0017,
                Severity::Warning,
                at(file, Location::default()),
                "rate analysis exceeded its step budget; no verdict",
            ));
        }
    }
}

// ---------------------------------------------------------------------
// Program documents: contract pass + rate pass + resources + numerics.
// ---------------------------------------------------------------------

fn lint_program_doc(doc: &ProgramDoc, file: &str) -> LintReport {
    let mut r = LintReport::new();
    let program = match doc.to_program() {
        Ok(p) => p,
        Err(e) => {
            r.push(Diagnostic::new(
                LintCode::FL0010,
                Severity::Error,
                at(file, Location::default()),
                e,
            ));
            return r;
        }
    };
    let cfg = doc.config.planner_config();

    // Retry-soundness scan (FL0018), on the raw ops and *before*
    // planning: an in-place op may already make the plan invalid, and
    // the unsound-replay warning is useful either way.
    if doc.config.retry_max.unwrap_or(1) > 1 {
        for (i, op) in doc.ops.iter().enumerate() {
            let out = match &op.out {
                Some(o) => o,
                None => continue,
            };
            let reads_out = [&op.a, &op.x, &op.y]
                .into_iter()
                .flatten()
                .any(|inp| inp == out);
            if reads_out {
                r.push(
                    Diagnostic::new(
                        LintCode::FL0018,
                        Severity::Warning,
                        at(
                            file,
                            Location {
                                operand: Some(out.clone()),
                                op_index: Some(i),
                                ..Default::default()
                            },
                        ),
                        format!(
                            "`{}` writes `{out}` in place while also reading it; with \
                             retry_max > 1 a replayed attempt would consume the partially \
                             updated value, not the original input",
                            op.op
                        ),
                    )
                    .with_fixit(format!(
                        "stage the result through a scratch operand (e.g. `{out}_next`) and \
                         copy it back after the component commits, so every retry re-reads \
                         the untouched `{out}`"
                    )),
                );
            }
        }
    }

    let plan = match plan(&program, &cfg) {
        Ok(plan) => plan,
        Err(e) => {
            r.push(plan_error_diag(&e, file));
            return r;
        }
    };

    // Surface the planner's structured notes as lints.
    for note in &plan.notes {
        match note {
            PlanNote::Split { before_op, cause } => {
                let (code, loc) = cause_code(cause);
                r.push(
                    Diagnostic::new(
                        code,
                        Severity::Note,
                        at(file, loc),
                        format!("op #{before_op} starts a new component: {cause}"),
                    )
                    .with_fixit(
                        "the planner split the program into sequential components \
                         communicating through DRAM (the paper's fix (b))"
                            .to_string(),
                    ),
                );
            }
            PlanNote::DeepChannel {
                component,
                channel,
                depth,
            } => {
                r.push(Diagnostic::new(
                    LintCode::FL0016,
                    Severity::Note,
                    at(file, Location::channel(channel.clone())),
                    format!(
                        "component {} requires channel `{channel}` at depth {depth} \
                         (the paper's fix (a))",
                        component + 1
                    ),
                ));
            }
        }
    }

    // Rate-certify every planned component at its instantiated depths.
    for (ci, c) in plan.components.iter().enumerate() {
        let mut sub = LintReport::new();
        lint_mdag(&c.mdag, file, &mut sub);
        // Deep channels the planner already derived are resized before
        // instantiation, so under-depth findings on a deep-channel plan
        // are expected only when the config forbids deep channels.
        if !c.deep_channels.is_empty() && cfg.allow_deep_channels {
            sub.diagnostics.retain(|d| {
                !(d.code == LintCode::FL0004
                    && c.deep_channels
                        .iter()
                        .any(|(name, _)| d.location.channel.as_deref() == Some(name.as_str())))
            });
        }
        for mut d in sub.diagnostics {
            d.message = format!("component {}: {}", ci + 1, d.message);
            r.push(d);
        }
    }

    lint_plan_resources(&program, &plan, doc, file, &mut r);
    lint_program_numerics(&program, doc, file, &mut r);
    r
}

fn plan_error_diag(e: &PlanError, file: &str) -> Diagnostic {
    match e {
        PlanError::UnknownOperand(n) => Diagnostic::new(
            LintCode::FL0006,
            Severity::Error,
            at(file, Location::operand(n.clone())),
            format!("unknown operand `{n}`"),
        )
        .with_fixit(format!("declare `{n}` as a vector, matrix, or scalar")),
        PlanError::ShapeMismatch { operand, expected } => Diagnostic::new(
            LintCode::FL0007,
            Severity::Error,
            at(file, Location::operand(operand.clone())),
            format!("operand `{operand}`: expected {expected}"),
        )
        .with_fixit(format!("resize `{operand}` to {expected}")),
        PlanError::MultipleWriters(n) => Diagnostic::new(
            LintCode::FL0008,
            Severity::Error,
            at(file, Location::operand(n.clone())),
            format!("operand `{n}` is written more than once"),
        )
        .with_fixit("use a fresh operand name per result (static single assignment)".to_string()),
        PlanError::Cyclic => Diagnostic::new(
            LintCode::FL0005,
            Severity::Error,
            at(file, Location::default()),
            "cyclic data dependencies",
        ),
        PlanError::Contract(cause) => {
            let (code, loc) = cause_code(cause);
            Diagnostic::new(
                code,
                Severity::Error,
                at(file, loc),
                format!("stream contract violation: {cause}"),
            )
        }
        PlanError::InvalidConfig(reason) => Diagnostic::new(
            LintCode::FL0010,
            Severity::Error,
            at(file, Location::default()),
            format!("invalid planner config: {reason}"),
        ),
    }
}

/// Map a structured contract cause to its lint code and location.
fn cause_code(cause: &ContractCause) -> (LintCode, Location) {
    match cause {
        ContractCause::ReplayFromComputationalProducer { operand, op_index } => (
            LintCode::FL0003,
            Location {
                operand: Some(operand.clone()),
                op_index: Some(*op_index),
                ..Default::default()
            },
        ),
        ContractCause::OnChipMatrixColStreamed { matrix, op_index } => (
            LintCode::FL0002,
            Location {
                operand: Some(matrix.clone()),
                op_index: Some(*op_index),
                ..Default::default()
            },
        ),
        ContractCause::TilingOrderConflict { matrix, op_indices } => (
            LintCode::FL0002,
            Location {
                operand: Some(matrix.clone()),
                op_index: op_indices.first().copied(),
                ..Default::default()
            },
        ),
        ContractCause::InvalidEdge { reason } => {
            (LintCode::FL0001, Location::channel(reason.clone()))
        }
        ContractCause::NeedsChannelDepth { channel, .. } => {
            (LintCode::FL0004, Location::channel(channel.clone()))
        }
        ContractCause::Unschedulable { .. } => (LintCode::FL0017, Location::default()),
    }
}

// ---------------------------------------------------------------------
// Pass 3: resource feasibility over a plan.
// ---------------------------------------------------------------------

fn op_circuit(op: &Op, w: u64) -> CircuitClass {
    match op {
        Op::Copy { .. } | Op::Scal { .. } => CircuitClass::Map { w, ops_per_lane: 1 },
        Op::Axpy { .. } => CircuitClass::MapFused {
            w,
            macs_per_lane: 1,
        },
        Op::Dot { .. } | Op::Gemv { .. } => CircuitClass::MapReduce { w },
        Op::Ger { .. } => CircuitClass::MapFused {
            w,
            macs_per_lane: 1,
        },
    }
}

/// Resources one component demands: its computational circuits, tile
/// buffers, one interface module per DRAM stream, deep-FIFO block RAM,
/// and the fixed design overhead.
fn component_resources(
    program: &Program,
    c: &PlannedComponent,
    cfg: &PlannerConfig,
    device: Device,
    precision: Precision,
    w: u64,
) -> Resources {
    let mut total = design_overhead(device, device.model().hyperflex);
    for &oi in &c.ops {
        let op = &program.ops()[oi];
        let mut est = estimate_circuit(op_circuit(op, w), precision);
        // Level-2 ops buffer a tile of the vector operand on chip.
        if matches!(op, Op::Gemv { .. } | Op::Ger { .. }) {
            est = est.with_buffer(cfg.tn as u64, precision);
        }
        total += est.resources;
    }
    // One interface module per DRAM-facing stream (read_*/write_* nodes).
    let interfaces = c
        .mdag
        .node_ids()
        .filter(|&n| {
            let name = c.mdag.node_name(n);
            name.starts_with("read_") || name.starts_with("write_")
        })
        .count() as u64;
    total += interface_module(precision, w).scaled(interfaces.max(1));
    // Deep FIFOs are spent out of M20K blocks.
    for (_, depth) in &c.deep_channels {
        total.m20ks += m20ks_for_buffer(*depth, precision.elem_bytes());
    }
    total
}

fn lint_plan_resources(
    program: &Program,
    plan: &Plan,
    doc: &ProgramDoc,
    file: &str,
    r: &mut LintReport,
) {
    let device = match doc.config.target_device() {
        Ok(d) => d,
        Err(e) => {
            r.push(Diagnostic::new(
                LintCode::FL0010,
                Severity::Error,
                at(file, Location::default()),
                e,
            ));
            return;
        }
    };
    let precision = match doc.config.target_precision() {
        Ok(p) => p,
        Err(e) => {
            r.push(Diagnostic::new(
                LintCode::FL0010,
                Severity::Error,
                at(file, Location::default()),
                e,
            ));
            return;
        }
    };
    let w = doc.config.vector_width() as u64;
    let cfg = doc.config.planner_config();
    let model = device.model();

    for (ci, c) in plan.components.iter().enumerate() {
        let demand = component_resources(program, c, &cfg, device, precision, w);
        let label = format!("component {} on {}", ci + 1, device.short_name());
        if demand.dsps > model.available.dsps {
            r.push(
                Diagnostic::new(
                    LintCode::FL0011,
                    Severity::Error,
                    at(file, Location::default()),
                    format!(
                        "{label}: DSP overcommit ({} needed, {} available)",
                        demand.dsps, model.available.dsps
                    ),
                )
                .with_fixit("reduce the vectorization width W".to_string()),
            );
        }
        if demand.m20ks > model.available.m20ks {
            r.push(
                Diagnostic::new(
                    LintCode::FL0012,
                    Severity::Error,
                    at(file, Location::default()),
                    format!(
                        "{label}: M20K overcommit ({} needed, {} available)",
                        demand.m20ks, model.available.m20ks
                    ),
                )
                .with_fixit(
                    "shrink tile sizes or split the component instead of deepening channels"
                        .to_string(),
                ),
            );
        }
        // Bandwidth: every interface stream moves W elements per cycle
        // at the achievable clock; concurrent streams share the DRAM
        // banks (paper Sec. VI-B).
        let streams = c
            .mdag
            .node_ids()
            .filter(|&n| {
                let name = c.mdag.node_name(n);
                name.starts_with("read_") || name.starts_with("write_")
            })
            .count() as f64;
        let f = FrequencyModel::new(device).base_hz(RoutineClass::Streaming);
        let demand_bw = streams * w as f64 * precision.elem_bytes() as f64 * f;
        let avail_bw = model.total_dram_bandwidth();
        if demand_bw > avail_bw {
            r.push(
                Diagnostic::new(
                    LintCode::FL0013,
                    Severity::Warning,
                    at(file, Location::default()),
                    format!(
                        "{label}: {} concurrent DRAM streams demand {:.1} GB/s of {:.1} GB/s \
                         available; interface modules will stall",
                        streams as u64,
                        demand_bw / 1e9,
                        avail_bw / 1e9
                    ),
                )
                .with_fixit("lower W or stream fewer operands per component".to_string()),
            );
        }
    }
}

// ---------------------------------------------------------------------
// Pass 4: numeric lints on programs.
// ---------------------------------------------------------------------

fn lint_program_numerics(program: &Program, doc: &ProgramDoc, file: &str, r: &mut LintReport) {
    let w = doc.config.vector_width();
    let precision = match doc.config.target_precision() {
        Ok(p) => p,
        Err(_) => return, // already reported by the resource pass
    };
    if w > 1 {
        for (i, op) in program.ops().iter().enumerate() {
            if matches!(op, Op::Dot { .. } | Op::Gemv { .. }) {
                r.push(Diagnostic::new(
                    LintCode::FL0014,
                    Severity::Note,
                    at(
                        file,
                        Location {
                            op_index: Some(i),
                            ..Default::default()
                        },
                    ),
                    format!(
                        "op #{i} reduces with a {w}-way adder tree: results differ from \
                         sequential accumulation (floating-point reassociation)"
                    ),
                ));
            }
        }
    }
    if !precision.native_accumulation() {
        r.push(Diagnostic::new(
            LintCode::FL0015,
            Severity::Warning,
            at(file, Location::default()),
            "double precision has no native DSP accumulation on the modeled devices; \
             reductions use the two-stage interleaved accumulator (extra latency and M20K)",
        ));
    }
}

// ---------------------------------------------------------------------
// Spec documents: codegen validation + numeric lints.
// ---------------------------------------------------------------------

fn lint_spec(json: &str, file: &str) -> LintReport {
    let mut r = LintReport::new();
    let spec = match SpecFile::from_json(json) {
        Ok(s) => s,
        Err(e) => {
            r.push(Diagnostic::new(
                LintCode::FL0010,
                Severity::Error,
                at(file, Location::default()),
                format!("specification JSON error: {e}"),
            ));
            return r;
        }
    };
    for rs in &spec.routines {
        let loc = at(file, Location::operand(rs.kernel_name().to_string()));
        match generate(rs) {
            Err(CodegenError::UnknownRoutine(n)) => {
                r.push(
                    Diagnostic::new(
                        LintCode::FL0009,
                        Severity::Error,
                        loc,
                        format!("unknown routine `{n}`"),
                    )
                    .with_fixit(
                        "blas_name is an s/d prefix plus one of the 22 FBLAS routines".to_string(),
                    ),
                );
            }
            Err(e) => {
                r.push(Diagnostic::new(
                    LintCode::FL0010,
                    Severity::Error,
                    loc,
                    e.to_string(),
                ));
            }
            Ok(kernel) => {
                let reduces = matches!(
                    kernel.kind,
                    RoutineKind::Dot
                        | RoutineKind::Sdsdot
                        | RoutineKind::Nrm2
                        | RoutineKind::Asum
                        | RoutineKind::Gemv
                        | RoutineKind::Gemm
                        | RoutineKind::Syrk
                        | RoutineKind::Syr2k
                );
                if reduces && kernel.width > 1 {
                    r.push(Diagnostic::new(
                        LintCode::FL0014,
                        Severity::Note,
                        loc.clone(),
                        format!(
                            "`{}` at W={} reassociates its reduction; bitwise equality with \
                             a sequential reference is not guaranteed",
                            kernel.name, kernel.width
                        ),
                    ));
                }
                if kernel.kind == RoutineKind::Sdsdot {
                    r.push(Diagnostic::new(
                        LintCode::FL0015,
                        Severity::Note,
                        loc.clone(),
                        "sdsdot accumulates single-precision inputs in double precision \
                         (mixed-precision by specification)",
                    ));
                }
                if kernel.precision == Precision::Double && reduces {
                    r.push(Diagnostic::new(
                        LintCode::FL0015,
                        Severity::Warning,
                        loc,
                        format!(
                            "`{}` accumulates in double precision without native DSP support; \
                             the two-stage interleaved accumulator adds latency",
                            kernel.name
                        ),
                    ));
                }
            }
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::classify;

    fn lint_str(json: &str) -> LintReport {
        let doc = classify(json).unwrap();
        lint_document(&doc, "test.json")
    }

    #[test]
    fn clean_axpydot_program_is_accepted() {
        let r = lint_str(
            r#"{"program": {
                "operands": [
                    {"name":"w","kind":"vector","len":64},
                    {"name":"v","kind":"vector","len":64},
                    {"name":"u","kind":"vector","len":64},
                    {"name":"z","kind":"vector","len":64},
                    {"name":"beta","kind":"scalar"}
                ],
                "ops": [
                    {"op":"axpy","alpha":-1.0,"x":"v","y":"w","out":"z"},
                    {"op":"dot","x":"z","y":"u","out":"beta"}
                ],
                "config": {"tn":16,"tm":16}
            }}"#,
        );
        assert!(r.accepted(), "{}", r.render_table());
        // The W-way reduction note fires for the DOT.
        assert!(r.diagnostics.iter().any(|d| d.code == LintCode::FL0014));
    }

    #[test]
    fn shape_mismatch_is_fl0007() {
        let r = lint_str(
            r#"{"program": {
                "operands": [
                    {"name":"x","kind":"vector","len":8},
                    {"name":"y","kind":"vector","len":9},
                    {"name":"d","kind":"scalar"}
                ],
                "ops": [{"op":"dot","x":"x","y":"y","out":"d"}]
            }}"#,
        );
        assert!(!r.accepted());
        assert!(r.diagnostics.iter().any(|d| d.code == LintCode::FL0007));
    }

    #[test]
    fn undersized_graph_channel_gets_exact_fixit() {
        let r = lint_str(
            r#"{"graph": {
                "nodes": [
                    {"name":"src","kind":"interface"},
                    {"name":"relay","kind":"compute"},
                    {"name":"join","kind":"compute"}
                ],
                "edges": [
                    {"from":"src","to":"join","produced":96,"consumed":96,"depth":8,"burst":40},
                    {"from":"src","to":"relay","produced":96,"consumed":96,"depth":16},
                    {"from":"relay","to":"join","produced":96,"consumed":96,"depth":16}
                ]
            }}"#,
        );
        assert!(!r.accepted());
        let under = r
            .diagnostics
            .iter()
            .find(|d| d.code == LintCode::FL0004)
            .expect("under-depth finding");
        assert!(under.fixit.as_deref().unwrap().contains("40"));
        assert!(r.diagnostics.iter().any(|d| d.code == LintCode::FL0016));
    }

    #[test]
    fn count_mismatch_graph_is_fl0001() {
        let r = lint_str(
            r#"{"graph": {
                "nodes": [
                    {"name":"a","kind":"interface"},
                    {"name":"b","kind":"compute"}
                ],
                "edges": [{"from":"a","to":"b","produced":10,"consumed":8,"depth":4}]
            }}"#,
        );
        assert!(!r.accepted());
        assert_eq!(r.diagnostics[0].code, LintCode::FL0001);
    }

    #[test]
    fn unknown_routine_spec_is_fl0009() {
        let r = lint_str(r#"{"routines": [{"blas_name": "sfrobnicate"}]}"#);
        assert!(!r.accepted());
        assert_eq!(r.diagnostics[0].code, LintCode::FL0009);
    }

    #[test]
    fn inplace_update_with_retries_warns_fl0018() {
        let doc = r#"{"program": {
            "operands": [
                {"name":"x","kind":"vector","len":64},
                {"name":"y","kind":"vector","len":64}
            ],
            "ops": [{"op":"axpy","alpha":2.0,"x":"x","y":"y","out":"y"}],
            "config": {"tn":8,"tm":8,"retry_max":3}
        }}"#;
        let r = lint_str(doc);
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == LintCode::FL0018)
            .expect("FL0018 finding");
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(d.location.operand.as_deref(), Some("y"));
        assert!(d.fixit.as_deref().unwrap().contains("scratch"));

        // Without a retry budget the in-place update is not a replay
        // hazard: no FL0018 (the plan still fails for its own reasons).
        let no_retry = doc.replace(r#","retry_max":3"#, "");
        let r = lint_str(&no_retry);
        assert!(r.diagnostics.iter().all(|d| d.code != LintCode::FL0018));
    }

    #[test]
    fn double_reduction_spec_warns_mixed_precision() {
        let r = lint_str(r#"{"routines": [{"blas_name": "ddot", "width": 8}]}"#);
        assert!(r.accepted());
        assert!(r.diagnostics.iter().any(|d| d.code == LintCode::FL0014));
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::FL0015 && d.severity == Severity::Warning));
    }
}
