//! The analysis passes.
//!
//! Every MDAG-level pass runs over a shared [`AnalysisCtx`] — the
//! graph, its per-module semantics, and the execution assumptions
//! (chunk size, scheduler budget, armed recovery guards, planner
//! channel deepenings):
//!
//! 1. **Rate analysis** — the SDF-style balance/schedulability check:
//!    per-edge element counts, then the abstract Kahn-network execution
//!    of [`fblas_core::composition::rates`] for a deadlock verdict and
//!    exact minimum channel depths (generalizing the paper's multitree
//!    heuristic, Sec. V).
//! 2. **Dataflow passes** ([`crate::dataflow`]) — dead/pass-through
//!    module elimination (FL0023/FL0024/FL0026), channel depth
//!    tightening under the chosen chunk size (FL0021/FL0022), and
//!    fusion legality (FL0019/FL0020/FL0025) with its serializable
//!    [`FusionPlan`] artifact.
//! 3. **Contract checks** — planner-level stream contracts (tile-order
//!    compatibility, replay-from-computational-producer, shapes) and
//!    codegen spec validation.
//! 4. **Resource feasibility** — composes the `fblas-arch` estimates
//!    over the plan and flags DSP/M20K/bandwidth overcommit per device.
//! 5. **Numeric lints** — W-way accumulation reassociation and
//!    mixed-precision hazards.

use fblas_arch::resources::m20ks_for_buffer;
use fblas_arch::{
    design_overhead, estimate_circuit, interface_module, CircuitClass, Device, FrequencyModel,
    Precision, Resources, RoutineClass,
};
use fblas_core::codegen::{generate, CodegenError, RoutineKind, SpecFile};
use fblas_core::composition::{
    plan, ContractCause, Mdag, Op, Plan, PlanError, PlanNote, PlannedComponent, PlannerConfig,
    Program, RateGraph, RateOutcome, Validity,
};
use fblas_hlssim::ModuleKind;

use crate::dataflow::{solve, FlowGraph, LiveSinks};
use crate::diag::{Diagnostic, LintCode, LintReport, Location, Severity};
use crate::fusion::{analyze_fusion, infer_sems, sems_for_component, FusionPlan, ModuleSem};
use crate::input::{Document, GraphDoc, ProgramDoc};

/// A lint run's full result: the diagnostics plus the fusion-plan
/// artifacts the analysis derived (one per analyzable graph document,
/// one per planned program component).
#[derive(Debug)]
pub struct LintOutput {
    /// The diagnostics.
    pub report: LintReport,
    /// Fusion plans, in analysis order.
    pub fusion: Vec<FusionPlan>,
}

/// Lint one classified document; `file` is used for locations.
pub fn lint_document(doc: &Document, file: &str) -> LintReport {
    lint_document_full(doc, file).report
}

/// Lint one classified document and keep the fusion artifacts.
pub fn lint_document_full(doc: &Document, file: &str) -> LintOutput {
    match doc {
        Document::Spec(json) => LintOutput {
            report: lint_spec(json, file),
            fusion: Vec::new(),
        },
        Document::Program(p) => lint_program_doc(p, file),
        Document::Graph(g) => lint_graph_doc(g, file),
    }
}

fn at(file: &str, mut loc: Location) -> Location {
    loc.file = Some(file.to_string());
    loc
}

// ---------------------------------------------------------------------
// The shared analysis context and the MDAG-level passes.
// ---------------------------------------------------------------------

/// Everything the MDAG-level passes read. One context per graph (or
/// per planned component); the passes run in a fixed order and later
/// passes assume the invariants earlier ones established (fusion only
/// runs on balanced, acyclic, schedulable graphs).
pub struct AnalysisCtx<'a> {
    /// Source file, for locations.
    pub file: &'a str,
    /// Label the fusion plan records (programs append `#c<i>`).
    pub plan_label: String,
    /// The graph under analysis.
    pub mdag: &'a Mdag,
    /// Per-node semantics (index == node index).
    pub sems: Vec<ModuleSem>,
    /// Transport chunk size the depth-tightening pass assumes.
    pub chunk: u64,
    /// Abstract-scheduler step budget override.
    pub budget: Option<u64>,
    /// Whether retry/fault guards are armed (blocks fusion).
    pub recovery_armed: bool,
    /// Channels the planner already deepened (`name -> depth`),
    /// applied to the rate graph before the verdict.
    pub deep_channels: &'a [(String, u64)],
}

impl<'a> AnalysisCtx<'a> {
    /// Context for a standalone graph with inferred semantics and
    /// default execution assumptions.
    pub fn for_graph(mdag: &'a Mdag, file: &'a str) -> Self {
        AnalysisCtx {
            file,
            plan_label: file.to_string(),
            mdag,
            sems: infer_sems(mdag, 16),
            chunk: fblas_hlssim::default_chunk() as u64,
            budget: None,
            recovery_armed: false,
            deep_channels: &[],
        }
    }
}

/// Run every MDAG-level pass over `ctx`. Returns the fusion plan when
/// the graph is well-formed enough to have one (balanced, acyclic, and
/// schedulable).
pub fn analyze_mdag(ctx: &AnalysisCtx, r: &mut LintReport) -> Option<FusionPlan> {
    if !pass_balance(ctx, r) {
        return None;
    }
    pass_pass_through(ctx, r);
    pass_dead_modules(ctx, r);
    if !pass_cycle(ctx, r) {
        return None;
    }
    let rg = pass_rates(ctx, r)?;
    pass_depth_tightening(ctx, &rg, r);
    Some(pass_fusion(ctx, r))
}

/// Rate-analyze an MDAG: balance equations first, then the abstract
/// execution. Public so the differential harness and the planner lint
/// share one verdict path. (The dataflow passes — fusion, tightening,
/// dead modules — need semantics and run through [`analyze_mdag`].)
pub fn lint_mdag(g: &Mdag, file: &str, r: &mut LintReport) {
    let ctx = AnalysisCtx::for_graph(g, file);
    if !pass_balance(&ctx, r) {
        return;
    }
    if !pass_cycle(&ctx, r) {
        return;
    }
    pass_rates(&ctx, r);
}

/// Balance check: per-edge element counts must agree for any steady
/// schedule to exist (the SDF balance equations specialize to
/// produced == consumed on a point-to-point FIFO). Returns `false` on
/// any violation — the later passes assume balance.
fn pass_balance(ctx: &AnalysisCtx, r: &mut LintReport) -> bool {
    let g = ctx.mdag;
    let mut ok = true;
    for e in g.edges() {
        if e.produced != e.consumed {
            ok = false;
            let name = format!("{}->{}", g.node_name(e.from), g.node_name(e.to));
            r.push(
                Diagnostic::new(
                    LintCode::FL0001,
                    Severity::Error,
                    at(ctx.file, Location::channel(name)),
                    format!(
                        "stream count mismatch: producer emits {} elements, consumer expects {}",
                        e.produced, e.consumed
                    ),
                )
                .with_fixit("make producer and consumer agree on the element count".to_string()),
            );
        }
    }
    ok
}

/// Pass-through modules: a `scal` by α = 1 and a `copy` relaying one
/// stream to one consumer do nothing a channel would not.
fn pass_pass_through(ctx: &AnalysisCtx, r: &mut LintReport) {
    let g = ctx.mdag;
    let n = g.node_count();
    let mut ins = vec![0usize; n];
    let mut outs = vec![0usize; n];
    for e in g.edges() {
        outs[e.from.0] += 1;
        ins[e.to.0] += 1;
    }
    for (i, sem) in ctx.sems.iter().enumerate() {
        let name = g.node_name(fblas_core::composition::NodeId(i)).to_string();
        match sem {
            ModuleSem::Scal { alpha: Some(a) } if *a == 1.0 => {
                r.push(
                    Diagnostic::new(
                        LintCode::FL0023,
                        Severity::Warning,
                        at(ctx.file, Location::module(name.clone())),
                        format!("`{name}` scales by α = 1: a pass-through module"),
                    )
                    .with_fixit(format!(
                        "delete `{name}` and connect its producer to its consumer directly"
                    )),
                );
            }
            ModuleSem::Copy if ins[i] == 1 && outs[i] == 1 => {
                r.push(
                    Diagnostic::new(
                        LintCode::FL0024,
                        Severity::Warning,
                        at(ctx.file, Location::module(name.clone())),
                        format!("`{name}` copies one stream to a single consumer: a pass-through"),
                    )
                    .with_fixit(format!(
                        "delete `{name}` and connect its producer to its consumer directly"
                    )),
                );
            }
            _ => {}
        }
    }
}

/// Dead modules: backward liveness from the interface writes. A
/// compute module whose fixpoint fact is empty produces values nothing
/// ever observes. Skipped when the graph has no write sink at all
/// (then *everything* would be trivially dead — common in synthetic
/// rate-only fixtures).
fn pass_dead_modules(ctx: &AnalysisCtx, r: &mut LintReport) {
    let g = ctx.mdag;
    let n = g.node_count();
    let mut sink_index = vec![None; n];
    let mut sinks = 0usize;
    for (i, slot) in sink_index.iter_mut().enumerate() {
        if ctx.sems[i] == ModuleSem::Write {
            *slot = Some(sinks);
            sinks += 1;
        }
    }
    if sinks == 0 {
        return;
    }
    let fg = FlowGraph::from_mdag(g);
    let sol = solve(
        &fg,
        &LiveSinks {
            sink_index: &sink_index,
        },
    );
    if !sol.converged {
        return;
    }
    for i in 0..n {
        if g.node_kind(fblas_core::composition::NodeId(i)) != ModuleKind::Compute {
            continue;
        }
        if sol.facts_out[i].is_empty() {
            let name = g.node_name(fblas_core::composition::NodeId(i)).to_string();
            r.push(
                Diagnostic::new(
                    LintCode::FL0026,
                    Severity::Warning,
                    at(ctx.file, Location::module(name.clone())),
                    format!("`{name}` is dead: no interface write observes its results"),
                )
                .with_fixit(format!(
                    "remove `{name}` or route its output to a `write_*` sink"
                )),
            );
        }
    }
}

fn pass_cycle(ctx: &AnalysisCtx, r: &mut LintReport) -> bool {
    if ctx.mdag.validate() == Validity::Cyclic {
        r.push(Diagnostic::new(
            LintCode::FL0005,
            Severity::Error,
            at(ctx.file, Location::default()),
            "cyclic composition: a module's input depends on its own output",
        ));
        return false;
    }
    true
}

/// The abstract Kahn-network execution. Planner-deepened channels are
/// applied to the rate graph up front (the instantiated design runs at
/// those depths, so verdicts must too). Returns the analyzed graph on
/// completion, `None` otherwise.
fn pass_rates(ctx: &AnalysisCtx, r: &mut LintReport) -> Option<RateGraph> {
    let mut rg = RateGraph::from_mdag(ctx.mdag);
    for (name, depth) in ctx.deep_channels {
        for ch in 0..rg.channel_count() {
            if rg.channel_name(ch) == name && rg.capacity(ch) < *depth {
                rg.set_capacity(ch, *depth);
            }
        }
    }
    let outcome = match ctx.budget {
        Some(b) => {
            let caps: Vec<u64> = (0..rg.channel_count()).map(|c| rg.capacity(c)).collect();
            rg.analyze_with_budget(&caps, b)
        }
        None => rg.analyze(),
    };
    match outcome {
        RateOutcome::Completed { .. } => {
            for im in rg.imbalances() {
                r.push(Diagnostic::new(
                    LintCode::FL0001,
                    Severity::Warning,
                    at(ctx.file, Location::channel(rg.channel_name(im.channel))),
                    format!(
                        "channel pushes {} elements but pops {}",
                        im.pushed, im.popped
                    ),
                ));
            }
            Some(rg)
        }
        RateOutcome::Deadlock { blocked } => {
            match rg.repair() {
                Some(fixes) => {
                    for (ch, depth) in &fixes {
                        let name = rg.channel_name(*ch).to_string();
                        r.push(
                            Diagnostic::new(
                                LintCode::FL0004,
                                Severity::Error,
                                at(ctx.file, Location::channel(name.clone())),
                                format!(
                                    "composition deadlocks at depth {}: the consumer buffers a \
                                     burst before draining",
                                    rg.capacity(*ch)
                                ),
                            )
                            .with_fixit(format!("increase the depth of `{name}` to {depth}")),
                        );
                        r.push(Diagnostic::new(
                            LintCode::FL0016,
                            Severity::Note,
                            at(ctx.file, Location::channel(name)),
                            format!("exact minimum depth: {depth} (depth {} stalls)", depth - 1),
                        ));
                    }
                }
                None => {
                    let who = blocked
                        .first()
                        .map(|b| rg.actor_name(b.actor).to_string())
                        .unwrap_or_default();
                    r.push(Diagnostic::new(
                        LintCode::FL0017,
                        Severity::Error,
                        at(ctx.file, Location::module(who)),
                        "composition deadlocks and no finite channel depth removes the deadlock",
                    ));
                }
            }
            None
        }
        RateOutcome::Disconnected { actor, channel, .. } => {
            r.push(Diagnostic::new(
                LintCode::FL0001,
                Severity::Error,
                at(
                    ctx.file,
                    Location {
                        module: Some(rg.actor_name(actor).to_string()),
                        channel: Some(rg.channel_name(channel).to_string()),
                        ..Default::default()
                    },
                ),
                "mid-stream disconnect: producer and consumer disagree on element counts",
            ));
            None
        }
        RateOutcome::Budget => {
            // Fail closed: a graph the analyzer cannot rule on must not
            // pass a gate that certifies schedulability.
            r.push(Diagnostic::new(
                LintCode::FL0017,
                Severity::Error,
                at(ctx.file, Location::default()),
                "rate analysis exceeded its step budget with no verdict; treat the \
                 composition as unschedulable or raise the budget",
            ));
            None
        }
    }
}

/// Channel liveness under the chunk size: which instantiated depths
/// are tight and which are provably slack. Only channels deeper than
/// one transport chunk matter — those are the ones spending M20K
/// blocks — and `trig:` bookkeeping channels are skipped.
fn pass_depth_tightening(ctx: &AnalysisCtx, rg: &RateGraph, r: &mut LintReport) {
    for ch in 0..rg.channel_count() {
        let name = rg.channel_name(ch).to_string();
        if name.starts_with("trig:") {
            continue;
        }
        let cap = rg.capacity(ch);
        if cap <= ctx.chunk {
            continue;
        }
        let min = match rg.min_depth(ch) {
            Some(m) => m,
            None => continue,
        };
        // A FIFO shallower than one chunk re-introduces per-element
        // handshakes, so the recommendation floors at the chunk size.
        let rec = min.max(ctx.chunk);
        if rec < cap {
            r.push(
                Diagnostic::new(
                    LintCode::FL0021,
                    Severity::Warning,
                    at(ctx.file, Location::channel(name.clone())),
                    format!(
                        "channel depth {cap} is slack: {min} suffices for completion \
                         (chunk size {})",
                        ctx.chunk
                    ),
                )
                .with_fixit(format!("shrink `{name}` to depth {rec}")),
            );
        } else {
            r.push(Diagnostic::new(
                LintCode::FL0022,
                Severity::Note,
                at(ctx.file, Location::channel(name.clone())),
                format!(
                    "channel depth {cap} is tight: the exact minimum under chunk size {} \
                     (no M20K to reclaim)",
                    ctx.chunk
                ),
            ));
        }
    }
}

/// Fusion legality: regions become FL0019 notes, rejections become
/// FL0020 (or FL0025 for reassociation) notes with their witnesses.
fn pass_fusion(ctx: &AnalysisCtx, r: &mut LintReport) -> FusionPlan {
    let plan = analyze_fusion(ctx.mdag, &ctx.sems, &ctx.plan_label, ctx.recovery_armed);
    for region in &plan.regions {
        let first = region.modules.first().cloned().unwrap_or_default();
        r.push(
            Diagnostic::new(
                LintCode::FL0019,
                Severity::Note,
                at(ctx.file, Location::module(first)),
                format!(
                    "region `{}` is fusable: {} collapse into one loop over {} elements",
                    region.name,
                    region.modules.join(" -> "),
                    region.elements
                ),
            )
            .with_fixit(format!(
                "the fused backend may emit a single module for `{}`; export the \
                 machine-checkable plan with --fusion-plan",
                region.name
            )),
        );
    }
    for rej in &plan.rejections {
        let code = if rej.reason == "reassociation" {
            LintCode::FL0025
        } else {
            LintCode::FL0020
        };
        let loc = match (&rej.witness_module, &rej.witness_channel) {
            (Some(m), _) => Location::module(m.clone()),
            (None, Some(c)) => Location::channel(c.clone()),
            (None, None) => Location::default(),
        };
        let witness = match (&rej.witness_channel, &rej.witness_module) {
            (Some(c), _) => format!(" (witness channel `{c}`)"),
            (None, Some(m)) => format!(" (witness `{m}`)"),
            (None, None) => String::new(),
        };
        let msg = if rej.reason == "reassociation" {
            format!(
                "`{}` reduces with a W-way adder tree: fusing across it would change \
                 the floating-point association{witness}",
                rej.modules.join(", ")
            )
        } else {
            format!(
                "chain `{}` is not fusable: {}{witness}",
                rej.modules.join(" -> "),
                rej.reason
            )
        };
        r.push(Diagnostic::new(
            code,
            Severity::Note,
            at(ctx.file, loc),
            msg,
        ));
    }
    plan
}

// ---------------------------------------------------------------------
// Graph documents.
// ---------------------------------------------------------------------

fn lint_graph_doc(doc: &GraphDoc, file: &str) -> LintOutput {
    let mut r = LintReport::new();
    let g = match doc.to_mdag() {
        Ok(g) => g,
        Err(e) => {
            r.push(Diagnostic::new(
                LintCode::FL0010,
                Severity::Error,
                at(file, Location::default()),
                e,
            ));
            return LintOutput {
                report: r,
                fusion: Vec::new(),
            };
        }
    };
    let width = doc.config.width.unwrap_or(16);
    let ctx = AnalysisCtx {
        sems: infer_sems(&g, width),
        chunk: doc
            .config
            .chunk
            .unwrap_or(fblas_hlssim::default_chunk() as u64),
        budget: doc.config.budget,
        ..AnalysisCtx::for_graph(&g, file)
    };
    let fusion = analyze_mdag(&ctx, &mut r);
    LintOutput {
        report: r,
        fusion: fusion.into_iter().collect(),
    }
}

// ---------------------------------------------------------------------
// Program documents: contract pass + MDAG passes + resources +
// numerics.
// ---------------------------------------------------------------------

fn lint_program_doc(doc: &ProgramDoc, file: &str) -> LintOutput {
    let mut r = LintReport::new();
    let mut fusion = Vec::new();
    let program = match doc.to_program() {
        Ok(p) => p,
        Err(e) => {
            r.push(Diagnostic::new(
                LintCode::FL0010,
                Severity::Error,
                at(file, Location::default()),
                e,
            ));
            return LintOutput { report: r, fusion };
        }
    };
    let cfg = doc.config.planner_config();
    let recovery_armed = doc.config.retry_max.unwrap_or(1) > 1;

    // Retry-soundness scan (FL0018), on the raw ops and *before*
    // planning: an in-place op may already make the plan invalid, and
    // the unsound-replay warning is useful either way.
    if recovery_armed {
        for (i, op) in doc.ops.iter().enumerate() {
            let out = match &op.out {
                Some(o) => o,
                None => continue,
            };
            let reads_out = [&op.a, &op.x, &op.y]
                .into_iter()
                .flatten()
                .any(|inp| inp == out);
            if reads_out {
                r.push(
                    Diagnostic::new(
                        LintCode::FL0018,
                        Severity::Warning,
                        at(
                            file,
                            Location {
                                operand: Some(out.clone()),
                                op_index: Some(i),
                                ..Default::default()
                            },
                        ),
                        format!(
                            "`{}` writes `{out}` in place while also reading it; with \
                             retry_max > 1 a replayed attempt would consume the partially \
                             updated value, not the original input",
                            op.op
                        ),
                    )
                    .with_fixit(format!(
                        "stage the result through a scratch operand (e.g. `{out}_next`) and \
                         copy it back after the component commits, so every retry re-reads \
                         the untouched `{out}`"
                    )),
                );
            }
        }
    }

    // Pass-through ops at the program level (the planner would build a
    // module for them): scal by 1, and a copy whose output feeds
    // exactly one later op. These fire alongside plan errors.
    for (i, od) in doc.ops.iter().enumerate() {
        if od.op == "scal" && od.alpha.unwrap_or(1.0) == 1.0 {
            r.push(
                Diagnostic::new(
                    LintCode::FL0023,
                    Severity::Warning,
                    at(
                        file,
                        Location {
                            op_index: Some(i),
                            ..Default::default()
                        },
                    ),
                    format!("op #{i}: scal by α = 1 is a pass-through"),
                )
                .with_fixit("drop the op or fold α into the consuming op".to_string()),
            );
        }
        if od.op == "copy" {
            if let Some(out) = &od.out {
                let consumers = doc
                    .ops
                    .iter()
                    .enumerate()
                    .filter(|(j, other)| {
                        *j != i
                            && [&other.a, &other.x, &other.y]
                                .into_iter()
                                .flatten()
                                .any(|inp| inp == out)
                    })
                    .count();
                if consumers == 1 {
                    r.push(
                        Diagnostic::new(
                            LintCode::FL0024,
                            Severity::Warning,
                            at(
                                file,
                                Location {
                                    operand: Some(out.clone()),
                                    op_index: Some(i),
                                    ..Default::default()
                                },
                            ),
                            format!(
                                "op #{i}: copy into `{out}` feeds a single consumer — a \
                                 pass-through"
                            ),
                        )
                        .with_fixit(format!(
                            "use `{}` directly in the consuming op and drop the copy",
                            od.x.as_deref().unwrap_or("the source")
                        )),
                    );
                }
            }
        }
    }

    let plan = match plan(&program, &cfg) {
        Ok(plan) => plan,
        Err(e) => {
            r.push(plan_error_diag(&e, file));
            return LintOutput { report: r, fusion };
        }
    };

    // Surface the planner's structured notes as lints.
    for note in &plan.notes {
        match note {
            PlanNote::Split { before_op, cause } => {
                let (code, loc) = cause_code(cause);
                r.push(
                    Diagnostic::new(
                        code,
                        Severity::Note,
                        at(file, loc),
                        format!("op #{before_op} starts a new component: {cause}"),
                    )
                    .with_fixit(
                        "the planner split the program into sequential components \
                         communicating through DRAM (the paper's fix (b))"
                            .to_string(),
                    ),
                );
            }
            PlanNote::DeepChannel {
                component,
                channel,
                depth,
            } => {
                r.push(Diagnostic::new(
                    LintCode::FL0016,
                    Severity::Note,
                    at(file, Location::channel(channel.clone())),
                    format!(
                        "component {} requires channel `{channel}` at depth {depth} \
                         (the paper's fix (a))",
                        component + 1
                    ),
                ));
            }
            // The lint-side fusion pass re-derives these regions with
            // full obligations and witnesses (FL0019); the planner note
            // exists for plan consumers that do not run the linter.
            PlanNote::FusableChain { .. } => {}
        }
    }

    // MDAG-level passes over every planned component, at its
    // instantiated depths and with exact op semantics.
    let width = doc.config.vector_width();
    let chunk = doc
        .config
        .chunk
        .unwrap_or(fblas_hlssim::default_chunk() as u64);
    for (ci, c) in plan.components.iter().enumerate() {
        let ctx = AnalysisCtx {
            file,
            plan_label: format!("{file}#c{ci}"),
            mdag: &c.mdag,
            sems: sems_for_component(&c.mdag, program.ops(), width),
            chunk,
            budget: None,
            recovery_armed,
            deep_channels: &c.deep_channels,
        };
        let mut sub = LintReport::new();
        if let Some(p) = analyze_mdag(&ctx, &mut sub) {
            fusion.push(p);
        }
        for mut d in sub.diagnostics {
            d.message = format!("component {}: {}", ci + 1, d.message);
            r.push(d);
        }
    }

    lint_plan_resources(&program, &plan, doc, file, &mut r);
    lint_program_numerics(&program, doc, file, &mut r);
    LintOutput { report: r, fusion }
}

fn plan_error_diag(e: &PlanError, file: &str) -> Diagnostic {
    match e {
        PlanError::UnknownOperand(n) => Diagnostic::new(
            LintCode::FL0006,
            Severity::Error,
            at(file, Location::operand(n.clone())),
            format!("unknown operand `{n}`"),
        )
        .with_fixit(format!("declare `{n}` as a vector, matrix, or scalar")),
        PlanError::ShapeMismatch { operand, expected } => Diagnostic::new(
            LintCode::FL0007,
            Severity::Error,
            at(file, Location::operand(operand.clone())),
            format!("operand `{operand}`: expected {expected}"),
        )
        .with_fixit(format!("resize `{operand}` to {expected}")),
        PlanError::MultipleWriters(n) => Diagnostic::new(
            LintCode::FL0008,
            Severity::Error,
            at(file, Location::operand(n.clone())),
            format!("operand `{n}` is written more than once"),
        )
        .with_fixit("use a fresh operand name per result (static single assignment)".to_string()),
        PlanError::Cyclic => Diagnostic::new(
            LintCode::FL0005,
            Severity::Error,
            at(file, Location::default()),
            "cyclic data dependencies",
        ),
        PlanError::Contract(cause) => {
            let (code, loc) = cause_code(cause);
            Diagnostic::new(
                code,
                Severity::Error,
                at(file, loc),
                format!("stream contract violation: {cause}"),
            )
        }
        PlanError::InvalidConfig(reason) => Diagnostic::new(
            LintCode::FL0010,
            Severity::Error,
            at(file, Location::default()),
            format!("invalid planner config: {reason}"),
        ),
    }
}

/// Map a structured contract cause to its lint code and location.
fn cause_code(cause: &ContractCause) -> (LintCode, Location) {
    match cause {
        ContractCause::ReplayFromComputationalProducer { operand, op_index } => (
            LintCode::FL0003,
            Location {
                operand: Some(operand.clone()),
                op_index: Some(*op_index),
                ..Default::default()
            },
        ),
        ContractCause::OnChipMatrixColStreamed { matrix, op_index } => (
            LintCode::FL0002,
            Location {
                operand: Some(matrix.clone()),
                op_index: Some(*op_index),
                ..Default::default()
            },
        ),
        ContractCause::TilingOrderConflict { matrix, op_indices } => (
            LintCode::FL0002,
            Location {
                operand: Some(matrix.clone()),
                op_index: op_indices.first().copied(),
                ..Default::default()
            },
        ),
        ContractCause::InvalidEdge { reason } => {
            (LintCode::FL0001, Location::channel(reason.clone()))
        }
        ContractCause::NeedsChannelDepth { channel, .. } => {
            (LintCode::FL0004, Location::channel(channel.clone()))
        }
        ContractCause::Unschedulable { .. } => (LintCode::FL0017, Location::default()),
    }
}

// ---------------------------------------------------------------------
// Resource feasibility over a plan.
// ---------------------------------------------------------------------

fn op_circuit(op: &Op, w: u64) -> CircuitClass {
    match op {
        Op::Copy { .. } | Op::Scal { .. } => CircuitClass::Map { w, ops_per_lane: 1 },
        Op::Axpy { .. } => CircuitClass::MapFused {
            w,
            macs_per_lane: 1,
        },
        Op::Dot { .. } | Op::Gemv { .. } => CircuitClass::MapReduce { w },
        Op::Ger { .. } => CircuitClass::MapFused {
            w,
            macs_per_lane: 1,
        },
    }
}

/// Resources one component demands: its computational circuits, tile
/// buffers, one interface module per DRAM stream, deep-FIFO block RAM,
/// and the fixed design overhead.
fn component_resources(
    program: &Program,
    c: &PlannedComponent,
    cfg: &PlannerConfig,
    device: Device,
    precision: Precision,
    w: u64,
) -> Resources {
    let mut total = design_overhead(device, device.model().hyperflex);
    for &oi in &c.ops {
        let op = &program.ops()[oi];
        let mut est = estimate_circuit(op_circuit(op, w), precision);
        // Level-2 ops buffer a tile of the vector operand on chip.
        if matches!(op, Op::Gemv { .. } | Op::Ger { .. }) {
            est = est.with_buffer(cfg.tn as u64, precision);
        }
        total += est.resources;
    }
    // One interface module per DRAM-facing stream (read_*/write_* nodes).
    let interfaces = c
        .mdag
        .node_ids()
        .filter(|&n| {
            let name = c.mdag.node_name(n);
            name.starts_with("read_") || name.starts_with("write_")
        })
        .count() as u64;
    total += interface_module(precision, w).scaled(interfaces.max(1));
    // Deep FIFOs are spent out of M20K blocks.
    for (_, depth) in &c.deep_channels {
        total.m20ks += m20ks_for_buffer(*depth, precision.elem_bytes());
    }
    total
}

fn lint_plan_resources(
    program: &Program,
    plan: &Plan,
    doc: &ProgramDoc,
    file: &str,
    r: &mut LintReport,
) {
    let device = match doc.config.target_device() {
        Ok(d) => d,
        Err(e) => {
            r.push(Diagnostic::new(
                LintCode::FL0010,
                Severity::Error,
                at(file, Location::default()),
                e,
            ));
            return;
        }
    };
    let precision = match doc.config.target_precision() {
        Ok(p) => p,
        Err(e) => {
            r.push(Diagnostic::new(
                LintCode::FL0010,
                Severity::Error,
                at(file, Location::default()),
                e,
            ));
            return;
        }
    };
    let w = doc.config.vector_width() as u64;
    let cfg = doc.config.planner_config();
    let model = device.model();

    for (ci, c) in plan.components.iter().enumerate() {
        let demand = component_resources(program, c, &cfg, device, precision, w);
        let label = format!("component {} on {}", ci + 1, device.short_name());
        if demand.dsps > model.available.dsps {
            r.push(
                Diagnostic::new(
                    LintCode::FL0011,
                    Severity::Error,
                    at(file, Location::default()),
                    format!(
                        "{label}: DSP overcommit ({} needed, {} available)",
                        demand.dsps, model.available.dsps
                    ),
                )
                .with_fixit("reduce the vectorization width W".to_string()),
            );
        }
        if demand.m20ks > model.available.m20ks {
            r.push(
                Diagnostic::new(
                    LintCode::FL0012,
                    Severity::Error,
                    at(file, Location::default()),
                    format!(
                        "{label}: M20K overcommit ({} needed, {} available)",
                        demand.m20ks, model.available.m20ks
                    ),
                )
                .with_fixit(
                    "shrink tile sizes or split the component instead of deepening channels"
                        .to_string(),
                ),
            );
        }
        // Bandwidth: every interface stream moves W elements per cycle
        // at the achievable clock; concurrent streams share the DRAM
        // banks (paper Sec. VI-B).
        let streams = c
            .mdag
            .node_ids()
            .filter(|&n| {
                let name = c.mdag.node_name(n);
                name.starts_with("read_") || name.starts_with("write_")
            })
            .count() as f64;
        let f = FrequencyModel::new(device).base_hz(RoutineClass::Streaming);
        let demand_bw = streams * w as f64 * precision.elem_bytes() as f64 * f;
        let avail_bw = model.total_dram_bandwidth();
        if demand_bw > avail_bw {
            r.push(
                Diagnostic::new(
                    LintCode::FL0013,
                    Severity::Warning,
                    at(file, Location::default()),
                    format!(
                        "{label}: {} concurrent DRAM streams demand {:.1} GB/s of {:.1} GB/s \
                         available; interface modules will stall",
                        streams as u64,
                        demand_bw / 1e9,
                        avail_bw / 1e9
                    ),
                )
                .with_fixit("lower W or stream fewer operands per component".to_string()),
            );
        }
    }
}

// ---------------------------------------------------------------------
// Numeric lints on programs.
// ---------------------------------------------------------------------

fn lint_program_numerics(program: &Program, doc: &ProgramDoc, file: &str, r: &mut LintReport) {
    let w = doc.config.vector_width();
    let precision = match doc.config.target_precision() {
        Ok(p) => p,
        Err(_) => return, // already reported by the resource pass
    };
    if w > 1 {
        for (i, op) in program.ops().iter().enumerate() {
            if matches!(op, Op::Dot { .. } | Op::Gemv { .. }) {
                r.push(Diagnostic::new(
                    LintCode::FL0014,
                    Severity::Note,
                    at(
                        file,
                        Location {
                            op_index: Some(i),
                            ..Default::default()
                        },
                    ),
                    format!(
                        "op #{i} reduces with a {w}-way adder tree: results differ from \
                         sequential accumulation (floating-point reassociation)"
                    ),
                ));
            }
        }
    }
    if !precision.native_accumulation() {
        r.push(Diagnostic::new(
            LintCode::FL0015,
            Severity::Warning,
            at(file, Location::default()),
            "double precision has no native DSP accumulation on the modeled devices; \
             reductions use the two-stage interleaved accumulator (extra latency and M20K)",
        ));
    }
}

// ---------------------------------------------------------------------
// Spec documents: codegen validation + numeric lints.
// ---------------------------------------------------------------------

fn lint_spec(json: &str, file: &str) -> LintReport {
    let mut r = LintReport::new();
    let spec = match SpecFile::from_json(json) {
        Ok(s) => s,
        Err(e) => {
            r.push(Diagnostic::new(
                LintCode::FL0010,
                Severity::Error,
                at(file, Location::default()),
                format!("specification JSON error: {e}"),
            ));
            return r;
        }
    };
    for rs in &spec.routines {
        let loc = at(file, Location::operand(rs.kernel_name().to_string()));
        match generate(rs) {
            Err(CodegenError::UnknownRoutine(n)) => {
                r.push(
                    Diagnostic::new(
                        LintCode::FL0009,
                        Severity::Error,
                        loc,
                        format!("unknown routine `{n}`"),
                    )
                    .with_fixit(
                        "blas_name is an s/d prefix plus one of the 22 FBLAS routines".to_string(),
                    ),
                );
            }
            Err(e) => {
                r.push(Diagnostic::new(
                    LintCode::FL0010,
                    Severity::Error,
                    loc,
                    e.to_string(),
                ));
            }
            Ok(kernel) => {
                let reduces = matches!(
                    kernel.kind,
                    RoutineKind::Dot
                        | RoutineKind::Sdsdot
                        | RoutineKind::Nrm2
                        | RoutineKind::Asum
                        | RoutineKind::Gemv
                        | RoutineKind::Gemm
                        | RoutineKind::Syrk
                        | RoutineKind::Syr2k
                );
                if reduces && kernel.width > 1 {
                    r.push(Diagnostic::new(
                        LintCode::FL0014,
                        Severity::Note,
                        loc.clone(),
                        format!(
                            "`{}` at W={} reassociates its reduction; bitwise equality with \
                             a sequential reference is not guaranteed",
                            kernel.name, kernel.width
                        ),
                    ));
                }
                if kernel.kind == RoutineKind::Sdsdot {
                    r.push(Diagnostic::new(
                        LintCode::FL0015,
                        Severity::Note,
                        loc.clone(),
                        "sdsdot accumulates single-precision inputs in double precision \
                         (mixed-precision by specification)",
                    ));
                }
                if kernel.precision == Precision::Double && reduces {
                    r.push(Diagnostic::new(
                        LintCode::FL0015,
                        Severity::Warning,
                        loc,
                        format!(
                            "`{}` accumulates in double precision without native DSP support; \
                             the two-stage interleaved accumulator adds latency",
                            kernel.name
                        ),
                    ));
                }
            }
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::classify;

    fn lint_str(json: &str) -> LintReport {
        lint_str_full(json).report
    }

    fn lint_str_full(json: &str) -> LintOutput {
        let doc = classify(json).unwrap();
        lint_document_full(&doc, "test.json")
    }

    #[test]
    fn clean_axpydot_program_is_accepted() {
        let r = lint_str(
            r#"{"program": {
                "operands": [
                    {"name":"w","kind":"vector","len":64},
                    {"name":"v","kind":"vector","len":64},
                    {"name":"u","kind":"vector","len":64},
                    {"name":"z","kind":"vector","len":64},
                    {"name":"beta","kind":"scalar"}
                ],
                "ops": [
                    {"op":"axpy","alpha":-1.0,"x":"v","y":"w","out":"z"},
                    {"op":"dot","x":"z","y":"u","out":"beta"}
                ],
                "config": {"tn":16,"tm":16}
            }}"#,
        );
        assert!(r.accepted(), "{}", r.render_table());
        // The W-way reduction note fires for the DOT.
        assert!(r.diagnostics.iter().any(|d| d.code == LintCode::FL0014));
        // And the fusion pass rejects fusing across it (FL0025).
        assert!(r.diagnostics.iter().any(|d| d.code == LintCode::FL0025));
    }

    #[test]
    fn shape_mismatch_is_fl0007() {
        let r = lint_str(
            r#"{"program": {
                "operands": [
                    {"name":"x","kind":"vector","len":8},
                    {"name":"y","kind":"vector","len":9},
                    {"name":"d","kind":"scalar"}
                ],
                "ops": [{"op":"dot","x":"x","y":"y","out":"d"}]
            }}"#,
        );
        assert!(!r.accepted());
        assert!(r.diagnostics.iter().any(|d| d.code == LintCode::FL0007));
    }

    #[test]
    fn undersized_graph_channel_gets_exact_fixit() {
        let r = lint_str(
            r#"{"graph": {
                "nodes": [
                    {"name":"src","kind":"interface"},
                    {"name":"relay","kind":"compute"},
                    {"name":"join","kind":"compute"}
                ],
                "edges": [
                    {"from":"src","to":"join","produced":96,"consumed":96,"depth":8,"burst":40},
                    {"from":"src","to":"relay","produced":96,"consumed":96,"depth":16},
                    {"from":"relay","to":"join","produced":96,"consumed":96,"depth":16}
                ]
            }}"#,
        );
        assert!(!r.accepted());
        let under = r
            .diagnostics
            .iter()
            .find(|d| d.code == LintCode::FL0004)
            .expect("under-depth finding");
        assert!(under.fixit.as_deref().unwrap().contains("40"));
        assert!(r.diagnostics.iter().any(|d| d.code == LintCode::FL0016));
    }

    #[test]
    fn count_mismatch_graph_is_fl0001() {
        let r = lint_str(
            r#"{"graph": {
                "nodes": [
                    {"name":"a","kind":"interface"},
                    {"name":"b","kind":"compute"}
                ],
                "edges": [{"from":"a","to":"b","produced":10,"consumed":8,"depth":4}]
            }}"#,
        );
        assert!(!r.accepted());
        assert_eq!(r.diagnostics[0].code, LintCode::FL0001);
    }

    #[test]
    fn unknown_routine_spec_is_fl0009() {
        let r = lint_str(r#"{"routines": [{"blas_name": "sfrobnicate"}]}"#);
        assert!(!r.accepted());
        assert_eq!(r.diagnostics[0].code, LintCode::FL0009);
    }

    #[test]
    fn inplace_update_with_retries_warns_fl0018() {
        let doc = r#"{"program": {
            "operands": [
                {"name":"x","kind":"vector","len":64},
                {"name":"y","kind":"vector","len":64}
            ],
            "ops": [{"op":"axpy","alpha":2.0,"x":"x","y":"y","out":"y"}],
            "config": {"tn":8,"tm":8,"retry_max":3}
        }}"#;
        let r = lint_str(doc);
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == LintCode::FL0018)
            .expect("FL0018 finding");
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(d.location.operand.as_deref(), Some("y"));
        assert!(d.fixit.as_deref().unwrap().contains("scratch"));

        // Without a retry budget the in-place update is not a replay
        // hazard: no FL0018 (the plan still fails for its own reasons).
        let no_retry = doc.replace(r#","retry_max":3"#, "");
        let r = lint_str(&no_retry);
        assert!(r.diagnostics.iter().all(|d| d.code != LintCode::FL0018));
    }

    #[test]
    fn double_reduction_spec_warns_mixed_precision() {
        let r = lint_str(r#"{"routines": [{"blas_name": "ddot", "width": 8}]}"#);
        assert!(r.accepted());
        assert!(r.diagnostics.iter().any(|d| d.code == LintCode::FL0014));
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::FL0015 && d.severity == Severity::Warning));
    }

    #[test]
    fn relay_chain_graph_gets_fl0019_and_a_plan() {
        let out = lint_str_full(
            r#"{"graph": {
                "nodes": [
                    {"name":"read_x","kind":"interface"},
                    {"name":"read_y","kind":"interface"},
                    {"name":"scal","kind":"compute"},
                    {"name":"axpy","kind":"compute"},
                    {"name":"write_z","kind":"interface"}
                ],
                "edges": [
                    {"from":"read_x","to":"scal","produced":256,"consumed":256,"depth":16},
                    {"from":"scal","to":"axpy","produced":256,"consumed":256,"depth":16},
                    {"from":"read_y","to":"axpy","produced":256,"consumed":256,"depth":16},
                    {"from":"axpy","to":"write_z","produced":256,"consumed":256,"depth":16}
                ]
            }}"#,
        );
        assert!(out.report.accepted(), "{}", out.report.render_table());
        assert_eq!(out.report.warnings(), 0, "{}", out.report.render_table());
        assert!(out
            .report
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::FL0019));
        assert_eq!(out.fusion.len(), 1);
        assert_eq!(out.fusion[0].stats.fused, 1);
    }

    #[test]
    fn slack_channel_depth_warns_fl0021() {
        // Depth 4096 with chunk 8: the rate analysis proves a tiny
        // depth suffices, so the channel is provably over-provisioned.
        let r = lint_str(
            r#"{"graph": {
                "nodes": [
                    {"name":"read_x","kind":"interface"},
                    {"name":"relay","kind":"compute"},
                    {"name":"write_y","kind":"interface"}
                ],
                "edges": [
                    {"from":"read_x","to":"relay","produced":64,"consumed":64,"depth":4096},
                    {"from":"relay","to":"write_y","produced":64,"consumed":64,"depth":16}
                ],
                "config": {"chunk": 8}
            }}"#,
        );
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == LintCode::FL0021)
            .expect("FL0021 finding");
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.fixit.as_deref().unwrap().contains("shrink"));
    }

    #[test]
    fn dead_branch_module_warns_fl0026() {
        let r = lint_str(
            r#"{"graph": {
                "nodes": [
                    {"name":"read_x","kind":"interface"},
                    {"name":"scal","kind":"compute"},
                    {"name":"copy_dead","kind":"compute"},
                    {"name":"write_y","kind":"interface"}
                ],
                "edges": [
                    {"from":"read_x","to":"scal","produced":8,"consumed":8,"depth":4},
                    {"from":"scal","to":"write_y","produced":8,"consumed":8,"depth":4},
                    {"from":"scal","to":"copy_dead","produced":8,"consumed":8,"depth":4}
                ]
            }}"#,
        );
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == LintCode::FL0026)
            .expect("FL0026 finding");
        assert_eq!(d.location.module.as_deref(), Some("copy_dead"));
    }

    #[test]
    fn program_pass_throughs_warn_fl0023_fl0024() {
        let r = lint_str(
            r#"{"program": {
                "operands": [
                    {"name":"x","kind":"vector","len":64},
                    {"name":"t","kind":"vector","len":64},
                    {"name":"y","kind":"vector","len":64}
                ],
                "ops": [
                    {"op":"copy","x":"x","out":"t"},
                    {"op":"scal","alpha":1.0,"x":"t","out":"y"}
                ],
                "config": {"tn":16,"tm":16}
            }}"#,
        );
        assert!(r.diagnostics.iter().any(|d| d.code == LintCode::FL0023));
        assert!(r.diagnostics.iter().any(|d| d.code == LintCode::FL0024));
    }

    #[test]
    fn budget_exhaustion_is_an_error() {
        // A budget of 1 step cannot finish any graph: fail closed.
        let r = lint_str(
            r#"{"graph": {
                "nodes": [
                    {"name":"read_x","kind":"interface"},
                    {"name":"write_y","kind":"interface"}
                ],
                "edges": [
                    {"from":"read_x","to":"write_y","produced":64,"consumed":64,"depth":16}
                ],
                "config": {"budget": 1}
            }}"#,
        );
        assert!(!r.accepted());
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::FL0017 && d.severity == Severity::Error));
    }

    #[test]
    fn recovery_armed_program_rejects_fusion_with_guards() {
        // A fusable scal→axpy chain under retry_max > 1: the region is
        // rejected with a recovery-guards witness instead of fused.
        let out = lint_str_full(
            r#"{"program": {
                "operands": [
                    {"name":"x","kind":"vector","len":64},
                    {"name":"y","kind":"vector","len":64},
                    {"name":"t","kind":"vector","len":64},
                    {"name":"z","kind":"vector","len":64}
                ],
                "ops": [
                    {"op":"scal","alpha":2.0,"x":"x","out":"t"},
                    {"op":"axpy","alpha":3.0,"x":"t","y":"y","out":"z"}
                ],
                "config": {"tn":16,"tm":16,"retry_max":3}
            }}"#,
        );
        let plan = out.fusion.first().expect("component fusion plan");
        assert_eq!(plan.stats.fused, 0);
        assert!(plan
            .rejections
            .iter()
            .any(|rej| rej.reason == "recovery-guards"));
        // Without retries the same chain fuses.
        let out2 = lint_str_full(
            r#"{"program": {
                "operands": [
                    {"name":"x","kind":"vector","len":64},
                    {"name":"y","kind":"vector","len":64},
                    {"name":"t","kind":"vector","len":64},
                    {"name":"z","kind":"vector","len":64}
                ],
                "ops": [
                    {"op":"scal","alpha":2.0,"x":"x","out":"t"},
                    {"op":"axpy","alpha":3.0,"x":"t","y":"y","out":"z"}
                ],
                "config": {"tn":16,"tm":16}
            }}"#,
        );
        let plan2 = out2.fusion.first().expect("component fusion plan");
        assert_eq!(plan2.stats.fused, 1, "{}", plan2.to_json());
    }
}
