//! Differential harness: execute a [`RateGraph`]'s actor programs on
//! the *real* threaded simulator (`fblas-hlssim`).
//!
//! The linter's deadlock verdicts come from an abstract scheduler over
//! the same actor programs. Kahn-network determinism makes the verdict
//! schedule-independent, so the abstract scheduler and the concurrent
//! simulator must agree: lint *accept* ⟺ the simulation completes,
//! lint *deadlock* ⟺ the watchdog reports a stall. This module is the
//! bridge that lets property tests assert exactly that.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use fblas_core::composition::{EdgeInfo, Mdag, RateGraph, RateOutcome, RateStep};
use fblas_hlssim::{try_channel, FaultHook, ModuleKind, Receiver, Sender, SimError, Simulation};

use crate::fusion::{apply_elementwise, FusedRegion, FusedRun, ModuleSem};

/// What the threaded simulator said about one execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimVerdict {
    /// Every module ran to completion.
    Completed,
    /// The stall watchdog fired: a genuine deadlock.
    Stalled,
    /// A channel endpoint died mid-stream (count mismatch).
    Disconnected,
    /// Some other failure (configuration, module error).
    Failed(String),
}

/// Execute the graph's actor programs on `fblas-hlssim` with the given
/// channel capacities and stall grace period.
///
/// Each rate-graph channel becomes a real bounded FIFO carrying `u32`
/// sequence numbers; each actor becomes a module thread replaying its
/// push/pop program. Channels are point-to-point by construction
/// (panics if an actor program shares an endpoint).
pub fn run_on_simulator(rg: &RateGraph, caps: &[u64], grace: Duration) -> SimVerdict {
    assert_eq!(caps.len(), rg.channel_count(), "capacity vector length");
    let mut sim = Simulation::new();
    sim.set_grace(grace);

    let mut senders: Vec<Option<Sender<u32>>> = Vec::with_capacity(rg.channel_count());
    let mut receivers: Vec<Option<Receiver<u32>>> = Vec::with_capacity(rg.channel_count());
    for (ch, &cap) in caps.iter().enumerate() {
        match try_channel::<u32>(sim.ctx(), cap as usize, rg.channel_name(ch)) {
            Ok((s, r)) => {
                senders.push(Some(s));
                receivers.push(Some(r));
            }
            Err(e) => return SimVerdict::Failed(e.to_string()),
        }
    }

    for a in 0..rg.actor_count() {
        let steps: Vec<RateStep> = rg.actor_steps(a).to_vec();
        let mut tx: HashMap<usize, Sender<u32>> = HashMap::new();
        let mut rx: HashMap<usize, Receiver<u32>> = HashMap::new();
        for s in &steps {
            match s {
                RateStep::Push { channel, .. } => {
                    if !tx.contains_key(channel) {
                        // Invariant (documented above): actor programs
                        // never share a channel endpoint.
                        #[allow(clippy::disallowed_methods)]
                        let sender = senders[*channel]
                            .take()
                            .expect("each channel has exactly one producer");
                        tx.insert(*channel, sender);
                    }
                }
                RateStep::Pop { channel, .. } => {
                    if !rx.contains_key(channel) {
                        // Invariant: see the producer side above.
                        #[allow(clippy::disallowed_methods)]
                        let receiver = receivers[*channel]
                            .take()
                            .expect("each channel has exactly one consumer");
                        rx.insert(*channel, receiver);
                    }
                }
            }
        }
        sim.add_module(
            rg.actor_name(a).to_string(),
            ModuleKind::Compute,
            move || {
                for s in steps {
                    match s {
                        RateStep::Push { channel, count } => {
                            let t = &tx[&channel];
                            for i in 0..count {
                                t.push(i as u32)?;
                            }
                        }
                        RateStep::Pop { channel, count } => {
                            let r = &rx[&channel];
                            for _ in 0..count {
                                r.pop()?;
                            }
                        }
                    }
                }
                Ok(())
            },
        );
    }

    match sim.run() {
        Ok(_) => SimVerdict::Completed,
        Err(SimError::Stall { .. }) => SimVerdict::Stalled,
        Err(SimError::Disconnected { .. }) => SimVerdict::Disconnected,
        Err(e) => SimVerdict::Failed(e.to_string()),
    }
}

/// Grace period for differential runs: generous enough that a busy CI
/// machine does not report a false stall on a composition that is
/// merely slow, small enough that genuinely-stalled property tests
/// finish. `FBLAS_STALL_GRACE_MS` still overrides.
pub fn differential_grace() -> Duration {
    match std::env::var("FBLAS_STALL_GRACE_MS") {
        Ok(ms) => Duration::from_millis(ms.parse().unwrap_or(100)),
        Err(_) => Duration::from_millis(100),
    }
}

// ---------------------------------------------------------------------
// Value-level differential: fused straight-line evaluation vs. the
// threaded per-module simulation.
// ---------------------------------------------------------------------

/// Deterministic stream of f32 values for a named input: FNV-1a over
/// the tag mixed with the seed, then xorshift64*. Values are exact
/// multiples of 1/256 in [−8, 8), so every value is exactly
/// representable and a differential mismatch is a real semantic
/// difference, never rounding-of-test-data noise. (Fused-vs-threaded
/// bit identity must hold for *arbitrary* f32s — the evaluator and the
/// threaded modules share one `apply_elementwise` — but exact inputs
/// make failures diagnosable.)
pub fn seeded_stream(seed: u64, tag: &str, len: usize) -> Vec<f32> {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in tag.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut s = h ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    if s == 0 {
        s = 0x9e37_79b9_7f4a_7c15;
    }
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        let r = s.wrapping_mul(0x2545_f491_4f6c_dd1d);
        let q = ((r >> 32) & 0xFFF) as i64 - 2048;
        out.push(q as f32 / 256.0);
    }
    out
}

/// Seeded streams for every input key of a fused region.
pub fn seeded_streams(keys: &[String], seed: u64, len: usize) -> BTreeMap<String, Vec<f32>> {
    keys.iter()
        .map(|k| (k.clone(), seeded_stream(seed, k, len)))
        .collect()
}

/// Execute one fused region *unfused* — every module of the region as
/// its own thread on the real simulator, every channel a real bounded
/// FIFO — and collect what its absorbed writes and its boundary output
/// drain. This is the reference the fused straight-line evaluator
/// ([`crate::fusion::FusedEvaluator`]) must match bit for bit.
///
/// `fault` optionally arms the simulation's fault-injection hook; the
/// runner then *refuses to run*: a fused region has no recovery
/// guards, so a value differential under injected faults would compare
/// executions with different failure semantics. (This mirrors the
/// analyzer's `recovery-guards` fusion rejection.)
pub fn run_region_threaded(
    g: &Mdag,
    sems: &[ModuleSem],
    region: &FusedRegion,
    streams: &BTreeMap<String, Vec<f32>>,
    grace: Duration,
    fault: Option<Arc<dyn FaultHook>>,
) -> Result<FusedRun, String> {
    let mut sim = Simulation::new();
    sim.set_grace(grace);
    if let Some(hook) = fault {
        sim.ctx().arm_faults(hook);
    }
    if sim.ctx().faults_armed() {
        return Err(
            "fault injection armed: refusing the value differential (fused regions carry \
             no recovery guards)"
                .into(),
        );
    }

    let name_of = |i: usize| g.node_name(fblas_core::composition::NodeId(i)).to_string();
    let mut in_region = vec![false; g.node_count()];
    for m in &region.modules {
        let i = g
            .node_ids()
            .find(|&n| g.node_name(n) == m)
            .ok_or_else(|| format!("region module `{m}` not in graph"))?;
        in_region[i.0] = true;
    }
    let edges: Vec<EdgeInfo> = g.edges().collect();

    // One real FIFO per edge touching the region, at its instantiated
    // depth.
    let mut senders: HashMap<usize, Sender<f32>> = HashMap::new();
    let mut receivers: HashMap<usize, Receiver<f32>> = HashMap::new();
    for (ei, e) in edges.iter().enumerate() {
        if !in_region[e.from.0] && !in_region[e.to.0] {
            continue;
        }
        let name = format!("{}->{}", name_of(e.from.0), name_of(e.to.0));
        let (s, r) = try_channel::<f32>(sim.ctx(), e.channel_depth.max(1) as usize, name)
            .map_err(|e| e.to_string())?;
        senders.insert(ei, s);
        receivers.insert(ei, r);
    }

    let sinks_shared: Arc<Mutex<BTreeMap<String, Vec<f32>>>> =
        Arc::new(Mutex::new(BTreeMap::new()));
    let output_shared: Arc<Mutex<Vec<f32>>> = Arc::new(Mutex::new(Vec::new()));

    // Feeders for boundary input channels (producer outside the
    // region) and a drain for the boundary output channel.
    for (ei, e) in edges.iter().enumerate() {
        let chan = format!("{}->{}", name_of(e.from.0), name_of(e.to.0));
        if !in_region[e.from.0] && in_region[e.to.0] {
            let stream = streams
                .get(&chan)
                .ok_or_else(|| format!("missing stream for boundary channel `{chan}`"))?
                .clone();
            let count = e.consumed as usize;
            if stream.len() < count {
                return Err(format!(
                    "stream for `{chan}` has {} elements, channel carries {count}",
                    stream.len()
                ));
            }
            let tx = senders
                .remove(&ei)
                .ok_or_else(|| format!("boundary channel `{chan}` has no sender"))?;
            sim.add_module(format!("feed:{chan}"), ModuleKind::Interface, move || {
                for v in stream.into_iter().take(count) {
                    tx.push(v)?;
                }
                Ok(())
            });
        } else if in_region[e.from.0] && !in_region[e.to.0] {
            let is_output = region.output.as_ref().is_some_and(|bc| bc.channel == chan);
            if !is_output {
                return Err(format!(
                    "edge `{chan}` leaves the region but is not its recorded output"
                ));
            }
            let count = e.produced as usize;
            let rx = receivers
                .remove(&ei)
                .ok_or_else(|| format!("output channel `{chan}` has no receiver"))?;
            let out = Arc::clone(&output_shared);
            sim.add_module(format!("drain:{chan}"), ModuleKind::Interface, move || {
                let mut buf = Vec::with_capacity(count);
                for _ in 0..count {
                    buf.push(rx.pop()?);
                }
                if let Ok(mut o) = out.lock() {
                    *o = buf;
                }
                Ok(())
            });
        }
    }

    // The region's own modules, one thread each.
    for i in 0..g.node_count() {
        if !in_region[i] {
            continue;
        }
        let name = name_of(i);
        match &sems[i] {
            ModuleSem::Read => {
                let stream = streams
                    .get(&name)
                    .ok_or_else(|| format!("missing stream for absorbed read `{name}`"))?
                    .clone();
                let outs: Vec<(Sender<f32>, usize)> = edges
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.from.0 == i)
                    .map(|(ei, e)| {
                        senders
                            .remove(&ei)
                            .map(|s| (s, e.produced as usize))
                            .ok_or_else(|| format!("read `{name}` output channel already taken"))
                    })
                    .collect::<Result<_, _>>()?;
                for (_, count) in &outs {
                    if stream.len() < *count {
                        return Err(format!(
                            "stream for `{name}` has {} elements, needs {count}",
                            stream.len()
                        ));
                    }
                }
                sim.add_module(name, ModuleKind::Interface, move || {
                    for (tx, count) in &outs {
                        for v in stream.iter().take(*count) {
                            tx.push(*v)?;
                        }
                    }
                    Ok(())
                });
            }
            ModuleSem::Write => {
                let (ei, e) = edges
                    .iter()
                    .enumerate()
                    .find(|(_, e)| e.to.0 == i)
                    .ok_or_else(|| format!("absorbed write `{name}` has no feeder"))?;
                let count = e.consumed as usize;
                let rx = receivers
                    .remove(&ei)
                    .ok_or_else(|| format!("write `{name}` input channel already taken"))?;
                let shared = Arc::clone(&sinks_shared);
                let key = name.clone();
                sim.add_module(name, ModuleKind::Interface, move || {
                    let mut buf = Vec::with_capacity(count);
                    for _ in 0..count {
                        buf.push(rx.pop()?);
                    }
                    if let Ok(mut m) = shared.lock() {
                        m.insert(key, buf);
                    }
                    Ok(())
                });
            }
            sem if sem.is_relay() => {
                // Input channels in edge order — the same order
                // `build_evaluator` records operand sources in, so the
                // two execution paths apply `apply_elementwise` to
                // identically ordered operands.
                let ins: Vec<Receiver<f32>> = edges
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.to.0 == i)
                    .map(|(ei, _)| {
                        receivers
                            .remove(&ei)
                            .ok_or_else(|| format!("relay `{name}` input channel already taken"))
                    })
                    .collect::<Result<_, _>>()?;
                let outs: Vec<Sender<f32>> = edges
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.from.0 == i)
                    .map(|(ei, _)| {
                        senders
                            .remove(&ei)
                            .ok_or_else(|| format!("relay `{name}` output channel already taken"))
                    })
                    .collect::<Result<_, _>>()?;
                let elements = region.elements as usize;
                let sem = sem.clone();
                let modname = name.clone();
                sim.add_module(name, ModuleKind::Compute, move || {
                    let mut vals = vec![0.0f32; ins.len()];
                    for _ in 0..elements {
                        for (slot, rx) in vals.iter_mut().zip(&ins) {
                            *slot = rx.pop()?;
                        }
                        let v = apply_elementwise(&sem, &vals).ok_or_else(|| {
                            SimError::module(&modname, "non-relay semantics in fused region")
                        })?;
                        for tx in &outs {
                            tx.push(v)?;
                        }
                    }
                    Ok(())
                });
            }
            other => {
                return Err(format!(
                    "region module `{name}` has non-fusable semantics {other:?}"
                ));
            }
        }
    }

    match sim.run() {
        Ok(_) => {}
        Err(e) => return Err(format!("threaded region run failed: {e}")),
    }
    let sinks = sinks_shared
        .lock()
        .map(|m| m.clone())
        .map_err(|_| "sink collection poisoned".to_string())?;
    let output = output_shared
        .lock()
        .map(|o| o.clone())
        .map_err(|_| "output collection poisoned".to_string())?;
    Ok(FusedRun { sinks, output })
}

/// Convenience: does the abstract analysis agree with the simulator at
/// the graph's configured capacities? Returns `(abstract, simulated)`
/// for assertion messages.
pub fn verdict_pair(rg: &RateGraph) -> (RateOutcome, SimVerdict) {
    let caps: Vec<u64> = (0..rg.channel_count()).map(|c| rg.capacity(c)).collect();
    let abstracted = rg.analyze();
    let simulated = run_on_simulator(rg, &caps, differential_grace());
    (abstracted, simulated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fusion::{analyze_fusion, build_evaluator, infer_sems};

    fn fusable_chain() -> (Mdag, Vec<ModuleSem>) {
        let mut g = Mdag::new();
        let rx = g.add_interface("read_x");
        let ry = g.add_interface("read_y");
        let scal = g.add_compute("scal#0");
        let axpy = g.add_compute("axpy#1");
        let wt = g.add_interface("write_t");
        let wz = g.add_interface("write_z");
        g.add_edge(rx, scal, 64, 64, 16);
        g.add_edge(scal, axpy, 64, 64, 16);
        g.add_edge(ry, axpy, 64, 64, 16);
        g.add_edge(scal, wt, 64, 64, 16);
        g.add_edge(axpy, wz, 64, 64, 16);
        let mut sems = infer_sems(&g, 1);
        sems[scal.0] = ModuleSem::Scal { alpha: Some(3.0) };
        sems[axpy.0] = ModuleSem::Axpy { alpha: Some(-2.0) };
        (g, sems)
    }

    #[test]
    fn fused_and_threaded_region_agree_bit_for_bit() {
        let (g, sems) = fusable_chain();
        let plan = analyze_fusion(&g, &sems, "harness", false);
        let region = plan.regions.first().expect("one fused region");
        let ev = build_evaluator(&g, &sems, region).unwrap();
        let streams = seeded_streams(&ev.inputs, 0xfb1a5, 64);
        let fused = ev.run(&streams).unwrap();
        let threaded =
            run_region_threaded(&g, &sems, region, &streams, differential_grace(), None).unwrap();
        assert_eq!(
            fused.sinks.keys().collect::<Vec<_>>(),
            threaded.sinks.keys().collect::<Vec<_>>()
        );
        for (k, v) in &fused.sinks {
            let tv = &threaded.sinks[k];
            assert_eq!(
                v.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                tv.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "sink `{k}` diverged"
            );
        }
        assert_eq!(
            fused.output.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            threaded
                .output
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn armed_faults_refuse_the_value_differential() {
        struct Nop;
        impl FaultHook for Nop {
            fn on_channel(
                &self,
                _: fblas_hlssim::FaultSite,
                _: &str,
                _: u64,
            ) -> Option<fblas_hlssim::FaultAction> {
                None
            }
            fn on_module_start(&self, _: &str) -> Option<fblas_hlssim::ModuleFault> {
                None
            }
        }
        let (g, sems) = fusable_chain();
        let plan = analyze_fusion(&g, &sems, "harness", false);
        let region = plan.regions.first().expect("one fused region");
        let ev = build_evaluator(&g, &sems, region).unwrap();
        let streams = seeded_streams(&ev.inputs, 1, 64);
        let err = run_region_threaded(
            &g,
            &sems,
            region,
            &streams,
            differential_grace(),
            Some(Arc::new(Nop)),
        )
        .unwrap_err();
        assert!(err.contains("fault injection armed"), "{err}");
    }

    #[test]
    fn seeded_streams_are_deterministic_and_exact() {
        let a = seeded_stream(42, "read_x", 256);
        let b = seeded_stream(42, "read_x", 256);
        assert_eq!(a, b);
        let c = seeded_stream(42, "read_y", 256);
        assert_ne!(a, c);
        for v in &a {
            assert!((-8.0..8.0).contains(v));
            assert_eq!(v * 256.0, (v * 256.0).round(), "not a multiple of 1/256");
        }
    }

    #[test]
    fn balanced_pipeline_completes_on_both() {
        let mut rg = RateGraph::new();
        let c0 = rg.add_channel("a_to_b", 4);
        let c1 = rg.add_channel("b_to_c", 4);
        rg.add_actor(
            "a",
            vec![RateStep::Push {
                channel: c0,
                count: 32,
            }],
        );
        rg.add_actor(
            "b",
            (0..32)
                .flat_map(|_| {
                    [
                        RateStep::Pop {
                            channel: c0,
                            count: 1,
                        },
                        RateStep::Push {
                            channel: c1,
                            count: 1,
                        },
                    ]
                })
                .collect(),
        );
        rg.add_actor(
            "c",
            vec![RateStep::Pop {
                channel: c1,
                count: 32,
            }],
        );
        let (a, s) = verdict_pair(&rg);
        assert!(a.is_completed(), "abstract: {a:?}");
        assert_eq!(s, SimVerdict::Completed);
    }

    #[test]
    fn burst_reorder_deadlocks_on_both() {
        // Consumer wants the whole burst from one channel before
        // touching the other — the ATAX shape in miniature.
        let mut rg = RateGraph::new();
        let c0 = rg.add_channel("direct", 2);
        let c1 = rg.add_channel("buffered", 2);
        rg.add_actor(
            "src",
            (0..8)
                .flat_map(|_| {
                    [
                        RateStep::Push {
                            channel: c0,
                            count: 1,
                        },
                        RateStep::Push {
                            channel: c1,
                            count: 1,
                        },
                    ]
                })
                .collect(),
        );
        rg.add_actor(
            "join",
            vec![
                RateStep::Pop {
                    channel: c1,
                    count: 8,
                },
                RateStep::Pop {
                    channel: c0,
                    count: 8,
                },
            ],
        );
        let (a, s) = verdict_pair(&rg);
        assert!(matches!(a, RateOutcome::Deadlock { .. }), "abstract: {a:?}");
        assert_eq!(s, SimVerdict::Stalled);
    }

    #[test]
    fn repaired_depths_complete_on_simulator() {
        let mut rg = RateGraph::new();
        let c0 = rg.add_channel("direct", 2);
        let c1 = rg.add_channel("buffered", 2);
        rg.add_actor(
            "src",
            (0..8)
                .flat_map(|_| {
                    [
                        RateStep::Push {
                            channel: c0,
                            count: 1,
                        },
                        RateStep::Push {
                            channel: c1,
                            count: 1,
                        },
                    ]
                })
                .collect(),
        );
        rg.add_actor(
            "join",
            vec![
                RateStep::Pop {
                    channel: c1,
                    count: 8,
                },
                RateStep::Pop {
                    channel: c0,
                    count: 8,
                },
            ],
        );
        let fixes = rg.repair().expect("depth-repairable");
        let mut caps: Vec<u64> = (0..rg.channel_count()).map(|c| rg.capacity(c)).collect();
        for (ch, depth) in fixes {
            caps[ch] = depth;
        }
        let v = run_on_simulator(&rg, &caps, differential_grace());
        assert_eq!(v, SimVerdict::Completed);
    }
}
