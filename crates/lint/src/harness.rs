//! Differential harness: execute a [`RateGraph`]'s actor programs on
//! the *real* threaded simulator (`fblas-hlssim`).
//!
//! The linter's deadlock verdicts come from an abstract scheduler over
//! the same actor programs. Kahn-network determinism makes the verdict
//! schedule-independent, so the abstract scheduler and the concurrent
//! simulator must agree: lint *accept* ⟺ the simulation completes,
//! lint *deadlock* ⟺ the watchdog reports a stall. This module is the
//! bridge that lets property tests assert exactly that.

use std::collections::HashMap;
use std::time::Duration;

use fblas_core::composition::{RateGraph, RateOutcome, RateStep};
use fblas_hlssim::{try_channel, ModuleKind, Receiver, Sender, SimError, Simulation};

/// What the threaded simulator said about one execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimVerdict {
    /// Every module ran to completion.
    Completed,
    /// The stall watchdog fired: a genuine deadlock.
    Stalled,
    /// A channel endpoint died mid-stream (count mismatch).
    Disconnected,
    /// Some other failure (configuration, module error).
    Failed(String),
}

/// Execute the graph's actor programs on `fblas-hlssim` with the given
/// channel capacities and stall grace period.
///
/// Each rate-graph channel becomes a real bounded FIFO carrying `u32`
/// sequence numbers; each actor becomes a module thread replaying its
/// push/pop program. Channels are point-to-point by construction
/// (panics if an actor program shares an endpoint).
pub fn run_on_simulator(rg: &RateGraph, caps: &[u64], grace: Duration) -> SimVerdict {
    assert_eq!(caps.len(), rg.channel_count(), "capacity vector length");
    let mut sim = Simulation::new();
    sim.set_grace(grace);

    let mut senders: Vec<Option<Sender<u32>>> = Vec::with_capacity(rg.channel_count());
    let mut receivers: Vec<Option<Receiver<u32>>> = Vec::with_capacity(rg.channel_count());
    for (ch, &cap) in caps.iter().enumerate() {
        match try_channel::<u32>(sim.ctx(), cap as usize, rg.channel_name(ch)) {
            Ok((s, r)) => {
                senders.push(Some(s));
                receivers.push(Some(r));
            }
            Err(e) => return SimVerdict::Failed(e.to_string()),
        }
    }

    for a in 0..rg.actor_count() {
        let steps: Vec<RateStep> = rg.actor_steps(a).to_vec();
        let mut tx: HashMap<usize, Sender<u32>> = HashMap::new();
        let mut rx: HashMap<usize, Receiver<u32>> = HashMap::new();
        for s in &steps {
            match s {
                RateStep::Push { channel, .. } => {
                    if !tx.contains_key(channel) {
                        let sender = senders[*channel]
                            .take()
                            .expect("each channel has exactly one producer");
                        tx.insert(*channel, sender);
                    }
                }
                RateStep::Pop { channel, .. } => {
                    if !rx.contains_key(channel) {
                        let receiver = receivers[*channel]
                            .take()
                            .expect("each channel has exactly one consumer");
                        rx.insert(*channel, receiver);
                    }
                }
            }
        }
        sim.add_module(
            rg.actor_name(a).to_string(),
            ModuleKind::Compute,
            move || {
                for s in steps {
                    match s {
                        RateStep::Push { channel, count } => {
                            let t = &tx[&channel];
                            for i in 0..count {
                                t.push(i as u32)?;
                            }
                        }
                        RateStep::Pop { channel, count } => {
                            let r = &rx[&channel];
                            for _ in 0..count {
                                r.pop()?;
                            }
                        }
                    }
                }
                Ok(())
            },
        );
    }

    match sim.run() {
        Ok(_) => SimVerdict::Completed,
        Err(SimError::Stall { .. }) => SimVerdict::Stalled,
        Err(SimError::Disconnected { .. }) => SimVerdict::Disconnected,
        Err(e) => SimVerdict::Failed(e.to_string()),
    }
}

/// Grace period for differential runs: generous enough that a busy CI
/// machine does not report a false stall on a composition that is
/// merely slow, small enough that genuinely-stalled property tests
/// finish. `FBLAS_STALL_GRACE_MS` still overrides.
pub fn differential_grace() -> Duration {
    match std::env::var("FBLAS_STALL_GRACE_MS") {
        Ok(ms) => Duration::from_millis(ms.parse().unwrap_or(100)),
        Err(_) => Duration::from_millis(100),
    }
}

/// Convenience: does the abstract analysis agree with the simulator at
/// the graph's configured capacities? Returns `(abstract, simulated)`
/// for assertion messages.
pub fn verdict_pair(rg: &RateGraph) -> (RateOutcome, SimVerdict) {
    let caps: Vec<u64> = (0..rg.channel_count()).map(|c| rg.capacity(c)).collect();
    let abstracted = rg.analyze();
    let simulated = run_on_simulator(rg, &caps, differential_grace());
    (abstracted, simulated)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_pipeline_completes_on_both() {
        let mut rg = RateGraph::new();
        let c0 = rg.add_channel("a_to_b", 4);
        let c1 = rg.add_channel("b_to_c", 4);
        rg.add_actor(
            "a",
            vec![RateStep::Push {
                channel: c0,
                count: 32,
            }],
        );
        rg.add_actor(
            "b",
            (0..32)
                .flat_map(|_| {
                    [
                        RateStep::Pop {
                            channel: c0,
                            count: 1,
                        },
                        RateStep::Push {
                            channel: c1,
                            count: 1,
                        },
                    ]
                })
                .collect(),
        );
        rg.add_actor(
            "c",
            vec![RateStep::Pop {
                channel: c1,
                count: 32,
            }],
        );
        let (a, s) = verdict_pair(&rg);
        assert!(a.is_completed(), "abstract: {a:?}");
        assert_eq!(s, SimVerdict::Completed);
    }

    #[test]
    fn burst_reorder_deadlocks_on_both() {
        // Consumer wants the whole burst from one channel before
        // touching the other — the ATAX shape in miniature.
        let mut rg = RateGraph::new();
        let c0 = rg.add_channel("direct", 2);
        let c1 = rg.add_channel("buffered", 2);
        rg.add_actor(
            "src",
            (0..8)
                .flat_map(|_| {
                    [
                        RateStep::Push {
                            channel: c0,
                            count: 1,
                        },
                        RateStep::Push {
                            channel: c1,
                            count: 1,
                        },
                    ]
                })
                .collect(),
        );
        rg.add_actor(
            "join",
            vec![
                RateStep::Pop {
                    channel: c1,
                    count: 8,
                },
                RateStep::Pop {
                    channel: c0,
                    count: 8,
                },
            ],
        );
        let (a, s) = verdict_pair(&rg);
        assert!(matches!(a, RateOutcome::Deadlock { .. }), "abstract: {a:?}");
        assert_eq!(s, SimVerdict::Stalled);
    }

    #[test]
    fn repaired_depths_complete_on_simulator() {
        let mut rg = RateGraph::new();
        let c0 = rg.add_channel("direct", 2);
        let c1 = rg.add_channel("buffered", 2);
        rg.add_actor(
            "src",
            (0..8)
                .flat_map(|_| {
                    [
                        RateStep::Push {
                            channel: c0,
                            count: 1,
                        },
                        RateStep::Push {
                            channel: c1,
                            count: 1,
                        },
                    ]
                })
                .collect(),
        );
        rg.add_actor(
            "join",
            vec![
                RateStep::Pop {
                    channel: c1,
                    count: 8,
                },
                RateStep::Pop {
                    channel: c0,
                    count: 8,
                },
            ],
        );
        let fixes = rg.repair().expect("depth-repairable");
        let mut caps: Vec<u64> = (0..rg.channel_count()).map(|c| rg.capacity(c)).collect();
        for (ch, depth) in fixes {
            caps[ch] = depth;
        }
        let v = run_on_simulator(&rg, &caps, differential_grace());
        assert_eq!(v, SimVerdict::Completed);
    }
}
