//! `fblas-lint` — static stream-contract analysis for fBLAS
//! compositions.
//!
//! The FBLAS paper (Sec. V) checks module compositions with a
//! *multitree* heuristic: sufficient for trees of streams, silent on
//! general module DAGs. This crate is the general tool: a multi-pass
//! analyzer that **proves a composition deadlock-free before any
//! simulation runs**, and explains — with stable diagnostic codes,
//! precise locations, and fix-it hints — why a rejected composition
//! cannot work.
//!
//! # Passes
//!
//! 1. **Rate analysis** ([`passes`]) — synchronous-dataflow balance
//!    equations plus an abstract Kahn-network execution
//!    ([`fblas_core::composition::rates`]). Computes the *exact*
//!    minimum depth of every channel; the fix-it on an under-depth
//!    finding is the number you paste into your config (the paper's
//!    fix (a)); a planner split is fix (b).
//! 2. **Contract checks** — the planner's streaming contracts: replay
//!    from a computational producer, tiling-order conflicts, operand
//!    shape and count mismatches, single-writer violations.
//! 3. **Resource feasibility** — composes `fblas-arch` estimates over
//!    the planned components and flags DSP / M20K / DRAM-bandwidth
//!    overcommit for the selected device.
//! 4. **Numeric lints** — W-way accumulation reassociation and
//!    mixed-precision hazards.
//!
//! # Trusting the analyzer
//!
//! A linter that disagrees with the simulator is worse than no linter.
//! The [`harness`] module replays the analyzer's abstract actor
//! programs on the real threaded simulator (`fblas-hlssim`), and the
//! `lint_differential` suite asserts, over hundreds of generated
//! graphs, that *lint accept ⟺ simulation completes* and *lint
//! deadlock ⟺ watchdog stall* — and that every reported minimum
//! channel depth is exact (the depth completes, depth − 1 stalls).
//! Kahn-network determinism is what makes this a theorem rather than a
//! coincidence: blocking point-to-point FIFOs make deadlock
//! schedule-independent, and completion is monotone in capacity.
//!
//! # Input dialects
//!
//! The `fblas-lint` binary (and [`input::classify`]) accepts three
//! JSON document shapes:
//!
//! * `{"routines": [...]}` — a codegen spec file (same schema as
//!   `fblas_core::codegen`);
//! * `{"program": {...}}` — operands + BLAS ops for the composition
//!   planner;
//! * `{"graph": {...}}` — a raw module DAG with explicit per-edge
//!   element counts, depths, and burst annotations.

// Tests may unwrap freely; library code must not (see clippy.toml).
#![cfg_attr(test, allow(clippy::disallowed_methods))]

// Dataflow engine and fusion analysis grew up here but now live in
// `fblas-core` (the fused execution backend consumes them); the module
// paths below keep every `fblas_lint::{dataflow, fusion}::*` caller
// working unchanged.
pub use fblas_core::composition::dataflow;
pub use fblas_core::composition::fusion;

pub mod diag;
pub mod harness;
pub mod input;
pub mod passes;

pub use diag::{Diagnostic, LintCode, LintReport, Location, Severity, REPORT_VERSION};
pub use fusion::{
    analyze_fusion, apply_elementwise, build_evaluator, check_obligations, infer_sems,
    sems_for_component, verify_witnesses, FusedEvaluator, FusedRegion, FusedRun, FusionPlan,
    FusionRejection, FusionStats, ModuleSem, FUSION_PLAN_SCHEMA,
};
pub use harness::{
    differential_grace, run_on_simulator, run_region_threaded, seeded_stream, seeded_streams,
    SimVerdict,
};
pub use input::{classify, Document};
pub use passes::{lint_document, lint_document_full, lint_mdag, LintOutput};

/// Lint a raw JSON document: classify the dialect, run the passes.
///
/// When the global metrics runtime is armed, each call counts into
/// `fblas_lint_runs_total` and its wall latency into `fblas_lint_us`,
/// so a serving layer can watch lint throughput next to execution.
pub fn lint_json(json: &str, file: &str) -> LintReport {
    lint_json_full(json, file).report
}

/// Like [`lint_json`], but also returns the fusion-plan artifacts the
/// analysis derived (one per analyzable graph, one per planned program
/// component).
pub fn lint_json_full(json: &str, file: &str) -> LintOutput {
    let t0 = fblas_metrics::armed().then(std::time::Instant::now);
    let out = match classify(json) {
        Ok(doc) => lint_document_full(&doc, file),
        Err(e) => {
            let mut r = LintReport::new();
            r.push(Diagnostic::new(
                LintCode::FL0010,
                Severity::Error,
                Location {
                    file: Some(file.to_string()),
                    ..Default::default()
                },
                e,
            ));
            LintOutput {
                report: r,
                fusion: Vec::new(),
            }
        }
    };
    if let (Some(t0), Some(reg)) = (t0, fblas_metrics::registry()) {
        reg.counter("fblas_lint_runs_total", &[]).inc();
        reg.histogram("fblas_lint_us", &[])
            .record(fblas_metrics::elapsed_us(t0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_json_reports_unparseable_input() {
        let r = lint_json("not json at all", "junk.json");
        assert!(!r.accepted());
        assert_eq!(r.diagnostics[0].code, LintCode::FL0010);
        assert_eq!(r.diagnostics[0].location.file.as_deref(), Some("junk.json"));
    }

    #[test]
    fn lint_json_routes_to_the_right_pass() {
        let r = lint_json(r#"{"routines": [{"blas_name": "sdot"}]}"#, "spec.json");
        assert!(r.accepted(), "{}", r.render_table());
    }
}
