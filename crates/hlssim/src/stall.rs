//! Structured stall forensics.
//!
//! When the watchdog declares a composition stalled (the paper's "stalls
//! forever", Sec. V-B), the interesting question is *why*: which modules
//! were blocked, on which channels, in which direction, and how full those
//! FIFOs were at the moment of detection. That wait-for snapshot is taken
//! **before** the context is poisoned — poisoning cascades `Poisoned`
//! errors through every module and destroys the evidence — and carried
//! inside [`SimError::Stall`](crate::SimError::Stall) as a [`StallReport`].

use std::fmt;

use serde::Serialize;

/// Which condition a blocked module was waiting on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum WaitDirection {
    /// Blocked in `push`: the FIFO was full (waiting for space).
    Full,
    /// Blocked in `pop`: the FIFO was empty (waiting for data).
    Empty,
}

impl fmt::Display for WaitDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaitDirection::Full => write!(f, "full"),
            WaitDirection::Empty => write!(f, "empty"),
        }
    }
}

/// One edge of the wait-for graph: a module blocked on a channel.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct BlockedModule {
    /// Name of the blocked module (`"?"` when the wait happened outside a
    /// named module thread).
    pub module: String,
    /// Name of the channel it is blocked on.
    pub channel: String,
    /// Whether it found the channel full (push side) or empty (pop side).
    pub direction: WaitDirection,
    /// FIFO occupancy at the moment of detection.
    pub occupancy: usize,
    /// FIFO capacity.
    pub capacity: usize,
}

/// Wait-for graph snapshot taken by the watchdog at stall detection time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct StallReport {
    /// Grace period that elapsed without progress, in milliseconds.
    pub grace_ms: u64,
    /// Progress epoch (total successful transfers) at detection.
    pub epoch: u64,
    /// Every module blocked on a channel operation, with the channel's
    /// state at detection. For a true deadlock this is the full cycle.
    pub blocked: Vec<BlockedModule>,
}

impl StallReport {
    /// The entry for a given module name, if that module was blocked.
    pub fn blocked_on(&self, module: &str) -> Option<&BlockedModule> {
        self.blocked.iter().find(|b| b.module == module)
    }
}

impl fmt::Display for StallReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no channel progress for {} ms at epoch {}; blocked modules: [",
            self.grace_ms, self.epoch
        )?;
        for (i, b) in self.blocked.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(
                f,
                "{} waiting on `{}` ({}, {}/{})",
                b.module, b.channel, b.direction, b.occupancy, b.capacity
            )?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StallReport {
        StallReport {
            grace_ms: 250,
            epoch: 7,
            blocked: vec![
                BlockedModule {
                    module: "producer".into(),
                    channel: "small".into(),
                    direction: WaitDirection::Full,
                    occupancy: 4,
                    capacity: 4,
                },
                BlockedModule {
                    module: "consumer".into(),
                    channel: "res".into(),
                    direction: WaitDirection::Empty,
                    occupancy: 0,
                    capacity: 1,
                },
            ],
        }
    }

    #[test]
    fn display_names_every_blocked_module() {
        let text = sample().to_string();
        assert!(text.contains("blocked modules"));
        assert!(text.contains("producer waiting on `small` (full, 4/4)"));
        assert!(text.contains("consumer waiting on `res` (empty, 0/1)"));
    }

    #[test]
    fn lookup_by_module_name() {
        let report = sample();
        assert_eq!(report.blocked_on("consumer").unwrap().channel, "res");
        assert!(report.blocked_on("ghost").is_none());
    }

    #[test]
    fn report_serializes_to_json() {
        let text = serde_json::to_string(&sample()).unwrap();
        assert!(text.contains("\"grace_ms\""));
        assert!(text.contains("\"Full\""));
        assert!(text.contains("\"occupancy\""));
    }
}
