//! Bounded single-producer/single-consumer FIFO channels.
//!
//! These are the software equivalent of the HLS `channel`/`stream` FIFOs the
//! FBLAS paper builds on: typed, bounded queues with blocking semantics on
//! both ends. A `push` into a full channel and a `pop` from an empty channel
//! block — this is the *backpressure* that makes module composition behave
//! like the hardware (an under-dimensioned downstream module slows its
//! producers, Sec. IV-B; an invalid composition stalls, Sec. V-B).
//!
//! Channels are registered with a [`SimContext`](crate::SimContext) so the
//! simulation watchdog can observe global progress (a monotonically
//! increasing *epoch*, bumped on every successful transfer) and the number
//! of threads currently blocked. Blocking waits use short timed waits and
//! re-check the context poison flag, so stall detection never needs to
//! enumerate channels to wake sleepers.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fblas_trace::EventKind;
use parking_lot::{Condvar, Mutex};
use serde::Serialize;

use crate::chunk::default_chunk;
use crate::error::SimError;
use crate::fault::{duplicate_value, flip_bit, FaultAction, FaultSite, GuardReport, GuardState};
use crate::simulation::{wait_slice, ChannelProbe, CtxShared, SimContext, Waiter};
use crate::stall::WaitDirection;

/// Occupancy and stall statistics for one channel, taken as a snapshot.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct ChannelStats {
    /// Total elements transferred through the channel.
    pub transferred: u64,
    /// Highest queue occupancy observed.
    pub max_occupancy: usize,
    /// Number of times the producer found the channel full and had to wait.
    pub full_stalls: u64,
    /// Number of times the consumer found the channel empty and had to wait.
    pub empty_stalls: u64,
}

struct ChanState<T> {
    queue: VecDeque<T>,
    sender_alive: bool,
    receiver_alive: bool,
    stats: ChannelStats,
    /// Integrity guard; only updated while a fault hook is armed.
    guard: GuardState,
}

/// Lock-free telemetry handles for one channel, resolved once at channel
/// creation when the global metrics runtime is armed. Every increment is
/// a relaxed atomic on a per-thread shard; when the runtime is disarmed
/// at creation time the whole struct is absent and each operation pays
/// one `Option` branch.
struct ChanMetrics {
    push_elements: fblas_metrics::Counter,
    pop_elements: fblas_metrics::Counter,
    full_waits: fblas_metrics::Counter,
    empty_waits: fblas_metrics::Counter,
    chunk_push_ops: fblas_metrics::Counter,
    chunk_pop_ops: fblas_metrics::Counter,
    wait_us: fblas_metrics::Hist,
}

impl ChanMetrics {
    fn new(reg: &fblas_metrics::Registry, channel: &str, capacity: usize) -> Self {
        let l: &[(&str, &str)] = &[("channel", channel)];
        // Capacity is fixed for the channel's lifetime; publishing it as
        // a gauge lets the flight recorder's occupancy-pinned rule
        // compare the occupancy gauge against it frame by frame.
        reg.gauge("fblas_channel_capacity", l).set(capacity as f64);
        ChanMetrics {
            push_elements: reg.counter("fblas_channel_push_elements_total", l),
            pop_elements: reg.counter("fblas_channel_pop_elements_total", l),
            full_waits: reg.counter("fblas_channel_full_waits_total", l),
            empty_waits: reg.counter("fblas_channel_empty_waits_total", l),
            chunk_push_ops: reg.counter(
                "fblas_channel_chunk_ops_total",
                &[("channel", channel), ("op", "push")],
            ),
            chunk_pop_ops: reg.counter(
                "fblas_channel_chunk_ops_total",
                &[("channel", channel), ("op", "pop")],
            ),
            wait_us: reg.histogram("fblas_channel_wait_us", l),
        }
    }

    /// Record the wall time of a completed blocked wait.
    #[inline]
    fn record_wait(&self, since: Option<Instant>) {
        if let Some(t0) = since {
            self.wait_us.record(fblas_metrics::elapsed_us(t0));
        }
    }
}

struct ChannelCore<T> {
    ctx: Arc<CtxShared>,
    name: Arc<str>,
    capacity: usize,
    state: Mutex<ChanState<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    /// Per-channel element sequence numbers, advanced only on the armed
    /// path. SPSC discipline makes them reproducible across runs, which
    /// is what lets a `FaultHook` target "element 17 of channel X"
    /// deterministically.
    push_seq: AtomicU64,
    pop_seq: AtomicU64,
    /// Telemetry handles, present only when the metrics runtime was
    /// armed when the channel was created.
    metrics: Option<ChanMetrics>,
}

/// RAII registration of "this thread is blocked on a channel operation".
///
/// A thread counts as blocked from its first unfulfilled wait until the
/// operation completes or errors — *not* per wait slice — so the watchdog
/// sees a stable `blocked == live` condition during a genuine deadlock.
/// Alongside the counter, the guard files a [`Waiter`] record (module,
/// channel, direction) in the context's wait-for table so stall detection
/// can report *who* is stuck on *what* rather than just *that* the graph
/// froze.
struct BlockGuard<'a> {
    ctx: &'a CtxShared,
    id: u64,
}

impl<'a> BlockGuard<'a> {
    fn new(ctx: &'a CtxShared, channel: &Arc<str>, direction: WaitDirection) -> Self {
        ctx.blocked.fetch_add(1, Ordering::AcqRel);
        let id = ctx.waiter_seq.fetch_add(1, Ordering::Relaxed);
        ctx.waiters.lock().insert(
            id,
            Waiter {
                module: fblas_trace::current_module(),
                channel: channel.clone(),
                direction,
            },
        );
        BlockGuard { ctx, id }
    }
}

impl Drop for BlockGuard<'_> {
    fn drop(&mut self) {
        self.ctx.waiters.lock().remove(&self.id);
        self.ctx.blocked.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Count one injected fault in the global registry, labeled by action.
/// Cold: only reachable while a fault hook is armed.
#[cold]
pub(crate) fn record_fault_metric(action: &str) {
    if let Some(reg) = fblas_metrics::registry() {
        reg.counter("fblas_fault_injected_total", &[("action", action)])
            .inc();
    }
}

impl<T> ChannelCore<T> {
    fn poisoned(&self) -> bool {
        self.ctx.poisoned.load(Ordering::Acquire)
    }

    /// The error a poisoned operation surfaces, naming the module whose
    /// failure caused the poisoning when that is known.
    fn poison_err(&self) -> SimError {
        SimError::Poisoned {
            by: self.ctx.poison_cause(),
        }
    }

    fn fault_armed(&self) -> bool {
        self.ctx.fault_armed.load(Ordering::Relaxed)
    }
}

impl<T: Send + 'static> ChannelProbe for ChannelCore<T> {
    fn probe_name(&self) -> String {
        self.name.to_string()
    }

    fn probe_stats(&self) -> ChannelStats {
        self.state.lock().stats.clone()
    }

    fn probe_occupancy(&self) -> usize {
        self.state.lock().queue.len()
    }

    fn probe_capacity(&self) -> usize {
        self.capacity
    }

    fn probe_guard(&self) -> Option<GuardReport> {
        self.state.lock().guard.report(&self.name)
    }
}

/// Producer endpoint of a bounded SPSC channel.
///
/// Not [`Clone`]: the single-producer discipline of hardware FIFOs is
/// enforced by the type system.
pub struct Sender<T> {
    core: Arc<ChannelCore<T>>,
}

/// Consumer endpoint of a bounded SPSC channel.
pub struct Receiver<T> {
    core: Arc<ChannelCore<T>>,
}

/// Create a bounded SPSC channel registered with `ctx`.
///
/// `capacity` is the FIFO depth (must be ≥ 1); `name` identifies the channel
/// in error messages and statistics. In the paper's terms this instantiates
/// an on-chip FIFO buffer of the given depth between two modules.
///
/// # Panics
/// Panics if `capacity == 0` — hardware FIFOs have at least one slot.
pub fn channel<T: Send + 'static>(
    ctx: &SimContext,
    capacity: usize,
    name: impl Into<String>,
) -> (Sender<T>, Receiver<T>) {
    try_channel(ctx, capacity, name).expect("channel capacity must be at least 1")
}

/// Fallible form of [`channel`]: returns [`SimError::Config`] instead of
/// panicking when `capacity == 0`. Use this when the depth comes from
/// user input (a planner config, a lint document) rather than from code
/// that already validated it.
pub fn try_channel<T: Send + 'static>(
    ctx: &SimContext,
    capacity: usize,
    name: impl Into<String>,
) -> Result<(Sender<T>, Receiver<T>), SimError> {
    let name = name.into();
    if capacity == 0 {
        return Err(SimError::Config {
            detail: format!("channel `{name}` has capacity 0; hardware FIFOs need >= 1 slot"),
        });
    }
    let metrics = fblas_metrics::registry().map(|reg| ChanMetrics::new(&reg, &name, capacity));
    let core = Arc::new(ChannelCore {
        ctx: ctx.shared(),
        name: Arc::from(name),
        capacity,
        state: Mutex::new(ChanState {
            queue: VecDeque::with_capacity(capacity.min(1 << 16)),
            sender_alive: true,
            receiver_alive: true,
            stats: ChannelStats::default(),
            guard: GuardState::default(),
        }),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
        push_seq: AtomicU64::new(0),
        pop_seq: AtomicU64::new(0),
        metrics,
    });
    ctx.register_probe(core.clone());
    Ok((Sender { core: core.clone() }, Receiver { core }))
}

impl<T: Send + 'static> Sender<T> {
    /// Push one element, blocking while the FIFO is full.
    ///
    /// Fails with [`SimError::Poisoned`] if the simulation was torn down
    /// (e.g. after stall detection) and [`SimError::Disconnected`] if the
    /// consumer is gone — which for fixed-count BLAS streams means the
    /// producer and consumer disagree on element counts (an invalid edge).
    pub fn push(&self, value: T) -> Result<(), SimError> {
        if self.core.fault_armed() {
            return self.push_armed(value);
        }
        self.push_raw(value)
    }

    /// The unarmed push path: byte-identical to the pre-fault-layer
    /// implementation (the only addition upstream is one relaxed atomic
    /// load in [`push`](Self::push)).
    fn push_raw(&self, value: T) -> Result<(), SimError> {
        let core = &self.core;
        let trace_from = fblas_trace::op_start();
        let mut waited = false;
        let mut wait_from: Option<Instant> = None;
        let mut blocked: Option<BlockGuard<'_>> = None;
        let mut st = core.state.lock();
        loop {
            if core.poisoned() {
                return Err(core.poison_err());
            }
            if !st.receiver_alive {
                return Err(SimError::Disconnected {
                    channel: core.name.to_string(),
                });
            }
            if st.queue.len() < core.capacity {
                st.queue.push_back(value);
                st.stats.transferred += 1;
                let occ = st.queue.len();
                if occ > st.stats.max_occupancy {
                    st.stats.max_occupancy = occ;
                }
                core.ctx.epoch.fetch_add(1, Ordering::Release);
                core.not_empty.notify_one();
                drop(st);
                if let Some(m) = &core.metrics {
                    m.push_elements.add(1);
                    m.record_wait(wait_from);
                }
                if let Some(from) = trace_from {
                    fblas_trace::record_channel_op(EventKind::Push, &core.name, from, waited);
                }
                return Ok(());
            }
            st.stats.full_stalls += 1;
            waited = true;
            if blocked.is_none() {
                blocked = Some(BlockGuard::new(&core.ctx, &core.name, WaitDirection::Full));
                if core.metrics.is_some() {
                    wait_from = Some(Instant::now());
                }
            }
            if let Some(m) = &core.metrics {
                m.full_waits.inc();
            }
            core.not_full.wait_for(&mut st, wait_slice());
        }
    }

    /// Push with the fault hook consulted: records the integrity guard
    /// **before** injection (so the digest captures what the producer
    /// meant to send), then applies any fault targeted at this
    /// element's sequence number.
    #[cold]
    fn push_armed(&self, mut value: T) -> Result<(), SimError> {
        let core = &self.core;
        core.state.lock().guard.record_push(&value);
        let seq = core.push_seq.fetch_add(1, Ordering::Relaxed);
        if let Some(action) = core.ctx.fault_for(FaultSite::Push, &core.name, seq) {
            fblas_trace::record_fault(&core.name, action.label());
            record_fault_metric(action.label());
            match action {
                FaultAction::Corrupt { bit } => {
                    flip_bit(&mut value, bit);
                }
                // The element vanishes before reaching the FIFO; the
                // producer proceeds as if the transfer happened.
                FaultAction::DropElement => return Ok(()),
                FaultAction::Duplicate => {
                    if let Some(dup) = duplicate_value(&value) {
                        self.push_raw(dup)?;
                    }
                }
                FaultAction::Delay { micros } => {
                    std::thread::sleep(Duration::from_micros(micros));
                }
            }
        }
        self.push_raw(value)
    }

    /// Push every element of `buf`, in order, moving whole chunks under
    /// one lock acquisition. On success `buf` is left empty (its
    /// allocation retained, so callers can refill and reuse it).
    ///
    /// Backpressure semantics are identical to pushing the elements one
    /// by one: a chunk larger than the free capacity transfers what
    /// fits, then blocks (counting `full_stalls` per wait slice and
    /// registering in the wait-for table) until the consumer makes
    /// room, and resumes with the remainder. Stats, the progress epoch,
    /// and the trace advance by the number of elements moved — once per
    /// lock acquisition instead of once per element.
    ///
    /// On error the already-transferred prefix has been delivered and
    /// `buf` retains the unsent tail.
    pub fn push_chunk(&self, buf: &mut Vec<T>) -> Result<(), SimError> {
        if self.core.fault_armed() {
            return self.push_chunk_armed(buf);
        }
        self.push_chunk_raw(buf)
    }

    fn push_chunk_raw(&self, buf: &mut Vec<T>) -> Result<(), SimError> {
        let core = &self.core;
        if buf.is_empty() {
            return Ok(());
        }
        let trace_from = fblas_trace::op_start();
        let total = buf.len() as u64;
        let mut waited = false;
        let mut wait_from: Option<Instant> = None;
        let mut blocked: Option<BlockGuard<'_>> = None;
        let mut st = core.state.lock();
        loop {
            if core.poisoned() {
                return Err(core.poison_err());
            }
            if !st.receiver_alive {
                return Err(SimError::Disconnected {
                    channel: core.name.to_string(),
                });
            }
            let free = core.capacity - st.queue.len();
            if free > 0 {
                let k = free.min(buf.len());
                st.queue.extend(buf.drain(..k));
                st.stats.transferred += k as u64;
                let occ = st.queue.len();
                if occ > st.stats.max_occupancy {
                    st.stats.max_occupancy = occ;
                }
                core.ctx.epoch.fetch_add(k as u64, Ordering::Release);
                core.not_empty.notify_one();
                // Element counters advance per transfer section (exactly
                // like `stats.transferred`), so a chunk that errors out
                // mid-way still accounts its delivered prefix.
                if let Some(m) = &core.metrics {
                    m.push_elements.add(k as u64);
                }
                if buf.is_empty() {
                    drop(st);
                    drop(blocked);
                    if let Some(m) = &core.metrics {
                        m.chunk_push_ops.inc();
                        m.record_wait(wait_from);
                    }
                    if let Some(from) = trace_from {
                        fblas_trace::record_channel_chunk(
                            EventKind::Push,
                            &core.name,
                            from,
                            waited,
                            total,
                        );
                    }
                    return Ok(());
                }
                // The chunk split at capacity: fall through to the same
                // stall accounting a sequential push performs when it
                // finds the FIFO full.
            }
            st.stats.full_stalls += 1;
            waited = true;
            if blocked.is_none() {
                blocked = Some(BlockGuard::new(&core.ctx, &core.name, WaitDirection::Full));
                if core.metrics.is_some() {
                    wait_from = Some(Instant::now());
                }
            }
            if let Some(m) = &core.metrics {
                m.full_waits.inc();
            }
            core.not_full.wait_for(&mut st, wait_slice());
        }
    }

    /// Chunked push with the fault hook consulted: degrades to
    /// element-wise [`push_armed`](Self::push_armed) so every element
    /// gets its own sequence number and fault opportunity, keeping
    /// injection points identical across chunk-size sweeps. On error
    /// `buf` retains the not-yet-attempted tail (the element in flight
    /// when the error surfaced is consumed).
    #[cold]
    fn push_chunk_armed(&self, buf: &mut Vec<T>) -> Result<(), SimError> {
        let rest = std::mem::take(buf);
        let mut iter = rest.into_iter();
        while let Some(v) = iter.next() {
            if let Err(e) = self.push_armed(v) {
                *buf = iter.collect();
                return Err(e);
            }
        }
        Ok(())
    }

    /// Non-blocking best-effort push of as much of `buf` as currently
    /// fits, under one lock acquisition; elements that do not fit stay
    /// in `buf`. Never waits and never consults the fault hook — this
    /// exists for teardown paths ([`ChunkWriter`](crate::ChunkWriter)'s
    /// drop salvage) that must not block during unwinding.
    pub fn try_push_chunk(&self, buf: &mut Vec<T>) -> Result<(), SimError> {
        let core = &self.core;
        if buf.is_empty() {
            return Ok(());
        }
        let mut st = core.state.lock();
        if core.poisoned() {
            return Err(core.poison_err());
        }
        if !st.receiver_alive {
            return Err(SimError::Disconnected {
                channel: core.name.to_string(),
            });
        }
        let free = core.capacity - st.queue.len();
        let k = free.min(buf.len());
        if k > 0 {
            st.queue.extend(buf.drain(..k));
            st.stats.transferred += k as u64;
            let occ = st.queue.len();
            if occ > st.stats.max_occupancy {
                st.stats.max_occupancy = occ;
            }
            core.ctx.epoch.fetch_add(k as u64, Ordering::Release);
            core.not_empty.notify_one();
            if let Some(m) = &core.metrics {
                m.push_elements.add(k as u64);
            }
        }
        Ok(())
    }

    /// Push every element of an iterator, in order, batching transfers
    /// into chunks of the configured size (`FBLAS_CHUNK`, default 256).
    pub fn push_iter<I: IntoIterator<Item = T>>(&self, iter: I) -> Result<(), SimError> {
        let chunk = default_chunk();
        if chunk <= 1 {
            for v in iter {
                self.push(v)?;
            }
            return Ok(());
        }
        let mut buf = Vec::with_capacity(chunk);
        for v in iter {
            buf.push(v);
            if buf.len() == chunk {
                self.push_chunk(&mut buf)?;
            }
        }
        self.push_chunk(&mut buf)
    }

    /// Snapshot of this channel's statistics.
    pub fn stats(&self) -> ChannelStats {
        self.core.state.lock().stats.clone()
    }

    /// The channel's configured FIFO depth.
    pub fn capacity(&self) -> usize {
        self.core.capacity
    }

    /// The channel's name.
    pub fn name(&self) -> &str {
        &self.core.name
    }
}

impl<T: Clone + Send + 'static> Sender<T> {
    /// Push every element of a slice, in order, cloning each chunk in
    /// bulk and transferring it under one lock acquisition.
    pub fn push_slice(&self, values: &[T]) -> Result<(), SimError> {
        let chunk = default_chunk();
        if chunk <= 1 {
            for v in values {
                self.push(v.clone())?;
            }
            return Ok(());
        }
        let mut buf = Vec::with_capacity(chunk.min(values.len()));
        for part in values.chunks(chunk) {
            buf.extend_from_slice(part);
            self.push_chunk(&mut buf)?;
        }
        Ok(())
    }
}

impl<T: Send + 'static> Receiver<T> {
    /// Pop one element, blocking while the FIFO is empty.
    ///
    /// Fails with [`SimError::Disconnected`] if the FIFO is empty and the
    /// producer endpoint has been dropped: the consumer expected more
    /// elements than were produced (count-mismatched composition).
    pub fn pop(&self) -> Result<T, SimError> {
        if self.core.fault_armed() {
            return self.pop_armed();
        }
        self.pop_raw()
    }

    /// The unarmed pop path (see [`Sender::push_raw`] on zero-cost
    /// disarming).
    fn pop_raw(&self) -> Result<T, SimError> {
        let core = &self.core;
        let trace_from = fblas_trace::op_start();
        let mut waited = false;
        let mut wait_from: Option<Instant> = None;
        let mut blocked: Option<BlockGuard<'_>> = None;
        let mut st = core.state.lock();
        loop {
            if core.poisoned() {
                return Err(core.poison_err());
            }
            if let Some(v) = st.queue.pop_front() {
                core.ctx.epoch.fetch_add(1, Ordering::Release);
                core.not_full.notify_one();
                drop(st);
                if let Some(m) = &core.metrics {
                    m.pop_elements.add(1);
                    m.record_wait(wait_from);
                }
                if let Some(from) = trace_from {
                    fblas_trace::record_channel_op(EventKind::Pop, &core.name, from, waited);
                }
                return Ok(v);
            }
            if !st.sender_alive {
                return Err(SimError::Disconnected {
                    channel: core.name.to_string(),
                });
            }
            st.stats.empty_stalls += 1;
            waited = true;
            if blocked.is_none() {
                blocked = Some(BlockGuard::new(&core.ctx, &core.name, WaitDirection::Empty));
                if core.metrics.is_some() {
                    wait_from = Some(Instant::now());
                }
            }
            if let Some(m) = &core.metrics {
                m.empty_waits.inc();
            }
            core.not_empty.wait_for(&mut st, wait_slice());
        }
    }

    /// Pop with the fault hook consulted: applies any fault targeted at
    /// this element's sequence number, then records the integrity guard
    /// **after** injection (so the digest captures what the consumer
    /// actually observed).
    #[cold]
    fn pop_armed(&self) -> Result<T, SimError> {
        let core = &self.core;
        loop {
            let mut value = self.pop_raw()?;
            let seq = core.pop_seq.fetch_add(1, Ordering::Relaxed);
            if let Some(action) = core.ctx.fault_for(FaultSite::Pop, &core.name, seq) {
                fblas_trace::record_fault(&core.name, action.label());
                record_fault_metric(action.label());
                match action {
                    FaultAction::Corrupt { bit } => {
                        flip_bit(&mut value, bit);
                    }
                    // The element is consumed and discarded; the
                    // consumer keeps waiting for the next one.
                    FaultAction::DropElement => continue,
                    // Duplication is a push-side fault; ignored here.
                    FaultAction::Duplicate => {}
                    FaultAction::Delay { micros } => {
                        std::thread::sleep(Duration::from_micros(micros));
                    }
                }
            }
            core.state.lock().guard.record_pop(&value);
            return Ok(value);
        }
    }

    /// Pop up to `max` elements into `out` under one lock acquisition,
    /// returning how many were appended.
    ///
    /// Blocks only until *at least one* element is available (or the
    /// producer disconnects / the simulation is poisoned), then takes
    /// whatever is queued up to `max` — it never waits to fill the
    /// chunk, so a consumer using `pop_chunk` in a loop observes the
    /// same element sequence and liveness as one calling [`pop`] per
    /// element. Stats, the progress epoch, and the trace advance by the
    /// number of elements taken.
    pub fn pop_chunk(&self, out: &mut Vec<T>, max: usize) -> Result<usize, SimError> {
        if max == 0 {
            return Ok(0);
        }
        if self.core.fault_armed() {
            // Degrade to one element per call so every element gets its
            // own sequence number and fault opportunity; callers loop
            // until satisfied, so semantics are unchanged.
            let v = self.pop_armed()?;
            out.push(v);
            return Ok(1);
        }
        self.pop_chunk_raw(out, max)
    }

    fn pop_chunk_raw(&self, out: &mut Vec<T>, max: usize) -> Result<usize, SimError> {
        let core = &self.core;
        let trace_from = fblas_trace::op_start();
        let mut waited = false;
        let mut wait_from: Option<Instant> = None;
        let mut blocked: Option<BlockGuard<'_>> = None;
        let mut st = core.state.lock();
        loop {
            if core.poisoned() {
                return Err(core.poison_err());
            }
            if !st.queue.is_empty() {
                let k = st.queue.len().min(max);
                out.reserve(k);
                out.extend(st.queue.drain(..k));
                core.ctx.epoch.fetch_add(k as u64, Ordering::Release);
                core.not_full.notify_one();
                drop(st);
                drop(blocked);
                if let Some(m) = &core.metrics {
                    m.pop_elements.add(k as u64);
                    m.chunk_pop_ops.inc();
                    m.record_wait(wait_from);
                }
                if let Some(from) = trace_from {
                    fblas_trace::record_channel_chunk(
                        EventKind::Pop,
                        &core.name,
                        from,
                        waited,
                        k as u64,
                    );
                }
                return Ok(k);
            }
            if !st.sender_alive {
                return Err(SimError::Disconnected {
                    channel: core.name.to_string(),
                });
            }
            st.stats.empty_stalls += 1;
            waited = true;
            if blocked.is_none() {
                blocked = Some(BlockGuard::new(&core.ctx, &core.name, WaitDirection::Empty));
                if core.metrics.is_some() {
                    wait_from = Some(Instant::now());
                }
            }
            if let Some(m) = &core.metrics {
                m.empty_waits.inc();
            }
            core.not_empty.wait_for(&mut st, wait_slice());
        }
    }

    /// Pop exactly `n` elements into a fresh `Vec`, batching transfers
    /// into chunks of the configured size (`FBLAS_CHUNK`, default 256).
    pub fn pop_n(&self, n: usize) -> Result<Vec<T>, SimError> {
        let chunk = default_chunk();
        let mut out = Vec::with_capacity(n);
        if chunk <= 1 {
            for _ in 0..n {
                out.push(self.pop()?);
            }
            return Ok(out);
        }
        while out.len() < n {
            let want = (n - out.len()).min(chunk);
            self.pop_chunk(&mut out, want)?;
        }
        Ok(out)
    }

    /// Pop elements until the producer disconnects, collecting everything.
    ///
    /// Unlike [`pop`](Self::pop), a disconnect here is the *expected* end of
    /// stream. Any other error is propagated.
    pub fn drain(&self) -> Result<Vec<T>, SimError> {
        let chunk = default_chunk().max(1);
        let mut out = Vec::new();
        loop {
            match self.pop_chunk(&mut out, chunk) {
                Ok(_) => {}
                Err(SimError::Disconnected { .. }) => return Ok(out),
                Err(e) => return Err(e),
            }
        }
    }

    /// Snapshot of this channel's statistics.
    pub fn stats(&self) -> ChannelStats {
        self.core.state.lock().stats.clone()
    }

    /// The channel's name.
    pub fn name(&self) -> &str {
        &self.core.name
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.core.state.lock();
        st.sender_alive = false;
        self.core.not_empty.notify_one();
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.core.state.lock();
        st.receiver_alive = false;
        self.core.not_full.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimContext;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn fifo_order_is_preserved() {
        let ctx = SimContext::new();
        let (tx, rx) = channel::<u32>(&ctx, 4, "ch");
        thread::scope(|s| {
            s.spawn(move || {
                for i in 0..100 {
                    tx.push(i).unwrap();
                }
            });
            let got = rx.pop_n(100).unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        });
    }

    #[test]
    fn capacity_bounds_occupancy() {
        let ctx = SimContext::new();
        let (tx, rx) = channel::<u8>(&ctx, 3, "ch");
        thread::scope(|s| {
            s.spawn(move || tx.push_iter(0..50).unwrap());
            let all = rx.pop_n(50).unwrap();
            assert_eq!(all.len(), 50);
            assert!(rx.stats().max_occupancy <= 3);
        });
    }

    #[test]
    fn producer_blocks_when_full() {
        let ctx = SimContext::new();
        let (tx, rx) = channel::<u8>(&ctx, 1, "ch");
        thread::scope(|s| {
            s.spawn(move || {
                tx.push(1).unwrap();
                tx.push(2).unwrap(); // must wait until consumer pops
            });
            thread::sleep(Duration::from_millis(10));
            assert_eq!(rx.pop().unwrap(), 1);
            assert_eq!(rx.pop().unwrap(), 2);
            assert!(rx.stats().full_stalls >= 1);
        });
    }

    #[test]
    fn pop_after_sender_drop_reports_disconnect() {
        let ctx = SimContext::new();
        let (tx, rx) = channel::<u8>(&ctx, 2, "ch_x");
        tx.push(7).unwrap();
        drop(tx);
        assert_eq!(rx.pop().unwrap(), 7);
        match rx.pop() {
            Err(SimError::Disconnected { channel }) => assert_eq!(channel, "ch_x"),
            other => panic!("expected disconnect, got {other:?}"),
        }
    }

    #[test]
    fn push_after_receiver_drop_reports_disconnect() {
        let ctx = SimContext::new();
        let (tx, rx) = channel::<u8>(&ctx, 2, "ch_y");
        drop(rx);
        assert!(matches!(tx.push(1), Err(SimError::Disconnected { .. })));
    }

    #[test]
    fn drain_collects_until_eos() {
        let ctx = SimContext::new();
        let (tx, rx) = channel::<u32>(&ctx, 8, "ch");
        thread::scope(|s| {
            s.spawn(move || {
                tx.push_slice(&[1, 2, 3]).unwrap();
            });
            assert_eq!(rx.drain().unwrap(), vec![1, 2, 3]);
        });
    }

    #[test]
    fn poisoning_unblocks_a_stuck_producer() {
        let ctx = SimContext::new();
        let (tx, _rx) = channel::<u8>(&ctx, 1, "ch");
        let ctx2 = ctx.clone();
        thread::scope(|s| {
            let h = s.spawn(move || {
                tx.push(1).unwrap();
                tx.push(2) // blocks: capacity 1, nobody pops
            });
            thread::sleep(Duration::from_millis(20));
            ctx2.poison();
            assert_eq!(h.join().unwrap(), Err(SimError::Poisoned { by: None }));
        });
    }

    use crate::fault::{FaultHook, ModuleFault};

    struct ChannelFaultAt {
        site: FaultSite,
        index: u64,
        action: FaultAction,
    }

    impl FaultHook for ChannelFaultAt {
        fn on_channel(&self, site: FaultSite, _channel: &str, index: u64) -> Option<FaultAction> {
            (site == self.site && index == self.index).then_some(self.action)
        }
        fn on_module_start(&self, _: &str) -> Option<ModuleFault> {
            None
        }
    }

    #[test]
    fn armed_corrupt_fault_flips_the_targeted_element_and_trips_the_guard() {
        let ctx = SimContext::new();
        ctx.arm_faults(Arc::new(ChannelFaultAt {
            site: FaultSite::Push,
            index: 2,
            action: FaultAction::Corrupt { bit: 0 },
        }));
        let (tx, rx) = channel::<u64>(&ctx, 8, "chaos");
        tx.push_slice(&[10, 20, 30, 40]).unwrap();
        drop(tx);
        assert_eq!(rx.drain().unwrap(), vec![10, 20, 31, 40]);
        let guards = ctx.guard_reports();
        assert_eq!(guards.len(), 1);
        let g = &guards[0];
        assert_eq!((g.pushed, g.popped), (4, 4));
        assert!(g.tracked && !g.digests_match && !g.clean());
    }

    #[test]
    fn armed_pop_side_corruption_is_also_caught() {
        // Push-side digest records the intended value; the pop-side
        // digest records what the consumer saw post-fault.
        let ctx = SimContext::new();
        ctx.arm_faults(Arc::new(ChannelFaultAt {
            site: FaultSite::Pop,
            index: 0,
            action: FaultAction::Corrupt { bit: 63 },
        }));
        let (tx, rx) = channel::<u64>(&ctx, 4, "chaos_pop");
        tx.push_slice(&[5]).unwrap();
        drop(tx);
        assert_eq!(rx.drain().unwrap(), vec![5 | (1 << 63)]);
        assert!(!ctx.guard_reports()[0].clean());
    }

    #[test]
    fn armed_drop_and_duplicate_faults_skew_the_guard_counts() {
        let ctx = SimContext::new();
        ctx.arm_faults(Arc::new(ChannelFaultAt {
            site: FaultSite::Push,
            index: 1,
            action: FaultAction::DropElement,
        }));
        let (tx, rx) = channel::<u64>(&ctx, 8, "chaos_drop");
        tx.push_slice(&[10, 20, 30]).unwrap();
        drop(tx);
        assert_eq!(rx.drain().unwrap(), vec![10, 30]);
        let g = &ctx.guard_reports()[0];
        assert_eq!((g.pushed, g.popped), (3, 2));
        assert!(!g.clean());

        let ctx = SimContext::new();
        ctx.arm_faults(Arc::new(ChannelFaultAt {
            site: FaultSite::Push,
            index: 1,
            action: FaultAction::Duplicate,
        }));
        let (tx, rx) = channel::<u64>(&ctx, 8, "chaos_dup");
        tx.push_slice(&[10, 20, 30]).unwrap();
        drop(tx);
        assert_eq!(rx.drain().unwrap(), vec![10, 20, 20, 30]);
        let g = &ctx.guard_reports()[0];
        assert_eq!((g.pushed, g.popped), (3, 4));
        assert!(!g.clean());
    }

    #[test]
    fn disarmed_context_keeps_guards_silent() {
        let ctx = SimContext::new();
        let (tx, rx) = channel::<u64>(&ctx, 8, "quiet");
        tx.push_slice(&[1, 2, 3]).unwrap();
        drop(tx);
        assert_eq!(rx.drain().unwrap(), vec![1, 2, 3]);
        assert!(ctx.guard_reports().is_empty());
    }

    #[test]
    fn try_push_chunk_moves_what_fits_without_blocking() {
        let ctx = SimContext::new();
        let (tx, rx) = channel::<u8>(&ctx, 2, "try");
        let mut buf = vec![1, 2, 3, 4];
        tx.try_push_chunk(&mut buf).unwrap();
        assert_eq!(buf, vec![3, 4], "overflow stays in the buffer");
        assert_eq!(rx.pop_n(2).unwrap(), vec![1, 2]);
        tx.try_push_chunk(&mut buf).unwrap();
        assert!(buf.is_empty());
        drop(tx);
        assert_eq!(rx.drain().unwrap(), vec![3, 4]);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let ctx = SimContext::new();
        let _ = channel::<u8>(&ctx, 0, "bad");
    }

    #[test]
    fn try_channel_reports_zero_capacity_as_config_error() {
        let ctx = SimContext::new();
        match try_channel::<u8>(&ctx, 0, "bad") {
            Err(SimError::Config { detail }) => {
                assert!(detail.contains("`bad`"), "{detail}");
                assert!(detail.contains("capacity 0"), "{detail}");
            }
            other => panic!("expected Config error, got {:?}", other.map(|_| ())),
        }
        // The happy path is identical to `channel`.
        let (tx, rx) = try_channel::<u8>(&ctx, 2, "ok").unwrap();
        tx.push(9).unwrap();
        drop(tx);
        assert_eq!(rx.pop().unwrap(), 9);
    }

    #[test]
    fn stats_track_transfers() {
        let ctx = SimContext::new();
        let (tx, rx) = channel::<u8>(&ctx, 16, "ch");
        tx.push_slice(&[1, 2, 3, 4]).unwrap();
        let _ = rx.pop_n(4).unwrap();
        assert_eq!(tx.stats().transferred, 4);
        assert_eq!(tx.stats().max_occupancy, 4);
    }

    #[test]
    fn push_chunk_splits_at_capacity_and_preserves_order() {
        let ctx = SimContext::new();
        let (tx, rx) = channel::<u32>(&ctx, 4, "ch");
        thread::scope(|s| {
            s.spawn(move || {
                let mut buf: Vec<u32> = (0..64).collect();
                tx.push_chunk(&mut buf).unwrap();
                assert!(buf.is_empty(), "successful push_chunk drains the buffer");
                assert!(
                    tx.stats().full_stalls >= 1,
                    "a 64-element chunk into a depth-4 FIFO must stall"
                );
            });
            // Slow consumer: forces the producer to split repeatedly.
            let mut got = Vec::new();
            while got.len() < 64 {
                thread::sleep(Duration::from_millis(1));
                rx.pop_chunk(&mut got, 64).unwrap();
            }
            assert_eq!(got, (0..64).collect::<Vec<_>>());
            assert!(rx.stats().max_occupancy <= 4);
        });
    }

    #[test]
    fn pop_chunk_takes_what_is_available_without_waiting_to_fill() {
        let ctx = SimContext::new();
        let (tx, rx) = channel::<u8>(&ctx, 8, "ch");
        tx.push_slice(&[1, 2, 3]).unwrap();
        let mut out = Vec::new();
        // Asks for up to 100 but must return the 3 queued elements now.
        assert_eq!(rx.pop_chunk(&mut out, 100).unwrap(), 3);
        assert_eq!(out, vec![1, 2, 3]);
        // max == 0 is a no-op even on an empty channel.
        assert_eq!(rx.pop_chunk(&mut out, 0).unwrap(), 0);
    }

    #[test]
    fn pop_chunk_reports_disconnect_only_when_empty() {
        let ctx = SimContext::new();
        let (tx, rx) = channel::<u8>(&ctx, 8, "ch_z");
        tx.push_slice(&[9, 8]).unwrap();
        drop(tx);
        let mut out = Vec::new();
        assert_eq!(rx.pop_chunk(&mut out, 10).unwrap(), 2);
        match rx.pop_chunk(&mut out, 10) {
            Err(SimError::Disconnected { channel }) => assert_eq!(channel, "ch_z"),
            other => panic!("expected disconnect, got {other:?}"),
        }
    }

    #[test]
    fn push_chunk_error_keeps_unsent_tail() {
        let ctx = SimContext::new();
        let (tx, rx) = channel::<u8>(&ctx, 2, "ch");
        drop(rx);
        let mut buf = vec![1, 2, 3, 4];
        assert!(matches!(
            tx.push_chunk(&mut buf),
            Err(SimError::Disconnected { .. })
        ));
        assert_eq!(buf, vec![1, 2, 3, 4], "nothing sent to a dead consumer");
    }

    #[test]
    fn empty_push_chunk_is_a_no_op() {
        let ctx = SimContext::new();
        let (tx, _rx) = channel::<u8>(&ctx, 1, "ch");
        let mut buf = Vec::new();
        tx.push_chunk(&mut buf).unwrap();
        assert_eq!(tx.stats().transferred, 0);
    }

    #[test]
    fn chunked_and_elementwise_transfers_agree_on_stats() {
        // Same seeded stream moved both ways: transferred and
        // max_occupancy must match exactly (stall counts are timing
        // dependent, so only checked for presence under pressure).
        let data: Vec<u64> = (0..5000).map(|i: u64| i.wrapping_mul(2654435761)).collect();
        let run = |chunked: bool| -> (ChannelStats, Vec<u64>) {
            let ctx = SimContext::new();
            let (tx, rx) = channel::<u64>(&ctx, 16, "ch");
            let data = data.clone();
            thread::scope(|s| {
                s.spawn(move || {
                    if chunked {
                        let mut buf = Vec::new();
                        for part in data.chunks(64) {
                            buf.extend_from_slice(part);
                            tx.push_chunk(&mut buf).unwrap();
                        }
                    } else {
                        for v in data {
                            tx.push(v).unwrap();
                        }
                    }
                });
                let mut got = Vec::new();
                while got.len() < 5000 {
                    if chunked {
                        rx.pop_chunk(&mut got, 64).unwrap();
                    } else {
                        got.push(rx.pop().unwrap());
                    }
                }
                (rx.stats(), got)
            })
        };
        let (st_elem, got_elem) = run(false);
        let (st_chunk, got_chunk) = run(true);
        assert_eq!(got_elem, got_chunk);
        assert_eq!(st_elem.transferred, st_chunk.transferred);
        assert_eq!(st_chunk.transferred, 5000);
        // Both runs bound occupancy by the FIFO depth.
        assert!(st_elem.max_occupancy <= 16 && st_chunk.max_occupancy <= 16);
    }
}
