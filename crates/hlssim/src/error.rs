//! Error type shared by channels, modules, and the simulation runner.

use std::fmt;

/// Errors surfaced by the dataflow simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The composition deadlocked: every live module was blocked on a
    /// channel operation and no global progress happened for the grace
    /// period. This is the deterministic rendering of the paper's
    /// "the composition would stall forever" (Sec. V-B).
    Stall {
        /// Human-readable description of where the stall was observed.
        detail: String,
    },
    /// A channel was poisoned (by stall detection or by a peer module
    /// failing); the pending operation cannot complete.
    Poisoned,
    /// A `pop` found the channel empty with the producer gone, or a `push`
    /// found the consumer gone. For BLAS modules all element counts are
    /// statically known, so a disconnect mid-stream indicates a protocol
    /// mismatch between producer and consumer (e.g. incompatible tiling
    /// schemes — an *invalid edge* in the paper's MDAG terminology).
    Disconnected {
        /// Name of the channel on which the mismatch was detected.
        channel: String,
    },
    /// A module returned an application-level error.
    Module {
        /// Name of the failing module.
        module: String,
        /// Error description.
        detail: String,
    },
}

impl SimError {
    /// Convenience constructor for module-level failures.
    pub fn module(module: impl Into<String>, detail: impl Into<String>) -> Self {
        SimError::Module {
            module: module.into(),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Stall { detail } => write!(f, "composition stalled: {detail}"),
            SimError::Poisoned => write!(f, "channel poisoned during teardown"),
            SimError::Disconnected { channel } => {
                write!(f, "channel `{channel}` disconnected mid-stream (protocol mismatch)")
            }
            SimError::Module { module, detail } => {
                write!(f, "module `{module}` failed: {detail}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = SimError::Stall { detail: "all 3 modules blocked".into() };
        assert!(e.to_string().contains("stalled"));
        let e = SimError::Disconnected { channel: "ch_x".into() };
        assert!(e.to_string().contains("ch_x"));
        let e = SimError::module("dot", "bad N");
        assert!(e.to_string().contains("dot") && e.to_string().contains("bad N"));
        assert_eq!(SimError::Poisoned.to_string(), "channel poisoned during teardown");
    }

    #[test]
    fn equality_distinguishes_variants() {
        assert_ne!(
            SimError::Poisoned,
            SimError::Stall { detail: String::new() }
        );
        assert_eq!(
            SimError::module("a", "b"),
            SimError::Module { module: "a".into(), detail: "b".into() }
        );
    }
}
