//! Error type shared by channels, modules, and the simulation runner.

use std::fmt;

use crate::stall::StallReport;

/// Errors surfaced by the dataflow simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The composition deadlocked: every live module was blocked on a
    /// channel operation and no global progress happened for the grace
    /// period. This is the deterministic rendering of the paper's
    /// "the composition would stall forever" (Sec. V-B).
    Stall {
        /// Wait-for graph snapshot taken at detection time, before
        /// poisoning: per blocked module, the channel it waited on, the
        /// direction (full vs. empty), and the FIFO state.
        report: StallReport,
    },
    /// A channel was poisoned (by stall detection or by a peer module
    /// failing); the pending operation cannot complete.
    Poisoned {
        /// The module whose failure triggered the poisoning, when known
        /// (a panicking peer is named here; watchdog-initiated
        /// poisoning leaves it `None` because the stall itself carries
        /// the forensics).
        by: Option<String>,
    },
    /// The simulation exceeded the wall-clock deadline configured with
    /// [`crate::Simulation::set_deadline`] while at least one module
    /// was still live. Unlike [`SimError::Stall`] this fires even when
    /// the hung module is not blocked on any channel (e.g. an injected
    /// hang fault spinning without touching its FIFOs).
    Deadline {
        /// Wait-for graph snapshot taken at expiry, before poisoning:
        /// whatever modules *were* channel-blocked at that moment.
        report: StallReport,
    },
    /// A `pop` found the channel empty with the producer gone, or a `push`
    /// found the consumer gone. For BLAS modules all element counts are
    /// statically known, so a disconnect mid-stream indicates a protocol
    /// mismatch between producer and consumer (e.g. incompatible tiling
    /// schemes — an *invalid edge* in the paper's MDAG terminology).
    Disconnected {
        /// Name of the channel on which the mismatch was detected.
        channel: String,
    },
    /// A module returned an application-level error.
    Module {
        /// Name of the failing module.
        module: String,
        /// Error description.
        detail: String,
    },
    /// A simulation object was configured with parameters that cannot
    /// describe hardware (e.g. a zero-capacity FIFO). Returned by the
    /// fallible constructors ([`crate::try_channel`]) so callers driven
    /// by user input can reject bad configs without panicking.
    Config {
        /// What was wrong.
        detail: String,
    },
}

impl SimError {
    /// Convenience constructor for module-level failures.
    pub fn module(module: impl Into<String>, detail: impl Into<String>) -> Self {
        SimError::Module {
            module: module.into(),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Stall { report } => write!(f, "composition stalled: {report}"),
            SimError::Poisoned { by: None } => write!(f, "channel poisoned during teardown"),
            SimError::Poisoned { by: Some(module) } => {
                write!(
                    f,
                    "channel poisoned during teardown (module `{module}` failed)"
                )
            }
            SimError::Deadline { report } => {
                write!(f, "simulation deadline exceeded: {report}")
            }
            SimError::Disconnected { channel } => {
                write!(
                    f,
                    "channel `{channel}` disconnected mid-stream (protocol mismatch)"
                )
            }
            SimError::Module { module, detail } => {
                write!(f, "module `{module}` failed: {detail}")
            }
            SimError::Config { detail } => write!(f, "invalid configuration: {detail}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stall::{BlockedModule, WaitDirection};

    fn stall_report() -> StallReport {
        StallReport {
            grace_ms: 250,
            epoch: 3,
            blocked: vec![BlockedModule {
                module: "a".into(),
                channel: "ch".into(),
                direction: WaitDirection::Empty,
                occupancy: 0,
                capacity: 1,
            }],
        }
    }

    #[test]
    fn display_formats_are_informative() {
        let e = SimError::Stall {
            report: stall_report(),
        };
        assert!(e.to_string().contains("stalled"));
        assert!(e.to_string().contains("blocked modules"));
        assert!(e.to_string().contains("`ch`"));
        let e = SimError::Disconnected {
            channel: "ch_x".into(),
        };
        assert!(e.to_string().contains("ch_x"));
        let e = SimError::module("dot", "bad N");
        assert!(e.to_string().contains("dot") && e.to_string().contains("bad N"));
        assert_eq!(
            SimError::Poisoned { by: None }.to_string(),
            "channel poisoned during teardown"
        );
        let e = SimError::Poisoned {
            by: Some("gemv".into()),
        };
        assert!(e.to_string().contains("`gemv`"));
        let e = SimError::Deadline {
            report: stall_report(),
        };
        assert!(e.to_string().contains("deadline"));
    }

    #[test]
    fn equality_distinguishes_variants() {
        assert_ne!(
            SimError::Poisoned { by: None },
            SimError::Stall {
                report: stall_report()
            }
        );
        assert_eq!(
            SimError::module("a", "b"),
            SimError::Module {
                module: "a".into(),
                detail: "b".into()
            }
        );
    }
}
