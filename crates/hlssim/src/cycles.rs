//! Pipeline cycle cost model (paper Sec. IV and V-A).
//!
//! A fully pipelined circuit with latency `L`, initiation interval `I`, and
//! `M` input iterations completes in `C = L + I·M` cycles. FBLAS modules are
//! built with pipeline-enabling transformations so `I = 1` throughout.
//!
//! For a *streaming composition* of modules (Sec. V-A) executing in pipeline
//! parallel, the completion time collapses from the sum of per-module
//! completion times to the sum of latencies plus the slowest module's
//! iteration count:
//!
//! ```text
//! C_sequential = Σ (L_i + I_i · M_i)
//! C_streamed   = Σ L_i + max_i (I_i · M_i)
//! ```
//!
//! which is the paper's `(L_copy + N) + (L_dot + N) + (L_axpy + N)` →
//! `L_copy + L_axpy + L_dot + N` reduction for AXPYDOT.

/// Cost descriptor of one fully pipelined module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct PipelineCost {
    /// Pipeline latency `L` in cycles — the circuit depth `CD` of Sec. IV-A.
    pub latency: u64,
    /// Initiation interval `I`; 1 for all FBLAS modules.
    pub initiation_interval: u64,
    /// Number of pipeline iterations `M` (inner-loop trip count after
    /// vectorization, e.g. `N/W` for SCAL/DOT).
    pub iterations: u64,
}

impl PipelineCost {
    /// A perfectly pipelined module (`I = 1`).
    pub fn pipelined(latency: u64, iterations: u64) -> Self {
        PipelineCost {
            latency,
            initiation_interval: 1,
            iterations,
        }
    }

    /// Total cycles to completion: `C = L + I·M`.
    pub fn cycles(&self) -> u64 {
        self.latency + self.initiation_interval * self.iterations
    }

    /// Execution time in seconds at clock frequency `freq_hz`.
    pub fn seconds(&self, freq_hz: f64) -> f64 {
        cycles_to_seconds(self.cycles(), freq_hz)
    }
}

/// Convert a cycle count to seconds at the given clock frequency.
pub fn cycles_to_seconds(cycles: u64, freq_hz: f64) -> f64 {
    assert!(freq_hz > 0.0, "frequency must be positive");
    cycles as f64 / freq_hz
}

/// Completion cycles of a streaming composition of pipelined modules:
/// `Σ L_i + max_i (I_i · M_i)`. Returns 0 for an empty slice.
pub fn streamed_cycles(costs: &[PipelineCost]) -> u64 {
    let latency_sum: u64 = costs.iter().map(|c| c.latency).sum();
    let max_iters = costs
        .iter()
        .map(|c| c.initiation_interval * c.iterations)
        .max()
        .unwrap_or(0);
    latency_sum + max_iters
}

/// Aggregated cost comparison between running a set of modules one-by-one
/// through the host layer and running them as a streaming composition.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct CompositionCost {
    /// `Σ (L_i + I_i·M_i)` — modules executed back-to-back.
    pub sequential_cycles: u64,
    /// `Σ L_i + max_i (I_i·M_i)` — modules executing in pipeline parallel.
    pub streamed_cycles: u64,
}

impl CompositionCost {
    /// Compute both costs from per-module descriptors.
    pub fn of(costs: &[PipelineCost]) -> Self {
        CompositionCost {
            sequential_cycles: costs.iter().map(PipelineCost::cycles).sum(),
            streamed_cycles: streamed_cycles(costs),
        }
    }

    /// Cycle-count speedup of streaming over sequential execution.
    pub fn speedup(&self) -> f64 {
        if self.streamed_cycles == 0 {
            return 1.0;
        }
        self.sequential_cycles as f64 / self.streamed_cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_pipeline_formula() {
        // SCAL with W=4: C = L_M + N/W (paper Sec. IV-A).
        let c = PipelineCost::pipelined(6, 1000 / 4);
        assert_eq!(c.cycles(), 6 + 250);
    }

    #[test]
    fn initiation_interval_scales_iterations() {
        let c = PipelineCost {
            latency: 10,
            initiation_interval: 2,
            iterations: 100,
        };
        assert_eq!(c.cycles(), 10 + 200);
    }

    #[test]
    fn seconds_at_frequency() {
        let c = PipelineCost::pipelined(0, 300_000_000);
        let t = c.seconds(300.0e6);
        assert!((t - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "frequency")]
    fn zero_frequency_rejected() {
        let _ = cycles_to_seconds(1, 0.0);
    }

    #[test]
    fn axpydot_reduction_matches_paper() {
        // Paper Sec. V-A: sequential (L_copy+N)+(L_dot+N)+(L_axpy+N)
        // collapses to L_copy+L_axpy+L_dot+N; for large N speedup -> 3.
        let n = 1_000_000u64;
        let copy = PipelineCost::pipelined(20, n);
        let axpy = PipelineCost::pipelined(30, n);
        let dot = PipelineCost::pipelined(60, n);
        let cc = CompositionCost::of(&[copy, axpy, dot]);
        assert_eq!(cc.sequential_cycles, 20 + 30 + 60 + 3 * n);
        assert_eq!(cc.streamed_cycles, 20 + 30 + 60 + n);
        assert!((cc.speedup() - 3.0).abs() < 1e-3);
    }

    #[test]
    fn streamed_cycles_empty_is_zero() {
        assert_eq!(streamed_cycles(&[]), 0);
        let cc = CompositionCost::of(&[]);
        assert_eq!(cc.speedup(), 1.0);
    }

    #[test]
    fn streamed_bounded_below_by_slowest_stage() {
        let fast = PipelineCost::pipelined(5, 10);
        let slow = PipelineCost::pipelined(5, 10_000);
        let s = streamed_cycles(&[fast, slow]);
        assert_eq!(s, 10 + 10_000);
    }
}
