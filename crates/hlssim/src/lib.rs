//! # fblas-hlssim — streaming dataflow simulator substrate
//!
//! This crate is the software stand-in for the FPGA fabric targeted by the
//! FBLAS paper (De Matteis et al., SC 2020). The paper's HLS modules are
//! independent hardware circuits that exchange data through typed, bounded,
//! single-producer/single-consumer FIFO *channels*. Everything that matters
//! for the paper's composition semantics — backpressure, pipeline-parallel
//! execution of simultaneously configured modules, and the possibility of a
//! composition that "stalls forever" (Sec. V-B) — is channel semantics, and
//! is reproduced here exactly:
//!
//! * [`channel`] provides the bounded SPSC FIFO ([`Sender`] / [`Receiver`])
//!   with blocking `push`/`pop` and poisoning for orderly teardown.
//! * [`Simulation`] runs a set of [`Module`]s concurrently (one OS thread per
//!   module, mirroring the spatial concurrency of circuits) and watches a
//!   global progress epoch: when every live module is blocked on a channel
//!   operation and no progress has occurred for a grace period, the run is
//!   declared *stalled* and every channel is poisoned, turning the paper's
//!   "stalls forever" into a deterministic [`SimError::Stall`].
//! * [`cycles`] implements the paper's pipeline cost model `C = L + I·M`
//!   (Sec. IV) and the sequential-vs-streamed completion-time formulas of
//!   Sec. V-A, used by the benchmark harness to regenerate the figures.
//! * [`fault`] is the deterministic fault-injection hook layer: a
//!   [`FaultHook`] armed on a [`SimContext`] can flip payload bits, drop
//!   or duplicate elements, delay transfers, and crash or hang whole
//!   modules — with per-channel integrity guards ([`GuardReport`])
//!   catching every corruption the FIFO carried. Zero cost when
//!   disarmed; the seeded plan implementation lives in `fblas-chaos`.
//! * [`env`] centralizes every `FBLAS_*` environment knob with one-time
//!   warnings on invalid values.
//! * [`postmortem`] captures a flight-recorder bundle (time series,
//!   anomalies, stall forensics, knob values) when a run dies; arm it
//!   with `FBLAS_FLIGHT=1` and read it with `fblas-doctor`.
//!
//! The simulator computes *real numerics*: data actually flows through the
//! FIFOs and modules perform the same reduction shapes (e.g. the W-way
//! unrolled accumulation tree of DOT) as the synthesized circuits.

#![warn(missing_docs)]

pub mod channel;
pub mod chunk;
pub mod cycles;
pub mod env;
pub mod error;
pub mod fault;
pub mod module;
pub mod postmortem;
pub mod simulation;
pub mod stall;

pub use channel::{channel, try_channel, ChannelStats, Receiver, Sender};
pub use chunk::{default_chunk, parse_chunk, ChunkReader, ChunkWriter, DEFAULT_CHUNK};
pub use cycles::{streamed_cycles, CompositionCost, PipelineCost};
pub use error::SimError;
pub use fault::{
    duplicate_value, flip_bit, hash_bits, FaultAction, FaultHook, FaultSite, GuardReport,
    ModuleFault,
};
pub use module::{ModuleKind, ModuleSpec};
pub use simulation::{
    default_grace, parse_stall_grace_ms, parse_wait_slice_us, wait_slice, SimContext, Simulation,
    SimulationReport, DEFAULT_GRACE, DEFAULT_WAIT_SLICE,
};
pub use stall::{BlockedModule, StallReport, WaitDirection};
