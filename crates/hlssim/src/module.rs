//! Module descriptions.
//!
//! The FBLAS paper (Sec. V) distinguishes *interface modules* — the sources
//! and sinks of a module DAG, responsible for off-chip memory access — from
//! *computational modules*, the routine implementations proper. The
//! distinction matters for composition analysis (interface modules may be
//! shared; replay is only legal from an interface module) and for resource
//! accounting (streaming compositions save interface modules, the paper's
//! "up to −40% resources" observation).

use crate::error::SimError;

/// Role of a module within a module DAG (MDAG).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModuleKind {
    /// Source/sink responsible for off-chip (DRAM) access — drawn as a
    /// circle in the paper's figures.
    Interface,
    /// A computational module (an FBLAS routine or user kernel) — drawn as
    /// a rectangle.
    Compute,
}

/// A module ready to be run by a [`Simulation`](crate::Simulation): a name,
/// a kind, and the body that will execute on its own thread.
pub struct ModuleSpec {
    pub(crate) name: String,
    pub(crate) kind: ModuleKind,
    pub(crate) body: Box<dyn FnOnce() -> Result<(), SimError> + Send + 'static>,
}

impl ModuleSpec {
    /// Create a module spec from a name, kind, and body closure.
    pub fn new(
        name: impl Into<String>,
        kind: ModuleKind,
        body: impl FnOnce() -> Result<(), SimError> + Send + 'static,
    ) -> Self {
        ModuleSpec {
            name: name.into(),
            kind,
            body: Box::new(body),
        }
    }

    /// The module's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The module's role in the MDAG.
    pub fn kind(&self) -> ModuleKind {
        self.kind
    }
}

impl std::fmt::Debug for ModuleSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModuleSpec")
            .field("name", &self.name)
            .field("kind", &self.kind)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_exposes_name_and_kind() {
        let m = ModuleSpec::new("read_a", ModuleKind::Interface, || Ok(()));
        assert_eq!(m.name(), "read_a");
        assert_eq!(m.kind(), ModuleKind::Interface);
        let dbg = format!("{m:?}");
        assert!(dbg.contains("read_a"));
    }
}
