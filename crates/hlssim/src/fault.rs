//! Deterministic fault-injection hooks and channel integrity guards.
//!
//! Real FPGA deployments face transient faults the happy-path simulator
//! never exercises: SEU bit flips in FIFO payloads, dropped or
//! duplicated beats, memory-bank latency spikes, crashed or hung
//! kernels. This module defines the *hook* layer those faults are
//! injected through — the policy (which fault, where, when) lives in
//! the `fblas-chaos` crate, which implements [`FaultHook`] with seeded,
//! reproducible plans.
//!
//! # Zero cost when disarmed
//!
//! A channel operation consults the hook only after observing the
//! context's `fault_armed` flag — a single relaxed atomic load. With no
//! hook armed the data path is byte-identical to a build without this
//! module, which the committed benchmark baselines verify.
//!
//! # Integrity guards
//!
//! While a hook is armed every channel additionally maintains an
//! *integrity guard*: element counts on both endpoints plus
//! order-sensitive FNV-1a digests over the element bit patterns, taken
//! **before** fault injection on the push side and **after** it on the
//! pop side. Any corruption the FIFO carried — a flipped bit, a dropped
//! or duplicated element — shows up as a count or digest mismatch in
//! the channel's [`GuardReport`], independent of whether the numeric
//! error is large enough for an ABFT checksum to notice.

use std::any::Any;

use serde::Serialize;

/// Which side of a channel a fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum FaultSite {
    /// The producer's `push` (payload faults corrupt what enters the
    /// FIFO).
    Push,
    /// The consumer's `pop` (payload faults corrupt what leaves it).
    Pop,
}

impl FaultSite {
    /// Stable lowercase label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultSite::Push => "push",
            FaultSite::Pop => "pop",
        }
    }
}

/// A fault applied to one channel payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FaultAction {
    /// Flip one bit of the element's binary representation (an SEU).
    Corrupt {
        /// Bit index, modulo the payload width.
        bit: u32,
    },
    /// Lose the element: pushed but never enqueued (push side), or
    /// consumed and discarded (pop side).
    DropElement,
    /// Deliver the element twice (push side only; ignored on pop).
    Duplicate,
    /// Stall this transfer for a latency spike of the given length.
    Delay {
        /// Injected delay in microseconds.
        micros: u64,
    },
}

impl FaultAction {
    /// Stable lowercase label for reports and trace series.
    pub fn label(&self) -> &'static str {
        match self {
            FaultAction::Corrupt { .. } => "corrupt",
            FaultAction::DropElement => "drop",
            FaultAction::Duplicate => "duplicate",
            FaultAction::Delay { .. } => "delay",
        }
    }
}

/// A fault applied to a module as a whole, at the moment its thread
/// starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ModuleFault {
    /// The module panics before doing any work (a crashed kernel). The
    /// runner converts the panic to [`SimError::Module`]
    /// (crate::SimError::Module) and poisons peers with the module
    /// named.
    Crash,
    /// The module stops making progress while holding its endpoints
    /// open (a hung kernel): peers block on its channels and only a
    /// [`Simulation::set_deadline`](crate::Simulation::set_deadline)
    /// can end the run.
    Hang,
}

impl ModuleFault {
    /// Stable lowercase label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            ModuleFault::Crash => "crash",
            ModuleFault::Hang => "hang",
        }
    }
}

/// Decides, per channel payload and per module start, whether to inject
/// a fault. Implementations must be deterministic in their inputs: the
/// simulator guarantees `index` is the per-channel element sequence
/// number (SPSC channels make it reproducible across runs).
pub trait FaultHook: Send + Sync {
    /// Fault to apply to element `index` of `channel` at `site`, if any.
    fn on_channel(&self, site: FaultSite, channel: &str, index: u64) -> Option<FaultAction>;

    /// Fault to apply to `module` as its thread starts, if any.
    fn on_module_start(&self, module: &str) -> Option<ModuleFault>;
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_step(mut acc: u64, bits: u64) -> u64 {
    for byte in bits.to_le_bytes() {
        acc ^= byte as u64;
        acc = acc.wrapping_mul(FNV_PRIME);
    }
    acc
}

/// Fold `value`'s bit pattern into an order-sensitive FNV-1a digest.
/// Returns `None` for payload types the guard does not understand
/// (guards then fall back to count-only tracking).
pub fn hash_bits(value: &dyn Any, acc: u64) -> Option<u64> {
    macro_rules! try_types {
        ($($t:ty => $conv:expr),+ $(,)?) => {
            $(if let Some(v) = value.downcast_ref::<$t>() {
                #[allow(clippy::redundant_closure_call)]
                return Some(fnv_step(acc, ($conv)(*v)));
            })+
        };
    }
    try_types!(
        f64 => |v: f64| v.to_bits(),
        f32 => |v: f32| v.to_bits() as u64,
        u64 => |v: u64| v,
        u32 => |v: u32| v as u64,
        u16 => |v: u16| v as u64,
        u8 => |v: u8| v as u64,
        i64 => |v: i64| v as u64,
        i32 => |v: i32| v as u64,
        i16 => |v: i16| v as u64,
        i8 => |v: i8| v as u64,
        usize => |v: usize| v as u64,
        isize => |v: isize| v as u64,
    );
    None
}

/// Flip bit `bit` (modulo the payload width) of a supported scalar
/// payload in place. Returns `false` (no-op) for unsupported types.
pub fn flip_bit<T: Any>(value: &mut T, bit: u32) -> bool {
    let any: &mut dyn Any = value;
    macro_rules! try_types {
        ($($t:ty : $bits:ty),+ $(,)?) => {
            $(if let Some(v) = any.downcast_mut::<$t>() {
                let w = <$bits>::BITS;
                let flipped = <$t>::from_bits(v.to_bits() ^ (1 << (bit % w)));
                *v = flipped;
                return true;
            })+
        };
    }
    try_types!(f64: u64, f32: u32);
    macro_rules! try_ints {
        ($($t:ty),+ $(,)?) => {
            $(if let Some(v) = any.downcast_mut::<$t>() {
                *v ^= 1 << (bit % <$t>::BITS);
                return true;
            })+
        };
    }
    try_ints!(u64, u32, u16, u8, i64, i32, i16, i8, usize, isize);
    false
}

/// Bitwise copy of a supported scalar payload (the `Duplicate` fault
/// needs a second value without requiring `T: Clone` on the channel).
/// Returns `None` for unsupported types, in which case the duplicate is
/// silently skipped.
pub fn duplicate_value<T: Any>(value: &T) -> Option<T> {
    let any: &dyn Any = value;
    macro_rules! try_types {
        ($($t:ty),+ $(,)?) => {
            $(if let Some(v) = any.downcast_ref::<$t>() {
                let boxed: Box<dyn Any> = Box::new(*v);
                return boxed.downcast::<T>().ok().map(|b| *b);
            })+
        };
    }
    try_types!(f64, f32, u64, u32, u16, u8, i64, i32, i16, i8, usize, isize);
    None
}

/// Integrity verdict for one channel after a run with faults armed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct GuardReport {
    /// Channel name.
    pub channel: String,
    /// Elements the producer pushed (counted before any push-side
    /// fault, so dropped elements still count).
    pub pushed: u64,
    /// Elements the consumer received (counted after any pop-side
    /// fault, so discarded elements do not count).
    pub popped: u64,
    /// Whether the payload type supports bit-pattern digests; when
    /// `false` only the counts are meaningful.
    pub tracked: bool,
    /// Whether the push-side and pop-side digests agree (`true` for
    /// untracked payloads — counts are the only evidence there).
    pub digests_match: bool,
}

impl GuardReport {
    /// Whether the channel carried every element unmodified: counts
    /// agree, and (for tracked payloads) the digests agree.
    pub fn clean(&self) -> bool {
        self.pushed == self.popped && self.digests_match
    }
}

/// Per-channel guard accumulator; lives inside the channel's state
/// mutex and is only touched while a fault hook is armed.
#[derive(Debug)]
pub(crate) struct GuardState {
    pushed: u64,
    popped: u64,
    push_digest: u64,
    pop_digest: u64,
    tracked: bool,
    used: bool,
}

impl Default for GuardState {
    fn default() -> Self {
        GuardState {
            pushed: 0,
            popped: 0,
            push_digest: FNV_OFFSET,
            pop_digest: FNV_OFFSET,
            tracked: true,
            used: false,
        }
    }
}

impl GuardState {
    pub(crate) fn record_push<T: Any>(&mut self, value: &T) {
        self.used = true;
        self.pushed += 1;
        if self.tracked {
            match hash_bits(value, self.push_digest) {
                Some(d) => self.push_digest = d,
                None => self.tracked = false,
            }
        }
    }

    pub(crate) fn record_pop<T: Any>(&mut self, value: &T) {
        self.used = true;
        self.popped += 1;
        if self.tracked {
            match hash_bits(value, self.pop_digest) {
                Some(d) => self.pop_digest = d,
                None => self.tracked = false,
            }
        }
    }

    /// Report for this channel, `None` if no armed operation touched it.
    pub(crate) fn report(&self, channel: &str) -> Option<GuardReport> {
        if !self.used {
            return None;
        }
        Some(GuardReport {
            channel: channel.to_string(),
            pushed: self.pushed,
            popped: self.popped,
            tracked: self.tracked,
            digests_match: !self.tracked || self.push_digest == self.pop_digest,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_bit_round_trips() {
        let mut v = 1.5f64;
        assert!(flip_bit(&mut v, 3));
        assert_ne!(v, 1.5);
        assert!(flip_bit(&mut v, 3));
        assert_eq!(v, 1.5);
        let mut u = 0u32;
        assert!(flip_bit(&mut u, 35)); // 35 % 32 == 3
        assert_eq!(u, 8);
        let mut s = "text".to_string();
        assert!(!flip_bit(&mut s, 0), "unsupported types are no-ops");
    }

    #[test]
    fn duplicate_copies_supported_scalars_only() {
        assert_eq!(duplicate_value(&2.5f32), Some(2.5f32));
        assert_eq!(duplicate_value(&7u64), Some(7u64));
        assert_eq!(duplicate_value(&String::from("x")), None);
    }

    #[test]
    fn digests_are_order_sensitive() {
        let a = hash_bits(&1.0f64, FNV_OFFSET).unwrap();
        let ab = hash_bits(&2.0f64, a).unwrap();
        let b = hash_bits(&2.0f64, FNV_OFFSET).unwrap();
        let ba = hash_bits(&1.0f64, b).unwrap();
        assert_ne!(ab, ba, "swapped element order must change the digest");
    }

    #[test]
    fn guard_flags_corruption_drop_and_duplication() {
        // Clean stream.
        let mut g = GuardState::default();
        for v in [1.0f64, 2.0, 3.0] {
            g.record_push(&v);
        }
        for v in [1.0f64, 2.0, 3.0] {
            g.record_pop(&v);
        }
        assert!(g.report("ch").unwrap().clean());

        // One low-order bit flipped in transit: counts agree, digest not.
        let mut g = GuardState::default();
        g.record_push(&1.0f64);
        let mut corrupted = 1.0f64;
        flip_bit(&mut corrupted, 0);
        g.record_pop(&corrupted);
        let r = g.report("ch").unwrap();
        assert!(!r.clean() && !r.digests_match && r.pushed == r.popped);

        // Dropped element: counts disagree.
        let mut g = GuardState::default();
        g.record_push(&1.0f64);
        g.record_push(&2.0f64);
        g.record_pop(&1.0f64);
        assert!(!g.report("ch").unwrap().clean());
    }

    #[test]
    fn untracked_payloads_fall_back_to_counts() {
        let mut g = GuardState::default();
        g.record_push(&(1usize, 2.0f64));
        g.record_pop(&(1usize, 2.0f64));
        let r = g.report("ch").unwrap();
        assert!(!r.tracked);
        assert!(r.clean(), "matching counts are clean without digests");
    }

    #[test]
    fn untouched_guard_yields_no_report() {
        assert!(GuardState::default().report("idle").is_none());
    }
}
