//! Unified environment-knob parsing for the simulator.
//!
//! Every runtime knob the simulator honors is read through this module,
//! so the set of recognized variables lives in one place and an invalid
//! value produces a **one-time warning** on stderr instead of a silent
//! fallback to the default (the failure mode that cost the most
//! debugging time: `FBLAS_STALL_GRACE_MS=0.5` quietly behaving like the
//! default 250 ms):
//!
//! The authoritative knob list is [`KNOBS`]; `fblas-env --list` renders
//! it (with current values) and a test asserts the table stays in sync
//! with the reader functions:
//!
//! | variable | meaning | default |
//! |---|---|---|
//! | `FBLAS_STALL_GRACE_MS` | watchdog stall grace, ms | 250 |
//! | `FBLAS_WAIT_SLICE_US` | blocked-wait poison re-check slice, µs | 2000 |
//! | `FBLAS_CHUNK` | elements per batched channel transfer | 256 |
//! | `FBLAS_BACKEND` | execution backend: threaded, fused, or auto | auto |
//! | `FBLAS_CHAOS_SEED` | seed for chaos fault plans | unset |
//! | `FBLAS_RETRY_MAX` | recovery attempts per component | 3 |
//! | `FBLAS_METRICS` | arm the global telemetry registry | 0 |
//! | `FBLAS_METRICS_SHARDS` | writer shards per metric | 8 |
//! | `FBLAS_FLIGHT` | arm the flight recorder (implies metrics) | 0 |
//! | `FBLAS_FLIGHT_HZ` | flight-recorder sampling cadence, frames/sec | 50 |
//! | `FBLAS_FLIGHT_WINDOW` | flight-recorder ring window, seconds | 10 |
//! | `FBLAS_FLIGHT_DIR` | directory postmortem bundles are written to | unset |
//! | `FBLAS_SERVE_ADDR` | fblas-serve listen address | 127.0.0.1:8377 |
//! | `FBLAS_SERVE_WORKERS` | fblas-serve worker threads | 4 |
//! | `FBLAS_SERVE_QUEUE` | fblas-serve admission queue depth | 64 |
//! | `FBLAS_SERVE_TENANT_QPS` | per-tenant token-bucket refill, req/s | 50 |
//! | `FBLAS_SERVE_BREAKER` | failures per plan shape to open its breaker | 3 |
//! | `FBLAS_SERVE_DRAIN_MS` | graceful-drain timeout, ms | 5000 |
//! | `FBLAS_SERVE_WRITE_MS` | response write timeout before dropping a non-reading client, ms | 2000 |
//!
//! Caching follows each knob's use: grace and wait-slice are read once
//! per process (they configure long-lived machinery), while the chunk
//! size is re-read on every call so benchmarks can sweep it in-process
//! — only its *warning* is deduplicated. The parse functions themselves
//! stay pure and are exercised directly by tests.

use std::collections::HashSet;
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

use crate::chunk::parse_chunk;
use crate::simulation::{parse_stall_grace_ms, parse_wait_slice_us};

/// Default number of recovery attempts per component when
/// `FBLAS_RETRY_MAX` is unset.
pub const DEFAULT_RETRY_MAX: u32 = 3;

/// One documented environment knob: the row `fblas-env --list` renders.
#[derive(Debug, Clone, Copy)]
pub struct KnobSpec {
    /// Environment variable name.
    pub name: &'static str,
    /// One-line meaning.
    pub meaning: &'static str,
    /// Default rendered as the reader falls back to it.
    pub default: &'static str,
    /// When the variable is (re-)read: `"process"` (cached once) or
    /// `"call"` (re-read every call, sweepable in-process).
    pub cadence: &'static str,
}

/// The authoritative table of every `FBLAS_*` knob the workspace
/// honors. A test asserts this stays in sync with the reader functions:
/// reading every knob must touch exactly these variable names.
pub const KNOBS: &[KnobSpec] = &[
    KnobSpec {
        name: "FBLAS_STALL_GRACE_MS",
        meaning: "watchdog stall grace before declaring deadlock, ms",
        default: "250",
        cadence: "process",
    },
    KnobSpec {
        name: "FBLAS_WAIT_SLICE_US",
        meaning: "blocked-wait poison re-check slice, us",
        default: "2000",
        cadence: "process",
    },
    KnobSpec {
        name: "FBLAS_CHUNK",
        meaning: "elements per batched channel transfer",
        default: "256",
        cadence: "call",
    },
    KnobSpec {
        name: "FBLAS_BACKEND",
        meaning: "execution backend: threaded, fused, or auto (fuse when legal)",
        default: "auto",
        cadence: "call",
    },
    KnobSpec {
        name: "FBLAS_CHAOS_SEED",
        meaning: "seed for deterministic chaos fault plans",
        default: "unset (no fault plan)",
        cadence: "call",
    },
    KnobSpec {
        name: "FBLAS_RETRY_MAX",
        meaning: "recovery attempts per component",
        default: "3",
        cadence: "call",
    },
    KnobSpec {
        name: "FBLAS_METRICS",
        meaning: "arm the global telemetry registry (1/true/on)",
        default: "0 (disarmed)",
        cadence: "call",
    },
    KnobSpec {
        name: "FBLAS_METRICS_SHARDS",
        meaning: "writer shards per metric (rounded up to a power of 2)",
        default: "8",
        cadence: "call",
    },
    KnobSpec {
        name: "FBLAS_FLIGHT",
        meaning: "arm the flight recorder (1/true/on; implies FBLAS_METRICS)",
        default: "0 (disarmed)",
        cadence: "call",
    },
    KnobSpec {
        name: "FBLAS_FLIGHT_HZ",
        meaning: "flight-recorder sampling cadence, frames/sec (1..=1000)",
        default: "50",
        cadence: "call",
    },
    KnobSpec {
        name: "FBLAS_FLIGHT_WINDOW",
        meaning: "flight-recorder ring window, seconds",
        default: "10",
        cadence: "call",
    },
    KnobSpec {
        name: "FBLAS_FLIGHT_DIR",
        meaning: "directory postmortem bundles are written to",
        default: "unset (bundles stay in-memory)",
        cadence: "call",
    },
    KnobSpec {
        name: "FBLAS_SERVE_ADDR",
        meaning: "fblas-serve listen address (host:port)",
        default: "127.0.0.1:8377",
        cadence: "call",
    },
    KnobSpec {
        name: "FBLAS_SERVE_WORKERS",
        meaning: "fblas-serve execution worker threads",
        default: "4",
        cadence: "call",
    },
    KnobSpec {
        name: "FBLAS_SERVE_QUEUE",
        meaning: "fblas-serve admission queue depth before shedding",
        default: "64",
        cadence: "call",
    },
    KnobSpec {
        name: "FBLAS_SERVE_TENANT_QPS",
        meaning: "fblas-serve per-tenant token-bucket refill, requests/sec",
        default: "50",
        cadence: "call",
    },
    KnobSpec {
        name: "FBLAS_SERVE_BREAKER",
        meaning: "fblas-serve consecutive plan-shape failures that open the breaker",
        default: "3",
        cadence: "call",
    },
    KnobSpec {
        name: "FBLAS_SERVE_DRAIN_MS",
        meaning: "fblas-serve graceful-drain timeout for in-flight requests, ms",
        default: "5000",
        cadence: "call",
    },
    KnobSpec {
        name: "FBLAS_SERVE_WRITE_MS",
        meaning: "fblas-serve response write timeout before a non-reading client is dropped, ms",
        default: "2000",
        cadence: "call",
    },
];

/// Variable names observed by [`read_knob`] this process — the ground
/// truth the table-sync test compares [`KNOBS`] against.
fn touched() -> &'static Mutex<HashSet<&'static str>> {
    static TOUCHED: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    TOUCHED.get_or_init(|| Mutex::new(HashSet::new()))
}

/// Snapshot of every knob name read through this module so far.
pub fn touched_knobs() -> Vec<&'static str> {
    let mut v: Vec<&'static str> = touched()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .copied()
        .collect();
    v.sort_unstable();
    v
}

/// Knobs that already warned once this process; keyed by variable name
/// so each misconfigured knob complains exactly once however often it
/// is read.
fn warned() -> &'static Mutex<HashSet<&'static str>> {
    static WARNED: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    WARNED.get_or_init(|| Mutex::new(HashSet::new()))
}

/// Emit a one-time warning that `var`'s current value is invalid.
fn warn_invalid(var: &'static str, raw: &str, fallback: &str) {
    let mut set = warned().lock().unwrap_or_else(|e| e.into_inner());
    if set.insert(var) {
        eprintln!("fblas: warning: ignoring invalid {var}={raw:?}; using {fallback}");
    }
}

/// Read `var` and parse it with `parse`; `valid` decides (on the raw
/// string) whether the value would survive parsing, so an invalid
/// setting triggers the one-time warning.
fn read_knob<T>(
    var: &'static str,
    fallback_desc: &str,
    parse: impl FnOnce(Option<&str>) -> T,
    valid: impl FnOnce(&str) -> bool,
) -> T {
    touched()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(var);
    let raw = std::env::var(var).ok();
    if let Some(raw) = raw.as_deref() {
        if !valid(raw) {
            warn_invalid(var, raw, fallback_desc);
        }
    }
    parse(raw.as_deref())
}

fn parses_positive_u64(raw: &str) -> bool {
    raw.trim().parse::<u64>().map(|v| v > 0).unwrap_or(false)
}

/// The watchdog stall grace: `FBLAS_STALL_GRACE_MS` if valid, else
/// [`crate::DEFAULT_GRACE`]. Read once per process and cached.
pub fn stall_grace() -> Duration {
    static GRACE: OnceLock<Duration> = OnceLock::new();
    *GRACE.get_or_init(|| {
        read_knob(
            "FBLAS_STALL_GRACE_MS",
            "250 ms",
            parse_stall_grace_ms,
            parses_positive_u64,
        )
    })
}

/// The blocked-wait poison re-check slice: `FBLAS_WAIT_SLICE_US` if
/// valid, else [`crate::DEFAULT_WAIT_SLICE`]. Read once per process and cached.
pub fn wait_slice() -> Duration {
    static SLICE: OnceLock<Duration> = OnceLock::new();
    *SLICE.get_or_init(|| {
        read_knob(
            "FBLAS_WAIT_SLICE_US",
            "2000 us",
            parse_wait_slice_us,
            parses_positive_u64,
        )
    })
}

/// The batched-transfer chunk size: `FBLAS_CHUNK` if valid, else
/// [`crate::DEFAULT_CHUNK`]. Re-read from the environment on **every call**
/// (benchmarks sweep chunk sizes within one process); only the
/// invalid-value warning is one-time.
pub fn chunk() -> usize {
    read_knob("FBLAS_CHUNK", "256", parse_chunk, |raw| {
        raw.trim().parse::<usize>().map(|v| v >= 1).unwrap_or(false)
    })
}

/// The execution backend selector: `FBLAS_BACKEND` as one of
/// `"threaded"`, `"fused"`, or `"auto"` (the default — fuse legally
/// fusable regions, keep everything else threaded). Re-read on every
/// call so benchmarks can sweep backends in-process. The simulator
/// itself only reports this knob; `fblas-core`'s plan executor
/// interprets it.
pub fn backend() -> &'static str {
    read_knob(
        "FBLAS_BACKEND",
        "auto",
        |raw| match raw.map(str::trim) {
            Some("threaded") => "threaded",
            Some("fused") => "fused",
            _ => "auto",
        },
        |raw| matches!(raw.trim(), "threaded" | "fused" | "auto" | ""),
    )
}

/// The chaos seed: `FBLAS_CHAOS_SEED` as a u64, `None` when unset or
/// invalid. Re-read on every call so harnesses can run several seeded
/// sweeps in one process.
pub fn chaos_seed() -> Option<u64> {
    read_knob(
        "FBLAS_CHAOS_SEED",
        "no fault plan",
        |raw| raw.and_then(|v| v.trim().parse::<u64>().ok()),
        |raw| raw.trim().parse::<u64>().is_ok(),
    )
}

/// Maximum recovery attempts per component: `FBLAS_RETRY_MAX` if a
/// positive integer, else [`DEFAULT_RETRY_MAX`]. Re-read on every call.
pub fn retry_max() -> u32 {
    read_knob(
        "FBLAS_RETRY_MAX",
        "3 attempts",
        |raw| {
            raw.and_then(|v| v.trim().parse::<u32>().ok())
                .filter(|n| *n >= 1)
                .unwrap_or(DEFAULT_RETRY_MAX)
        },
        |raw| raw.trim().parse::<u32>().map(|v| v >= 1).unwrap_or(false),
    )
}

/// Whether `FBLAS_METRICS` asks for the telemetry registry to be armed:
/// `1`, `true`, or `on` (trimmed). Re-read on every call.
pub fn metrics_enabled() -> bool {
    read_knob(
        "FBLAS_METRICS",
        "disarmed",
        |raw| matches!(raw.map(str::trim), Some("1") | Some("true") | Some("on")),
        |raw| matches!(raw.trim(), "0" | "1" | "true" | "false" | "on" | "off" | ""),
    )
}

/// Writer shards per metric: `FBLAS_METRICS_SHARDS` if a positive
/// integer, else [`fblas_metrics::DEFAULT_SHARDS`]. Re-read every call.
pub fn metrics_shards() -> usize {
    read_knob(
        "FBLAS_METRICS_SHARDS",
        "8",
        |raw| {
            raw.and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|n| *n >= 1)
                .unwrap_or(fblas_metrics::DEFAULT_SHARDS)
        },
        |raw| raw.trim().parse::<usize>().map(|v| v >= 1).unwrap_or(false),
    )
}

/// Whether `FBLAS_FLIGHT` asks for the flight recorder to be armed:
/// `1`, `true`, or `on` (trimmed). Re-read on every call.
pub fn flight_enabled() -> bool {
    read_knob(
        "FBLAS_FLIGHT",
        "disarmed",
        |raw| matches!(raw.map(str::trim), Some("1") | Some("true") | Some("on")),
        |raw| matches!(raw.trim(), "0" | "1" | "true" | "false" | "on" | "off" | ""),
    )
}

/// Flight-recorder sampling cadence in frames/sec: `FBLAS_FLIGHT_HZ`
/// if a positive integer (clamped to 1000), else
/// [`fblas_metrics::flight::DEFAULT_FLIGHT_HZ`]. Re-read every call.
pub fn flight_hz() -> u32 {
    read_knob(
        "FBLAS_FLIGHT_HZ",
        "50",
        |raw| {
            raw.and_then(|v| v.trim().parse::<u32>().ok())
                .filter(|n| *n >= 1)
                .map(|n| n.min(1000))
                .unwrap_or(fblas_metrics::flight::DEFAULT_FLIGHT_HZ)
        },
        |raw| raw.trim().parse::<u32>().map(|v| v >= 1).unwrap_or(false),
    )
}

/// Flight-recorder ring window in seconds: `FBLAS_FLIGHT_WINDOW` if a
/// positive integer, else
/// [`fblas_metrics::flight::DEFAULT_FLIGHT_WINDOW_S`]. Re-read every call.
pub fn flight_window_s() -> u32 {
    read_knob(
        "FBLAS_FLIGHT_WINDOW",
        "10",
        |raw| {
            raw.and_then(|v| v.trim().parse::<u32>().ok())
                .filter(|n| *n >= 1)
                .unwrap_or(fblas_metrics::flight::DEFAULT_FLIGHT_WINDOW_S)
        },
        |raw| raw.trim().parse::<u32>().map(|v| v >= 1).unwrap_or(false),
    )
}

/// Directory postmortem bundles are written to: `FBLAS_FLIGHT_DIR` when
/// set and non-empty, else `None` (bundles stay in-memory, reachable
/// via `fblas_metrics::flight::last_bundle`). Re-read every call.
pub fn flight_dir() -> Option<std::path::PathBuf> {
    read_knob(
        "FBLAS_FLIGHT_DIR",
        "in-memory only",
        |raw| {
            raw.map(str::trim)
                .filter(|v| !v.is_empty())
                .map(std::path::PathBuf::from)
        },
        |raw| !raw.trim().is_empty(),
    )
}

/// Default fblas-serve listen address.
pub const DEFAULT_SERVE_ADDR: &str = "127.0.0.1:8377";
/// Default fblas-serve worker-thread count.
pub const DEFAULT_SERVE_WORKERS: usize = 4;
/// Default fblas-serve admission queue depth.
pub const DEFAULT_SERVE_QUEUE: usize = 64;
/// Default fblas-serve per-tenant token-bucket refill rate (requests/sec).
pub const DEFAULT_SERVE_TENANT_QPS: u32 = 50;
/// Default consecutive-failure threshold that opens a plan-shape breaker.
pub const DEFAULT_SERVE_BREAKER: u32 = 3;
/// Default graceful-drain timeout, ms.
pub const DEFAULT_SERVE_DRAIN_MS: u64 = 5000;
/// Default response write timeout before a non-reading client is
/// dropped, ms.
pub const DEFAULT_SERVE_WRITE_MS: u64 = 2000;

/// fblas-serve listen address: `FBLAS_SERVE_ADDR` when set and shaped
/// like `host:port`, else [`DEFAULT_SERVE_ADDR`]. Re-read every call.
pub fn serve_addr() -> String {
    fn valid(raw: &str) -> bool {
        let t = raw.trim();
        matches!(t.rsplit_once(':'), Some((host, port))
            if !host.is_empty() && port.parse::<u16>().is_ok())
    }
    read_knob(
        "FBLAS_SERVE_ADDR",
        DEFAULT_SERVE_ADDR,
        |raw| {
            raw.map(str::trim)
                .filter(|v| valid(v))
                .unwrap_or(DEFAULT_SERVE_ADDR)
                .to_string()
        },
        valid,
    )
}

/// fblas-serve worker threads: `FBLAS_SERVE_WORKERS` if a positive
/// integer (clamped to 256), else [`DEFAULT_SERVE_WORKERS`]. Re-read
/// every call so benches can sweep worker counts in-process.
pub fn serve_workers() -> usize {
    read_knob(
        "FBLAS_SERVE_WORKERS",
        "4",
        |raw| {
            raw.and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|n| *n >= 1)
                .map(|n| n.min(256))
                .unwrap_or(DEFAULT_SERVE_WORKERS)
        },
        |raw| raw.trim().parse::<usize>().map(|v| v >= 1).unwrap_or(false),
    )
}

/// fblas-serve admission queue depth: `FBLAS_SERVE_QUEUE` if a positive
/// integer, else [`DEFAULT_SERVE_QUEUE`]. A full queue sheds with a
/// structured over-capacity response. Re-read every call.
pub fn serve_queue() -> usize {
    read_knob(
        "FBLAS_SERVE_QUEUE",
        "64",
        |raw| {
            raw.and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|n| *n >= 1)
                .unwrap_or(DEFAULT_SERVE_QUEUE)
        },
        |raw| raw.trim().parse::<usize>().map(|v| v >= 1).unwrap_or(false),
    )
}

/// Per-tenant token-bucket refill rate in requests/sec:
/// `FBLAS_SERVE_TENANT_QPS` if a positive integer, else
/// [`DEFAULT_SERVE_TENANT_QPS`]. Re-read every call.
pub fn serve_tenant_qps() -> u32 {
    read_knob(
        "FBLAS_SERVE_TENANT_QPS",
        "50",
        |raw| {
            raw.and_then(|v| v.trim().parse::<u32>().ok())
                .filter(|n| *n >= 1)
                .unwrap_or(DEFAULT_SERVE_TENANT_QPS)
        },
        |raw| raw.trim().parse::<u32>().map(|v| v >= 1).unwrap_or(false),
    )
}

/// Consecutive failures of one plan shape that open its circuit
/// breaker: `FBLAS_SERVE_BREAKER` if a positive integer, else
/// [`DEFAULT_SERVE_BREAKER`]. Re-read every call.
pub fn serve_breaker() -> u32 {
    read_knob(
        "FBLAS_SERVE_BREAKER",
        "3",
        |raw| {
            raw.and_then(|v| v.trim().parse::<u32>().ok())
                .filter(|n| *n >= 1)
                .unwrap_or(DEFAULT_SERVE_BREAKER)
        },
        |raw| raw.trim().parse::<u32>().map(|v| v >= 1).unwrap_or(false),
    )
}

/// Graceful-drain timeout for in-flight requests:
/// `FBLAS_SERVE_DRAIN_MS` if a positive integer of milliseconds, else
/// [`DEFAULT_SERVE_DRAIN_MS`]. Re-read every call.
pub fn serve_drain() -> Duration {
    read_knob(
        "FBLAS_SERVE_DRAIN_MS",
        "5000 ms",
        |raw| {
            Duration::from_millis(
                raw.and_then(|v| v.trim().parse::<u64>().ok())
                    .filter(|n| *n >= 1)
                    .unwrap_or(DEFAULT_SERVE_DRAIN_MS),
            )
        },
        parses_positive_u64,
    )
}

/// Response write timeout before fblas-serve drops a client that has
/// stopped reading: `FBLAS_SERVE_WRITE_MS` if a positive integer of
/// milliseconds, else [`DEFAULT_SERVE_WRITE_MS`]. Re-read every call.
pub fn serve_write_timeout() -> Duration {
    read_knob(
        "FBLAS_SERVE_WRITE_MS",
        "2000 ms",
        |raw| {
            Duration::from_millis(
                raw.and_then(|v| v.trim().parse::<u64>().ok())
                    .filter(|n| *n >= 1)
                    .unwrap_or(DEFAULT_SERVE_WRITE_MS),
            )
        },
        parses_positive_u64,
    )
}

/// Arm the global telemetry registry if `FBLAS_METRICS` asks for it,
/// with `FBLAS_METRICS_SHARDS` writer shards. Returns whether the
/// registry ended up armed. Call this once at program start (bins) or
/// before building a simulation whose channels should be instrumented
/// — channels resolve their metric handles at creation time.
pub fn arm_metrics() -> bool {
    if metrics_enabled() {
        fblas_metrics::install(metrics_shards());
    }
    fblas_metrics::armed()
}

/// Arm the flight recorder if `FBLAS_FLIGHT` asks for it, sampling at
/// `FBLAS_FLIGHT_HZ` over a `FBLAS_FLIGHT_WINDOW`-second ring. The
/// recorder samples the metrics registry, so arming it arms the
/// registry too (`FBLAS_METRICS_SHARDS` still sets the shard count).
/// Returns whether the recorder ended up armed.
pub fn arm_flight() -> bool {
    if flight_enabled() {
        fblas_metrics::install(metrics_shards());
        fblas_metrics::flight::install(fblas_metrics::flight::FlightConfig {
            hz: flight_hz(),
            window_s: flight_window_s(),
        });
    }
    fblas_metrics::flight::armed()
}

/// Every documented knob with its **resolved** value — what the process
/// would actually use right now, defaults applied — rendered as strings
/// in [`KNOBS`] table order. Postmortem bundles embed this so a crash
/// document records the configuration that produced it.
pub fn resolved_knobs() -> Vec<(String, String)> {
    KNOBS
        .iter()
        .map(|k| {
            let v = match k.name {
                "FBLAS_STALL_GRACE_MS" => stall_grace().as_millis().to_string(),
                "FBLAS_WAIT_SLICE_US" => wait_slice().as_micros().to_string(),
                "FBLAS_CHUNK" => chunk().to_string(),
                "FBLAS_BACKEND" => backend().to_string(),
                "FBLAS_CHAOS_SEED" => chaos_seed()
                    .map(|s| s.to_string())
                    .unwrap_or_else(|| "unset".to_string()),
                "FBLAS_RETRY_MAX" => retry_max().to_string(),
                "FBLAS_METRICS" => u8::from(metrics_enabled()).to_string(),
                "FBLAS_METRICS_SHARDS" => metrics_shards().to_string(),
                "FBLAS_FLIGHT" => u8::from(flight_enabled()).to_string(),
                "FBLAS_FLIGHT_HZ" => flight_hz().to_string(),
                "FBLAS_FLIGHT_WINDOW" => flight_window_s().to_string(),
                "FBLAS_FLIGHT_DIR" => flight_dir()
                    .map(|p| p.display().to_string())
                    .unwrap_or_else(|| "unset".to_string()),
                "FBLAS_SERVE_ADDR" => serve_addr(),
                "FBLAS_SERVE_WORKERS" => serve_workers().to_string(),
                "FBLAS_SERVE_QUEUE" => serve_queue().to_string(),
                "FBLAS_SERVE_TENANT_QPS" => serve_tenant_qps().to_string(),
                "FBLAS_SERVE_BREAKER" => serve_breaker().to_string(),
                "FBLAS_SERVE_DRAIN_MS" => serve_drain().as_millis().to_string(),
                "FBLAS_SERVE_WRITE_MS" => serve_write_timeout().as_millis().to_string(),
                other => unreachable!("KNOBS row {other} missing from resolved_knobs"),
            };
            (k.name.to_string(), v)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Environment-variable tests mutate process-global state, so each
    // knob test uses its own variable and restores it; the cached knobs
    // (grace, slice) are only exercised through their pure parsers in
    // `simulation::tests`.

    #[test]
    fn retry_max_parses_and_rejects_garbage() {
        std::env::remove_var("FBLAS_RETRY_MAX");
        assert_eq!(retry_max(), DEFAULT_RETRY_MAX);
        std::env::set_var("FBLAS_RETRY_MAX", "7");
        assert_eq!(retry_max(), 7);
        std::env::set_var("FBLAS_RETRY_MAX", "0");
        assert_eq!(retry_max(), DEFAULT_RETRY_MAX);
        std::env::set_var("FBLAS_RETRY_MAX", "many");
        assert_eq!(retry_max(), DEFAULT_RETRY_MAX);
        std::env::remove_var("FBLAS_RETRY_MAX");
    }

    #[test]
    fn chaos_seed_is_optional() {
        std::env::remove_var("FBLAS_CHAOS_SEED");
        assert_eq!(chaos_seed(), None);
        std::env::set_var("FBLAS_CHAOS_SEED", "12345");
        assert_eq!(chaos_seed(), Some(12345));
        std::env::set_var("FBLAS_CHAOS_SEED", "xyz");
        assert_eq!(chaos_seed(), None);
        std::env::remove_var("FBLAS_CHAOS_SEED");
    }

    #[test]
    fn backend_parses_and_rejects_garbage() {
        std::env::remove_var("FBLAS_BACKEND");
        assert_eq!(backend(), "auto");
        std::env::set_var("FBLAS_BACKEND", "fused");
        assert_eq!(backend(), "fused");
        std::env::set_var("FBLAS_BACKEND", "threaded");
        assert_eq!(backend(), "threaded");
        std::env::set_var("FBLAS_BACKEND", "quantum");
        assert_eq!(backend(), "auto");
        std::env::remove_var("FBLAS_BACKEND");
    }

    #[test]
    fn warnings_fire_once_per_knob() {
        warn_invalid("FBLAS_TEST_KNOB", "bad", "default");
        warn_invalid("FBLAS_TEST_KNOB", "bad", "default");
        assert!(warned().lock().unwrap().contains("FBLAS_TEST_KNOB"));
    }

    #[test]
    fn metrics_shards_parses_and_rejects_garbage() {
        std::env::remove_var("FBLAS_METRICS_SHARDS");
        assert_eq!(metrics_shards(), fblas_metrics::DEFAULT_SHARDS);
        std::env::set_var("FBLAS_METRICS_SHARDS", "4");
        assert_eq!(metrics_shards(), 4);
        std::env::set_var("FBLAS_METRICS_SHARDS", "0");
        assert_eq!(metrics_shards(), fblas_metrics::DEFAULT_SHARDS);
        std::env::set_var("FBLAS_METRICS_SHARDS", "lots");
        assert_eq!(metrics_shards(), fblas_metrics::DEFAULT_SHARDS);
        std::env::remove_var("FBLAS_METRICS_SHARDS");
    }

    #[test]
    fn flight_hz_parses_clamps_and_rejects_garbage() {
        std::env::remove_var("FBLAS_FLIGHT_HZ");
        assert_eq!(flight_hz(), fblas_metrics::flight::DEFAULT_FLIGHT_HZ);
        std::env::set_var("FBLAS_FLIGHT_HZ", "200");
        assert_eq!(flight_hz(), 200);
        std::env::set_var("FBLAS_FLIGHT_HZ", "9999");
        assert_eq!(flight_hz(), 1000, "cadence is clamped to 1 kHz");
        std::env::set_var("FBLAS_FLIGHT_HZ", "0");
        assert_eq!(flight_hz(), fblas_metrics::flight::DEFAULT_FLIGHT_HZ);
        std::env::set_var("FBLAS_FLIGHT_HZ", "fast");
        assert_eq!(flight_hz(), fblas_metrics::flight::DEFAULT_FLIGHT_HZ);
        std::env::remove_var("FBLAS_FLIGHT_HZ");
    }

    #[test]
    fn flight_window_and_dir_parse() {
        std::env::remove_var("FBLAS_FLIGHT_WINDOW");
        assert_eq!(
            flight_window_s(),
            fblas_metrics::flight::DEFAULT_FLIGHT_WINDOW_S
        );
        std::env::set_var("FBLAS_FLIGHT_WINDOW", "3");
        assert_eq!(flight_window_s(), 3);
        std::env::remove_var("FBLAS_FLIGHT_WINDOW");

        std::env::remove_var("FBLAS_FLIGHT_DIR");
        assert_eq!(flight_dir(), None);
        std::env::set_var("FBLAS_FLIGHT_DIR", "/tmp/flight");
        assert_eq!(flight_dir(), Some(std::path::PathBuf::from("/tmp/flight")));
        std::env::set_var("FBLAS_FLIGHT_DIR", "  ");
        assert_eq!(flight_dir(), None, "blank value means unset");
        std::env::remove_var("FBLAS_FLIGHT_DIR");
    }

    #[test]
    fn serve_knobs_parse_and_reject_garbage() {
        std::env::remove_var("FBLAS_SERVE_ADDR");
        assert_eq!(serve_addr(), DEFAULT_SERVE_ADDR);
        std::env::set_var("FBLAS_SERVE_ADDR", "0.0.0.0:9000");
        assert_eq!(serve_addr(), "0.0.0.0:9000");
        std::env::set_var("FBLAS_SERVE_ADDR", "no-port-here");
        assert_eq!(serve_addr(), DEFAULT_SERVE_ADDR);
        std::env::set_var("FBLAS_SERVE_ADDR", "host:99999");
        assert_eq!(serve_addr(), DEFAULT_SERVE_ADDR, "port must fit u16");
        std::env::remove_var("FBLAS_SERVE_ADDR");

        std::env::remove_var("FBLAS_SERVE_WORKERS");
        assert_eq!(serve_workers(), DEFAULT_SERVE_WORKERS);
        std::env::set_var("FBLAS_SERVE_WORKERS", "8");
        assert_eq!(serve_workers(), 8);
        std::env::set_var("FBLAS_SERVE_WORKERS", "0");
        assert_eq!(serve_workers(), DEFAULT_SERVE_WORKERS);
        std::env::set_var("FBLAS_SERVE_WORKERS", "100000");
        assert_eq!(serve_workers(), 256, "worker count is clamped");
        std::env::remove_var("FBLAS_SERVE_WORKERS");

        std::env::remove_var("FBLAS_SERVE_QUEUE");
        assert_eq!(serve_queue(), DEFAULT_SERVE_QUEUE);
        std::env::set_var("FBLAS_SERVE_QUEUE", "2");
        assert_eq!(serve_queue(), 2);
        std::env::set_var("FBLAS_SERVE_QUEUE", "none");
        assert_eq!(serve_queue(), DEFAULT_SERVE_QUEUE);
        std::env::remove_var("FBLAS_SERVE_QUEUE");

        std::env::remove_var("FBLAS_SERVE_TENANT_QPS");
        assert_eq!(serve_tenant_qps(), DEFAULT_SERVE_TENANT_QPS);
        std::env::set_var("FBLAS_SERVE_TENANT_QPS", "5");
        assert_eq!(serve_tenant_qps(), 5);
        std::env::set_var("FBLAS_SERVE_TENANT_QPS", "0");
        assert_eq!(serve_tenant_qps(), DEFAULT_SERVE_TENANT_QPS);
        std::env::remove_var("FBLAS_SERVE_TENANT_QPS");

        std::env::remove_var("FBLAS_SERVE_BREAKER");
        assert_eq!(serve_breaker(), DEFAULT_SERVE_BREAKER);
        std::env::set_var("FBLAS_SERVE_BREAKER", "2");
        assert_eq!(serve_breaker(), 2);
        std::env::set_var("FBLAS_SERVE_BREAKER", "-1");
        assert_eq!(serve_breaker(), DEFAULT_SERVE_BREAKER);
        std::env::remove_var("FBLAS_SERVE_BREAKER");

        std::env::remove_var("FBLAS_SERVE_DRAIN_MS");
        assert_eq!(serve_drain(), Duration::from_millis(DEFAULT_SERVE_DRAIN_MS));
        std::env::set_var("FBLAS_SERVE_DRAIN_MS", "250");
        assert_eq!(serve_drain(), Duration::from_millis(250));
        std::env::set_var("FBLAS_SERVE_DRAIN_MS", "forever");
        assert_eq!(serve_drain(), Duration::from_millis(DEFAULT_SERVE_DRAIN_MS));
        std::env::remove_var("FBLAS_SERVE_DRAIN_MS");

        std::env::remove_var("FBLAS_SERVE_WRITE_MS");
        assert_eq!(
            serve_write_timeout(),
            Duration::from_millis(DEFAULT_SERVE_WRITE_MS)
        );
        std::env::set_var("FBLAS_SERVE_WRITE_MS", "500");
        assert_eq!(serve_write_timeout(), Duration::from_millis(500));
        std::env::set_var("FBLAS_SERVE_WRITE_MS", "0");
        assert_eq!(
            serve_write_timeout(),
            Duration::from_millis(DEFAULT_SERVE_WRITE_MS),
            "zero would disable the timeout entirely"
        );
        std::env::remove_var("FBLAS_SERVE_WRITE_MS");
    }

    #[test]
    fn resolved_knobs_covers_every_documented_knob() {
        // `resolved_knobs` matches on knob names; a KNOBS row it does
        // not know would hit the unreachable arm and fail here.
        let rows = resolved_knobs();
        assert_eq!(rows.len(), KNOBS.len());
        for ((name, value), spec) in rows.iter().zip(KNOBS) {
            assert_eq!(name, spec.name);
            assert!(!value.is_empty(), "{name} resolved to an empty string");
        }
    }

    #[test]
    fn knob_table_stays_in_sync_with_readers() {
        // Read every knob through its reader function, then require the
        // set of variables actually consulted to be exactly the
        // documented table. A knob added to the code without a KNOBS row
        // (or vice versa) fails here.
        let _ = stall_grace();
        let _ = wait_slice();
        let _ = chunk();
        let _ = backend();
        let _ = chaos_seed();
        let _ = retry_max();
        let _ = metrics_enabled();
        let _ = metrics_shards();
        let _ = flight_enabled();
        let _ = flight_hz();
        let _ = flight_window_s();
        let _ = flight_dir();
        let _ = serve_addr();
        let _ = serve_workers();
        let _ = serve_queue();
        let _ = serve_tenant_qps();
        let _ = serve_breaker();
        let _ = serve_drain();
        let _ = serve_write_timeout();
        let mut documented: Vec<&'static str> = KNOBS.iter().map(|k| k.name).collect();
        documented.sort_unstable();
        assert_eq!(touched_knobs(), documented);
        // Table rows are well-formed for rendering.
        for k in KNOBS {
            assert!(k.name.starts_with("FBLAS_"), "{}", k.name);
            assert!(!k.meaning.is_empty() && !k.default.is_empty());
            assert!(matches!(k.cadence, "process" | "call"), "{}", k.cadence);
        }
    }
}
