//! Postmortem bundle capture: the glue between a dying run and the
//! flight recorder's [`PostmortemBundle`].
//!
//! The bundle type lives in `fblas_metrics::flight` (so the metrics
//! crate stays dependency-free); this module owns everything that needs
//! simulator context — the resolved `FBLAS_*` knob table, the
//! `FBLAS_FLIGHT_DIR` file write, and the final forced sample of the
//! registry at the moment of death. The watchdog calls [`capture`] on
//! `SimError::Stall`/`Deadline`/`Poisoned`; the composition executor
//! calls it (with the recovery report attached) when a retry budget is
//! exhausted, holding sim-level capture suppressed during attempts so
//! only the authoritative exhaustion bundle is published.

use std::sync::Arc;

use fblas_metrics::flight::{self, PostmortemBundle, Trigger};
use serde::Value;

/// Assemble, publish, and (when `FBLAS_FLIGHT_DIR` is set) persist a
/// postmortem bundle for a terminal failure.
///
/// Returns `None` — without touching anything — when the flight
/// recorder is disarmed, capture is suppressed on this thread (the
/// recovery executor does this around each attempt), or the metrics
/// registry was never installed. Otherwise the recorder takes one final
/// forced sample so the last frame reflects the moment of death, the
/// anomaly rules run over the window, and the bundle becomes
/// [`flight::last_bundle`].
pub fn capture(
    trigger: Trigger,
    stall: Option<Value>,
    guards: Option<Value>,
    recovery: Option<Value>,
    fault: Option<Value>,
) -> Option<Arc<PostmortemBundle>> {
    if flight::capture_suppressed() {
        return None;
    }
    let rec = flight::recorder()?;
    let reg = fblas_metrics::registry_any()?;
    rec.sample_now(&reg);
    let frames = rec.frames();
    let anomalies = flight::detect(&frames);
    let snapshot = fblas_metrics::expo::snapshot_value(&reg.collect());
    let bundle = flight::record_bundle(PostmortemBundle {
        run_id: fblas_metrics::current_run_id().map(|id| id.to_string()),
        trigger,
        knobs: crate::env::resolved_knobs(),
        stall,
        guards,
        recovery,
        fault,
        frames,
        anomalies,
        snapshot,
    });
    if let Some(dir) = crate::env::flight_dir() {
        let name = match &bundle.run_id {
            Some(id) => format!("postmortem-{id}.json"),
            None => "postmortem.json".to_string(),
        };
        let path = dir.join(name);
        let write = std::fs::create_dir_all(&dir)
            .and_then(|()| std::fs::write(&path, bundle.to_json() + "\n"));
        if let Err(e) = write {
            eprintln!(
                "fblas: warning: failed to write postmortem bundle {}: {e}",
                path.display()
            );
        }
    }
    Some(bundle)
}
