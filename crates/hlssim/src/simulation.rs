//! Concurrent execution of module graphs with stall detection.
//!
//! Each module runs on its own OS thread, mirroring the true spatial
//! concurrency of circuits configured simultaneously on the FPGA. A
//! watchdog on the calling thread observes two global counters maintained
//! by the channels: a progress *epoch* (bumped on every successful
//! transfer) and the number of threads currently *blocked* on a channel
//! operation. When every live module is blocked and the epoch has not
//! moved for a grace period, the composition has deadlocked — the paper's
//! "stalls forever" (Sec. V-B) — and the watchdog poisons the context,
//! unblocking everyone with [`SimError::Poisoned`] and reporting
//! [`SimError::Stall`] to the caller.
//!
//! Panic audit: every `unwrap`/`panic!` in this module lives in test
//! code or doc examples. Module closures that panic are caught by the
//! runner and surfaced as [`SimError::Module`]; configuration supplied
//! by users (channel depths) is validated by the fallible constructors
//! ([`crate::try_channel`]) and rejected as [`SimError::Config`].

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Once};
use std::time::{Duration, Instant};

use fblas_trace::{ModuleScope, Tracer};
use parking_lot::Mutex;
use serde::Serialize;

use crate::channel::ChannelStats;
use crate::error::SimError;
use crate::fault::{FaultAction, FaultHook, FaultSite, GuardReport, ModuleFault};
use crate::module::{ModuleKind, ModuleSpec};
use crate::stall::{BlockedModule, StallReport, WaitDirection};

/// Type-erased view of a live channel, registered at creation so the
/// runner can snapshot FIFO statistics into the report — the software
/// analog of dropping signal taps on the hardware FIFOs to size them.
pub(crate) trait ChannelProbe: Send + Sync {
    /// Channel name.
    fn probe_name(&self) -> String;
    /// Statistics snapshot.
    fn probe_stats(&self) -> ChannelStats;
    /// Current queue occupancy.
    fn probe_occupancy(&self) -> usize;
    /// FIFO capacity.
    fn probe_capacity(&self) -> usize;
    /// Integrity-guard verdict, if faults were armed and the channel saw
    /// traffic.
    fn probe_guard(&self) -> Option<GuardReport> {
        None
    }
}

/// A thread currently blocked on a channel operation: one edge of the
/// wait-for graph, filed by the channel's `BlockGuard` and harvested by
/// the watchdog to build a [`StallReport`].
pub(crate) struct Waiter {
    /// Module the blocked thread belongs to (from the trace scope), if any.
    pub(crate) module: Option<Arc<str>>,
    /// Channel being waited on.
    pub(crate) channel: Arc<str>,
    /// Full (push side) or empty (pop side).
    pub(crate) direction: WaitDirection,
}

/// Shared simulation-wide state observed by channels and the watchdog.
pub(crate) struct CtxShared {
    /// Bumped on every successful channel transfer.
    pub(crate) epoch: AtomicU64,
    /// Number of threads currently blocked in a channel wait.
    pub(crate) blocked: AtomicUsize,
    /// Number of module threads still running.
    pub(crate) live: AtomicUsize,
    /// Once set, all channel operations fail with `Poisoned`.
    pub(crate) poisoned: AtomicBool,
    /// Probes of every channel created against this context. Strong
    /// references: a channel's statistics outlive its endpoints so the
    /// final report can include them (the context itself is dropped
    /// when the run ends).
    pub(crate) probes: Mutex<Vec<Arc<dyn ChannelProbe>>>,
    /// Wait-for table: one entry per thread currently blocked on a
    /// channel, keyed by a registration id. The watchdog snapshots this
    /// (copy out, then release the lock) *before* poisoning, so the
    /// forensics reflect the actual deadlock rather than the poison
    /// cascade.
    pub(crate) waiters: Mutex<HashMap<u64, Waiter>>,
    /// Id source for waiter registrations.
    pub(crate) waiter_seq: AtomicU64,
    /// Armed fault hook, if any. Channel operations never take this lock
    /// unless `fault_armed` is set.
    pub(crate) fault: Mutex<Option<Arc<dyn FaultHook>>>,
    /// Fast-path flag for `fault`: one relaxed load per channel op is
    /// the entire cost of the fault layer when disarmed.
    pub(crate) fault_armed: AtomicBool,
    /// The module whose failure caused the poisoning, when known. First
    /// writer wins, so cascading failures keep the original culprit.
    pub(crate) poison_cause: Mutex<Option<String>>,
}

impl CtxShared {
    /// Consult the armed hook for a channel-payload fault. Callers check
    /// `fault_armed` first; this takes the hook lock.
    pub(crate) fn fault_for(
        &self,
        site: FaultSite,
        channel: &str,
        index: u64,
    ) -> Option<FaultAction> {
        let hook = self.fault.lock().clone();
        hook.and_then(|h| h.on_channel(site, channel, index))
    }

    /// Consult the armed hook for a module-boundary fault.
    pub(crate) fn module_fault(&self, module: &str) -> Option<ModuleFault> {
        if !self.fault_armed.load(Ordering::Relaxed) {
            return None;
        }
        let hook = self.fault.lock().clone();
        hook.and_then(|h| h.on_module_start(module))
    }

    /// Poison the context recording `module` as the cause (first cause
    /// wins: a cascade of secondary failures keeps the original culprit).
    pub(crate) fn poison_with_cause(&self, module: &str) {
        {
            let mut cause = self.poison_cause.lock();
            if cause.is_none() {
                *cause = Some(module.to_string());
            }
        }
        self.poisoned.store(true, Ordering::Release);
    }

    /// The recorded poison culprit, if any.
    pub(crate) fn poison_cause(&self) -> Option<String> {
        self.poison_cause.lock().clone()
    }
}

thread_local! {
    /// While a module body runs, names the module and its context so the
    /// process panic hook can poison peers *before* unwinding starts
    /// dropping the module's channel endpoints. Poisoning only after
    /// `catch_unwind` returns would race: the endpoint drops can wake a
    /// blocked peer into a `Disconnected` error before the poison flag
    /// lands, turning a deterministic `Poisoned { by }` into a
    /// timing-dependent coin flip.
    static PANIC_POISON: RefCell<Option<(Arc<CtxShared>, String)>> = const { RefCell::new(None) };
}

/// Install (once per process) a chained panic hook that poisons the
/// panicking module's simulation context, then defers to the previous
/// hook for the usual message/backtrace.
fn install_panic_poison_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            PANIC_POISON.with(|slot| {
                if let Some((shared, name)) = slot.borrow().as_ref() {
                    shared.poison_with_cause(name);
                }
            });
            prev(info);
        }));
    });
}

/// Clears the thread's `PANIC_POISON` registration on scope exit
/// (normal return *or* unwind, after the hook has already fired).
struct PanicPoisonScope;

impl PanicPoisonScope {
    fn enter(shared: &Arc<CtxShared>, name: &str) -> Self {
        PANIC_POISON.with(|slot| {
            *slot.borrow_mut() = Some((shared.clone(), name.to_string()));
        });
        PanicPoisonScope
    }
}

impl Drop for PanicPoisonScope {
    fn drop(&mut self) {
        PANIC_POISON.with(|slot| {
            *slot.borrow_mut() = None;
        });
    }
}

/// Handle to the shared state; create channels against it and pass it to a
/// [`Simulation`].
#[derive(Clone)]
pub struct SimContext {
    shared: Arc<CtxShared>,
}

impl SimContext {
    /// Create a fresh context with zeroed counters.
    pub fn new() -> Self {
        SimContext {
            shared: Arc::new(CtxShared {
                epoch: AtomicU64::new(0),
                blocked: AtomicUsize::new(0),
                live: AtomicUsize::new(0),
                poisoned: AtomicBool::new(false),
                probes: Mutex::new(Vec::new()),
                waiters: Mutex::new(HashMap::new()),
                waiter_seq: AtomicU64::new(0),
                fault: Mutex::new(None),
                fault_armed: AtomicBool::new(false),
                poison_cause: Mutex::new(None),
            }),
        }
    }

    /// Snapshot the statistics of every channel created against this
    /// context that is still alive, in creation order.
    pub fn channel_stats(&self) -> Vec<(String, ChannelStats)> {
        self.shared
            .probes
            .lock()
            .iter()
            .map(|p| (p.probe_name(), p.probe_stats()))
            .collect()
    }

    pub(crate) fn shared(&self) -> Arc<CtxShared> {
        self.shared.clone()
    }

    pub(crate) fn register_probe(&self, probe: Arc<dyn ChannelProbe>) {
        self.shared.probes.lock().push(probe);
    }

    /// Poison the context: every pending and future channel operation on
    /// channels created from this context fails with
    /// [`SimError::Poisoned`]. Used by the watchdog; also available for
    /// external cancellation.
    pub fn poison(&self) {
        self.shared.poisoned.store(true, Ordering::Release);
    }

    /// Whether the context has been poisoned.
    pub fn is_poisoned(&self) -> bool {
        self.shared.poisoned.load(Ordering::Acquire)
    }

    /// Current progress epoch (total successful channel transfers).
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::Acquire)
    }

    /// Arm `hook`: every subsequent channel push/pop consults it (keyed
    /// by channel name and element sequence number) and every module
    /// start may be crashed or hung by it. Channels also begin
    /// maintaining integrity guards (see [`SimContext::guard_reports`]).
    ///
    /// While no hook is armed the entire fault layer costs one relaxed
    /// atomic load per channel operation.
    pub fn arm_faults(&self, hook: Arc<dyn FaultHook>) {
        *self.shared.fault.lock() = Some(hook);
        self.shared.fault_armed.store(true, Ordering::Release);
    }

    /// Disarm any armed fault hook, restoring the zero-cost path.
    pub fn disarm_faults(&self) {
        self.shared.fault_armed.store(false, Ordering::Release);
        *self.shared.fault.lock() = None;
    }

    /// Whether a fault hook is currently armed on this context.
    ///
    /// Fused-region execution collapses internal channels into a
    /// straight-line loop, so the per-channel integrity guards that a
    /// fault hook relies on never see the fused traffic. Harnesses that
    /// replace channels with fused loops (the lint fusion differential)
    /// check this and refuse to fuse under an armed hook rather than
    /// silently dropping fault coverage.
    pub fn faults_armed(&self) -> bool {
        self.shared.fault_armed.load(Ordering::Acquire)
    }

    /// Integrity-guard verdicts for every channel that saw traffic while
    /// a fault hook was armed, in creation order. Empty if faults were
    /// never armed.
    pub fn guard_reports(&self) -> Vec<GuardReport> {
        self.shared
            .probes
            .lock()
            .iter()
            .filter_map(|p| p.probe_guard())
            .collect()
    }

    /// The module whose failure poisoned this context, when known.
    pub fn poison_cause(&self) -> Option<String> {
        self.shared.poison_cause()
    }
}

impl Default for SimContext {
    fn default() -> Self {
        Self::new()
    }
}

/// Outcome of a completed (non-stalled) simulation run.
#[derive(Debug, Clone, Serialize)]
pub struct SimulationReport {
    /// Names of the modules that ran.
    pub modules: Vec<String>,
    /// Wall-clock duration of the concurrent run.
    pub wall_time: Duration,
    /// Total channel transfers across the whole run.
    pub transfers: u64,
    /// Per-channel FIFO statistics (name, stats), in creation order —
    /// occupancy high-water marks and stall counts for FIFO sizing.
    pub channel_stats: Vec<(String, ChannelStats)>,
}

/// A set of modules plus the context their channels were created against.
///
/// Typical use:
/// ```
/// use fblas_hlssim::{channel, Simulation, ModuleKind};
///
/// let mut sim = Simulation::new();
/// let (tx, rx) = channel::<f32>(sim.ctx(), 16, "ch");
/// sim.add_module("producer", ModuleKind::Interface, move || {
///     tx.push_iter((0..100).map(|i| i as f32))
/// });
/// sim.add_module("consumer", ModuleKind::Compute, move || {
///     let v = rx.pop_n(100)?;
///     assert_eq!(v.len(), 100);
///     Ok(())
/// });
/// sim.run().unwrap();
/// ```
pub struct Simulation {
    ctx: SimContext,
    modules: Vec<ModuleSpec>,
    grace: Duration,
    deadline: Option<Duration>,
    tracer: Option<Tracer>,
}

/// Baseline stall-detection grace period: the watchdog requires the epoch
/// to be frozen with all live modules blocked for this long before
/// declaring a stall. Long enough to be robust against scheduling noise,
/// short enough for tests that deliberately construct invalid
/// compositions.
pub const DEFAULT_GRACE: Duration = Duration::from_millis(250);

/// The grace period new simulations start with: [`DEFAULT_GRACE`] unless
/// the `FBLAS_STALL_GRACE_MS` environment variable overrides it (useful on
/// heavily loaded CI machines where 250 ms of global scheduling starvation
/// is not impossible). Read once and cached; invalid values warn once and
/// fall back to the default (see [`crate::env`]). Per-simulation
/// [`Simulation::set_grace`] still wins.
pub fn default_grace() -> Duration {
    crate::env::stall_grace()
}

/// Parse an `FBLAS_STALL_GRACE_MS` value: a positive integer number of
/// milliseconds. Unset, zero, and unparsable values fall back to
/// [`DEFAULT_GRACE`] — a zero grace would make the watchdog declare a
/// stall on the first scheduling hiccup.
pub fn parse_stall_grace_ms(raw: Option<&str>) -> Duration {
    raw.and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|ms| *ms > 0)
        .map(Duration::from_millis)
        .unwrap_or(DEFAULT_GRACE)
}

/// Baseline wait slice: how long a blocked channel operation sleeps
/// before re-checking the poison flag. Keeps teardown latency low
/// without busy-waiting.
pub const DEFAULT_WAIT_SLICE: Duration = Duration::from_millis(2);

/// The wait slice channel operations use: [`DEFAULT_WAIT_SLICE`] unless
/// the `FBLAS_WAIT_SLICE_US` environment variable overrides it.
/// Long-running differential tests can raise it to trade teardown
/// latency for fewer spurious wakeups; stress tests can lower it to
/// exercise the re-check path. Read once and cached, like
/// [`default_grace`]; invalid values warn once (see [`crate::env`]).
pub fn wait_slice() -> Duration {
    crate::env::wait_slice()
}

/// Parse an `FBLAS_WAIT_SLICE_US` value: a positive integer number of
/// microseconds. Unset, zero, and unparsable values fall back to
/// [`DEFAULT_WAIT_SLICE`] — a zero slice would spin the blocked thread.
pub fn parse_wait_slice_us(raw: Option<&str>) -> Duration {
    raw.and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|us| *us > 0)
        .map(Duration::from_micros)
        .unwrap_or(DEFAULT_WAIT_SLICE)
}

/// Resolve the wait-for table into a [`StallReport`]: per blocked thread,
/// the module, channel, direction, and the channel's occupancy/capacity.
///
/// The table is copied out under its lock and the probes resolved after
/// releasing it: channel threads take `waiters` while holding their state
/// lock, and the occupancy probe needs that state lock, so holding both
/// here could deadlock the watchdog itself.
fn snapshot_stall(shared: &CtxShared, grace: Duration, epoch: u64) -> StallReport {
    let waiting: Vec<(Option<Arc<str>>, Arc<str>, WaitDirection)> = shared
        .waiters
        .lock()
        .values()
        .map(|w| (w.module.clone(), w.channel.clone(), w.direction))
        .collect();
    let probes = shared.probes.lock();
    let mut blocked: Vec<BlockedModule> = waiting
        .into_iter()
        .map(|(module, channel, direction)| {
            let probe = probes.iter().find(|p| p.probe_name() == *channel);
            BlockedModule {
                module: module
                    .map(|m| m.to_string())
                    .unwrap_or_else(|| "?".to_string()),
                channel: channel.to_string(),
                direction,
                occupancy: probe.map(|p| p.probe_occupancy()).unwrap_or(0),
                capacity: probe.map(|p| p.probe_capacity()).unwrap_or(0),
            }
        })
        .collect();
    blocked.sort_by(|a, b| {
        (a.module.as_str(), a.channel.as_str()).cmp(&(b.module.as_str(), b.channel.as_str()))
    });
    StallReport {
        grace_ms: grace.as_millis() as u64,
        epoch,
        blocked,
    }
}

/// Hand a dying simulation to the flight recorder. Cheap no-op when the
/// recorder is disarmed; otherwise attaches the wait-for graph (if the
/// watchdog produced one) and any non-clean-capable guard reports to the
/// postmortem bundle.
fn capture_sim_postmortem(
    kind: &str,
    detail: String,
    culprit: Option<String>,
    stall: Option<&StallReport>,
    shared: &Arc<CtxShared>,
) {
    if !fblas_metrics::flight::armed() {
        return;
    }
    let guards = SimContext {
        shared: shared.clone(),
    }
    .guard_reports();
    crate::postmortem::capture(
        fblas_metrics::flight::Trigger {
            kind: kind.to_string(),
            detail,
            culprit,
        },
        stall.and_then(|r| serde_json::to_value(r).ok()),
        (!guards.is_empty())
            .then(|| serde_json::to_value(&guards).ok())
            .flatten(),
        None,
        None,
    );
}

impl Simulation {
    /// Create an empty simulation with its own fresh [`SimContext`].
    pub fn new() -> Self {
        Simulation {
            ctx: SimContext::new(),
            modules: Vec::new(),
            grace: default_grace(),
            deadline: None,
            tracer: None,
        }
    }

    /// Create a simulation over an existing context.
    pub fn with_ctx(ctx: SimContext) -> Self {
        Simulation {
            ctx,
            modules: Vec::new(),
            grace: default_grace(),
            deadline: None,
            tracer: None,
        }
    }

    /// Attach a tracer: module threads get trace lanes (run span, channel
    /// ops, stall spans) and the watchdog samples channel occupancy into
    /// the tracer's time series on every poll. Without a tracer the
    /// simulation runs with the zero-overhead disabled path.
    pub fn set_tracer(&mut self, tracer: Tracer) -> &mut Self {
        self.tracer = Some(tracer);
        self
    }

    /// The context channels must be created against.
    pub fn ctx(&self) -> &SimContext {
        &self.ctx
    }

    /// Override the stall-detection grace period.
    pub fn set_grace(&mut self, grace: Duration) {
        self.grace = grace;
    }

    /// Set a wall-clock deadline for the whole run. Stall detection only
    /// fires when every live module is *channel-blocked*; a module that
    /// hangs without touching its FIFOs (an injected `Hang` fault, an
    /// infinite compute loop) keeps `blocked < live` forever and evades
    /// it. The deadline closes that gap: when it expires the watchdog
    /// snapshots whatever wait-for edges exist, poisons the context, and
    /// the run returns [`SimError::Deadline`].
    pub fn set_deadline(&mut self, deadline: Duration) {
        self.deadline = Some(deadline);
    }

    /// Add a module from its parts.
    pub fn add_module(
        &mut self,
        name: impl Into<String>,
        kind: ModuleKind,
        body: impl FnOnce() -> Result<(), SimError> + Send + 'static,
    ) -> &mut Self {
        self.modules.push(ModuleSpec::new(name, kind, body));
        self
    }

    /// Add a prepared [`ModuleSpec`].
    pub fn add_spec(&mut self, spec: ModuleSpec) -> &mut Self {
        self.modules.push(spec);
        self
    }

    /// Number of modules registered so far.
    pub fn module_count(&self) -> usize {
        self.modules.len()
    }

    /// Run all modules concurrently to completion.
    ///
    /// Returns the first module error encountered, or [`SimError::Stall`]
    /// if the watchdog detected a deadlocked composition. On success the
    /// report carries the wall time and total transfer count.
    pub fn run(self) -> Result<SimulationReport, SimError> {
        let Simulation {
            ctx,
            modules,
            grace,
            deadline,
            tracer,
        } = self;
        let shared = ctx.shared();
        let names: Vec<String> = modules.iter().map(|m| m.name.clone()).collect();
        let n = modules.len();
        shared.live.store(n, Ordering::Release);
        install_panic_poison_hook();

        let start = Instant::now();
        let mut stall_report: Option<StallReport> = None;
        let mut deadline_report: Option<StallReport> = None;
        let mut results: Vec<Option<Result<(), SimError>>> = Vec::new();
        results.resize_with(n, || None);

        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(n);
            for spec in modules {
                let shared = shared.clone();
                let name = spec.name.clone();
                let tracer = tracer.clone();
                handles.push(s.spawn(move || {
                    // The scope installs the module identity for waiter
                    // registration and (when a tracer is attached) a trace
                    // lane; dropping it records the module's run span.
                    let _scope = ModuleScope::enter(&name, tracer.as_ref());
                    let body = spec.body;
                    let injected = shared.module_fault(&name);
                    // A panicking module must still decrement `live`, or
                    // the watchdog can never conclude anything about the
                    // remaining modules.
                    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        match injected {
                            Some(ModuleFault::Crash) => {
                                fblas_trace::record_fault(&name, "crash");
                                crate::channel::record_fault_metric("crash");
                                // Poison *before* unwinding drops the
                                // module's endpoints, so peers observe
                                // `Poisoned { by }` rather than racing
                                // into `Disconnected`. `resume_unwind`
                                // skips the panic hook (no stderr noise
                                // for an intentional fault).
                                shared.poison_with_cause(&name);
                                std::panic::resume_unwind(Box::new("injected crash fault"));
                            }
                            Some(ModuleFault::Hang) => {
                                fblas_trace::record_fault(&name, "hang");
                                crate::channel::record_fault_metric("hang");
                                // Stop making progress while *holding the
                                // body alive*: its channel endpoints stay
                                // open, so peers block on the FIFOs (the
                                // hardware picture of a hung kernel)
                                // instead of seeing a disconnect. Only
                                // poisoning — stall detection or the run
                                // deadline — releases us.
                                while !shared.poisoned.load(Ordering::Acquire) {
                                    std::thread::sleep(Duration::from_millis(1));
                                }
                                drop(body);
                                Err(SimError::Poisoned {
                                    by: shared.poison_cause(),
                                })
                            }
                            None => {
                                // Register with the panic hook so a
                                // genuine panic poisons peers before the
                                // unwind drops this module's endpoints.
                                let _poison_scope = PanicPoisonScope::enter(&shared, &name);
                                body()
                            }
                        }
                    }))
                    .unwrap_or_else(|_| {
                        // Belt-and-braces: the hook already poisoned on a
                        // real panic, and the injected crash poisoned
                        // explicitly. First cause wins, so this is a
                        // no-op unless something slipped through.
                        shared.poison_with_cause(&name);
                        Err(SimError::module(name.clone(), "module thread panicked"))
                    });
                    shared.live.fetch_sub(1, Ordering::AcqRel);
                    r
                }));
            }

            // Watchdog: poll until all threads finish or a stall is seen.
            // Each poll doubles as a channel-occupancy sampling tick when a
            // tracer is attached.
            let poll = Duration::from_millis(5);
            let mut last_epoch = shared.epoch.load(Ordering::Acquire);
            let mut frozen_since = Instant::now();
            let metrics_reg = fblas_metrics::registry();
            let flight_rec = fblas_metrics::flight::recorder();
            loop {
                if tracer.is_some() || metrics_reg.is_some() {
                    let t_us = tracer.as_ref().map(|t| t.now_us());
                    for probe in shared.probes.lock().iter() {
                        let occ = probe.probe_occupancy();
                        if let (Some(tracer), Some(t_us)) = (&tracer, t_us) {
                            tracer.record_sample(
                                &format!("occ:{}", probe.probe_name()),
                                t_us,
                                occ as f64,
                            );
                        }
                        if let Some(reg) = &metrics_reg {
                            reg.gauge(
                                "fblas_channel_occupancy",
                                &[("channel", &probe.probe_name())],
                            )
                            .set(occ as f64);
                        }
                    }
                    // Each poll doubles as a flight-recorder tick; the
                    // recorder's own interval gate governs the cadence.
                    if let (Some(reg), Some(fr)) = (&metrics_reg, &flight_rec) {
                        fr.tick(reg);
                    }
                }
                if shared.live.load(Ordering::Acquire) == 0 {
                    break;
                }
                std::thread::sleep(poll);
                let epoch = shared.epoch.load(Ordering::Acquire);
                let live = shared.live.load(Ordering::Acquire);
                let blocked = shared.blocked.load(Ordering::Acquire);
                if let Some(dl) = deadline {
                    if start.elapsed() >= dl {
                        // Same forensics discipline as a stall: snapshot
                        // whatever wait-for edges exist before poisoning
                        // wakes (and deregisters) every blocked thread.
                        deadline_report = Some(snapshot_stall(&shared, dl, epoch));
                        shared.poisoned.store(true, Ordering::Release);
                        break;
                    }
                }
                if epoch != last_epoch || live == 0 || blocked < live {
                    last_epoch = epoch;
                    frozen_since = Instant::now();
                    continue;
                }
                if frozen_since.elapsed() >= grace {
                    // Snapshot the wait-for graph *before* poisoning:
                    // poisoning wakes every blocked thread with `Poisoned`
                    // and their waiter registrations vanish as they
                    // unwind. (The previous implementation reconstructed
                    // the blocked set from which modules returned errors
                    // after the join — but poisoning makes *every* module
                    // error, so that list named innocent bystanders.)
                    stall_report = Some(snapshot_stall(&shared, grace, epoch));
                    shared.poisoned.store(true, Ordering::Release);
                    break;
                }
            }

            for (i, h) in handles.into_iter().enumerate() {
                results[i] = Some(h.join().unwrap_or_else(|_| {
                    Err(SimError::module(names[i].clone(), "module thread panicked"))
                }));
            }
        });

        let wall_time = start.elapsed();

        if let Some(report) = stall_report {
            if let Some(reg) = fblas_metrics::registry() {
                reg.counter("fblas_sim_stalls_total", &[]).inc();
            }
            capture_sim_postmortem(
                "stall",
                format!(
                    "deadlocked after {} ms grace with {} module(s) channel-blocked",
                    report.grace_ms,
                    report.blocked.len()
                ),
                None,
                Some(&report),
                &shared,
            );
            return Err(SimError::Stall { report });
        }

        if let Some(report) = deadline_report {
            if let Some(reg) = fblas_metrics::registry() {
                reg.counter("fblas_sim_deadlines_total", &[]).inc();
            }
            capture_sim_postmortem(
                "deadline",
                format!(
                    "wall-clock deadline ({} ms) expired with {} module(s) channel-blocked",
                    report.grace_ms,
                    report.blocked.len()
                ),
                None,
                Some(&report),
                &shared,
            );
            return Err(SimError::Deadline { report });
        }

        // Surface the first real module error (ignoring poison cascades).
        let mut saw_poison = false;
        for r in results.into_iter().flatten() {
            match r {
                Ok(()) => {}
                Err(SimError::Poisoned { .. }) => saw_poison = true,
                Err(e) => return Err(e),
            }
        }
        // Poison without any primary failure means the run was cancelled
        // externally via `SimContext::poison` — not a successful
        // completion.
        if saw_poison {
            let by = shared.poison_cause();
            capture_sim_postmortem(
                "poisoned",
                "run cancelled by context poison".to_string(),
                by.clone(),
                None,
                &shared,
            );
            return Err(SimError::Poisoned { by });
        }

        let channel_stats = SimContext {
            shared: shared.clone(),
        }
        .channel_stats();
        let transfers = shared.epoch.load(Ordering::Acquire);
        // Run-summary scalars live in fblas-metrics only; the tracer-scoped
        // `trace::MetricsRegistry` kept just the counters the audit pipeline
        // reads (`fault.injected`, `recovery.retries`) plus the Perfetto
        // occupancy counter tracks sampled above.
        if let Some(reg) = fblas_metrics::registry() {
            reg.counter("fblas_sim_runs_total", &[]).inc();
            reg.counter("fblas_sim_transfers_total", &[]).add(transfers);
            reg.histogram("fblas_sim_run_us", &[])
                .record(u64::try_from(wall_time.as_micros()).unwrap_or(u64::MAX));
            for (name, stats) in &channel_stats {
                reg.gauge("fblas_channel_max_occupancy", &[("channel", name)])
                    .raise(stats.max_occupancy as f64);
            }
        }
        Ok(SimulationReport {
            modules: names,
            wall_time,
            transfers,
            channel_stats,
        })
    }
}

impl Default for Simulation {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel;
    use crate::stall::WaitDirection;

    #[test]
    fn stall_grace_parsing_rejects_zero_and_garbage() {
        assert_eq!(parse_stall_grace_ms(None), DEFAULT_GRACE);
        assert_eq!(
            parse_stall_grace_ms(Some("1500")),
            Duration::from_millis(1500)
        );
        assert_eq!(
            parse_stall_grace_ms(Some(" 40 ")),
            Duration::from_millis(40)
        );
        assert_eq!(parse_stall_grace_ms(Some("0")), DEFAULT_GRACE);
        assert_eq!(parse_stall_grace_ms(Some("-5")), DEFAULT_GRACE);
        assert_eq!(parse_stall_grace_ms(Some("2.5")), DEFAULT_GRACE);
        assert_eq!(parse_stall_grace_ms(Some("soon")), DEFAULT_GRACE);
        assert_eq!(parse_stall_grace_ms(Some("")), DEFAULT_GRACE);
    }

    #[test]
    fn wait_slice_parsing_rejects_zero_and_garbage() {
        assert_eq!(parse_wait_slice_us(None), DEFAULT_WAIT_SLICE);
        assert_eq!(parse_wait_slice_us(Some("500")), Duration::from_micros(500));
        assert_eq!(
            parse_wait_slice_us(Some(" 8000 ")),
            Duration::from_micros(8000)
        );
        assert_eq!(parse_wait_slice_us(Some("0")), DEFAULT_WAIT_SLICE);
        assert_eq!(parse_wait_slice_us(Some("-3")), DEFAULT_WAIT_SLICE);
        assert_eq!(parse_wait_slice_us(Some("1.5")), DEFAULT_WAIT_SLICE);
        assert_eq!(parse_wait_slice_us(Some("fast")), DEFAULT_WAIT_SLICE);
        assert_eq!(parse_wait_slice_us(Some("")), DEFAULT_WAIT_SLICE);
    }

    #[test]
    fn occupancy_sampler_handles_an_empty_simulation() {
        // No modules at all: the watchdog's first poll doubles as the
        // sampling tick, must probe the (idle) channel without touching
        // any module state, and the run completes immediately.
        let tracer = fblas_trace::Tracer::new();
        let mut sim = Simulation::new();
        sim.set_tracer(tracer.clone());
        let (_tx, _rx) = channel::<u8>(sim.ctx(), 4, "idle");
        let report = sim.run().unwrap();
        assert!(report.modules.is_empty());
        assert_eq!(report.transfers, 0);

        let series = tracer.series();
        let samples = &series["occ:idle"];
        assert!(!samples.is_empty(), "sampler ticked at least once");
        assert!(samples.iter().all(|(_, occ)| *occ == 0.0));
        // No lanes were flushed and no stall was declared.
        assert!(tracer.lanes().is_empty());
        assert!(!tracer
            .metrics()
            .snapshot()
            .counters
            .contains_key("sim.stalls"));
    }

    #[test]
    fn two_module_pipeline_completes() {
        let mut sim = Simulation::new();
        let (tx, rx) = channel::<u64>(sim.ctx(), 8, "ch");
        sim.add_module("src", ModuleKind::Interface, move || tx.push_iter(0..1000));
        sim.add_module("sink", ModuleKind::Compute, move || {
            let v = rx.pop_n(1000)?;
            assert_eq!(v[999], 999);
            Ok(())
        });
        let report = sim.run().unwrap();
        assert_eq!(report.modules.len(), 2);
        assert!(report.transfers >= 2000); // each element: 1 push + 1 pop
    }

    #[test]
    fn three_stage_chain_streams_through() {
        let mut sim = Simulation::new();
        let (tx1, rx1) = channel::<f64>(sim.ctx(), 4, "a");
        let (tx2, rx2) = channel::<f64>(sim.ctx(), 4, "b");
        sim.add_module("src", ModuleKind::Interface, move || {
            tx1.push_iter((0..500).map(f64::from))
        });
        sim.add_module("scale", ModuleKind::Compute, move || {
            for _ in 0..500 {
                tx2.push(rx1.pop()? * 2.0)?;
            }
            Ok(())
        });
        sim.add_module("sink", ModuleKind::Interface, move || {
            let v = rx2.pop_n(500)?;
            assert!((v[499] - 998.0).abs() < 1e-12);
            Ok(())
        });
        sim.run().unwrap();
    }

    #[test]
    fn deadlocked_composition_is_reported_as_stall() {
        // Two modules, each waiting for the other to send first: the
        // canonical invalid composition.
        let mut sim = Simulation::new();
        let (tx_ab, rx_ab) = channel::<u8>(sim.ctx(), 1, "a_to_b");
        let (tx_ba, rx_ba) = channel::<u8>(sim.ctx(), 1, "b_to_a");
        sim.add_module("a", ModuleKind::Compute, move || {
            let v = rx_ba.pop()?; // waits for b
            tx_ab.push(v)?;
            Ok(())
        });
        sim.add_module("b", ModuleKind::Compute, move || {
            let v = rx_ab.pop()?; // waits for a
            tx_ba.push(v)?;
            Ok(())
        });
        match sim.run() {
            Err(SimError::Stall { report }) => {
                assert!(report.to_string().contains("blocked modules"));
                assert_eq!(report.blocked.len(), 2);
                let a = report.blocked_on("a").expect("module a in wait-for graph");
                assert_eq!(a.channel, "b_to_a");
                assert_eq!(a.direction, WaitDirection::Empty);
                assert_eq!(a.occupancy, 0);
                assert_eq!(a.capacity, 1);
                let b = report.blocked_on("b").expect("module b in wait-for graph");
                assert_eq!(b.channel, "a_to_b");
                assert_eq!(b.direction, WaitDirection::Empty);
                assert_eq!(b.occupancy, 0);
            }
            other => panic!("expected stall, got {other:?}"),
        }
    }

    #[test]
    fn undersized_channel_between_replaying_modules_stalls() {
        // Miniature ATAX pattern (paper Sec. V-B): a producer pushes N
        // elements; the consumer needs the first element again after
        // consuming all N (replay), which only works if the FIFO can hold
        // all N. With a small FIFO the producer blocks and the pair stalls.
        let n = 64usize;
        let mut sim = Simulation::new();
        let (tx, rx) = channel::<u32>(sim.ctx(), 4, "small");
        let (res_tx, res_rx) = channel::<u32>(sim.ctx(), 1, "res");
        sim.add_module("producer", ModuleKind::Interface, move || {
            tx.push_iter(0..(2 * n as u32)) // wants to send everything twice
        });
        sim.add_module("consumer", ModuleKind::Compute, move || {
            // Consumes only n elements, then waits on `res` that nobody
            // feeds until the producer finishes (which it can't).
            let first_pass = rx.pop_n(n)?;
            let _ = res_rx.pop()?; // never arrives
            drop(first_pass);
            Ok(())
        });
        sim.add_module("never", ModuleKind::Compute, move || {
            // Keeps the `res` channel open forever without ever pushing:
            // emulates a module whose producing condition never arrives.
            std::mem::forget(res_tx);
            Ok(())
        });
        // The `never` module exits immediately, so live drops to 2, both
        // blocked => stall. The forensics must name the undersized FIFO
        // (full, at capacity) for the producer and the starved `res`
        // channel (empty) for the consumer.
        match sim.run() {
            Err(SimError::Stall { report }) => {
                let p = report.blocked_on("producer").expect("producer blocked");
                assert_eq!(p.channel, "small");
                assert_eq!(p.direction, WaitDirection::Full);
                assert_eq!(p.occupancy, 4);
                assert_eq!(p.capacity, 4);
                let c = report.blocked_on("consumer").expect("consumer blocked");
                assert_eq!(c.channel, "res");
                assert_eq!(c.direction, WaitDirection::Empty);
                assert_eq!(c.occupancy, 0);
                assert_eq!(c.capacity, 1);
            }
            other => panic!("expected stall, got {other:?}"),
        }
    }

    #[test]
    fn module_error_is_propagated() {
        let mut sim = Simulation::new();
        sim.add_module("bad", ModuleKind::Compute, || {
            Err(SimError::module("bad", "boom"))
        });
        match sim.run() {
            Err(SimError::Module { module, detail }) => {
                assert_eq!(module, "bad");
                assert_eq!(detail, "boom");
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn module_panic_is_converted_to_error() {
        let mut sim = Simulation::new();
        sim.add_module("panics", ModuleKind::Compute, || panic!("oops"));
        match sim.run() {
            Err(SimError::Module { detail, .. }) => assert!(detail.contains("panicked")),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn empty_simulation_completes_immediately() {
        let report = Simulation::new().run().unwrap();
        assert!(report.modules.is_empty());
        assert_eq!(report.transfers, 0);
        assert!(report.channel_stats.is_empty());
    }

    #[test]
    fn report_carries_per_channel_statistics() {
        let mut sim = Simulation::new();
        let (tx, rx) = channel::<u32>(sim.ctx(), 4, "probed");
        sim.add_module("src", ModuleKind::Interface, move || tx.push_iter(0..100));
        sim.add_module("sink", ModuleKind::Compute, move || {
            rx.pop_n(100).map(|_| ())
        });
        let report = sim.run().unwrap();
        assert_eq!(report.channel_stats.len(), 1);
        let (name, stats) = &report.channel_stats[0];
        assert_eq!(name, "probed");
        assert_eq!(stats.transferred, 100);
        assert!(stats.max_occupancy <= 4);
    }

    #[test]
    fn tracer_collects_lanes_and_occupancy_series() {
        let tracer = Tracer::new();
        let mut sim = Simulation::new();
        sim.set_tracer(tracer.clone());
        let (tx, rx) = channel::<u64>(sim.ctx(), 2, "traced");
        sim.add_module("src", ModuleKind::Interface, move || tx.push_iter(0..5000));
        sim.add_module("sink", ModuleKind::Compute, move || {
            rx.pop_n(5000).map(|_| ())
        });
        sim.run().unwrap();

        let lanes = tracer.lanes();
        let mut modules: Vec<&str> = lanes.iter().map(|l| &*l.module).collect();
        modules.sort_unstable();
        assert_eq!(modules, ["sink", "src"]);
        let src = lanes.iter().find(|l| &*l.module == "src").unwrap();
        assert_eq!(src.pushes, 5000);
        // 5000 elements through a depth-2 FIFO outlives several 5 ms
        // watchdog polls, so the occupancy series exists. Run-summary
        // scalars moved to fblas-metrics; the tracer registry keeps only
        // the series-shaped data the Perfetto export needs.
        assert!(tracer.series().contains_key("occ:traced"));
        let metrics = tracer.metrics().snapshot();
        assert!(!metrics.counters.contains_key("sim.transfers"));
    }

    #[test]
    fn report_serializes_to_json() {
        let mut sim = Simulation::new();
        let (tx, rx) = channel::<u8>(sim.ctx(), 4, "ser");
        sim.add_module("src", ModuleKind::Interface, move || tx.push_iter(0..10));
        sim.add_module("sink", ModuleKind::Compute, move || {
            rx.pop_n(10).map(|_| ())
        });
        let report = sim.run().unwrap();
        let text = serde_json::to_string(&report).unwrap();
        assert!(text.contains("\"modules\""));
        assert!(text.contains("\"ser\""));
        assert!(text.contains("\"max_occupancy\""));
    }

    struct ModuleFaultHook {
        target: &'static str,
        fault: ModuleFault,
    }

    impl FaultHook for ModuleFaultHook {
        fn on_channel(&self, _: FaultSite, _: &str, _: u64) -> Option<FaultAction> {
            None
        }
        fn on_module_start(&self, module: &str) -> Option<ModuleFault> {
            (module == self.target).then_some(self.fault)
        }
    }

    #[test]
    fn injected_crash_surfaces_module_error_and_names_the_culprit() {
        let mut sim = Simulation::new();
        let ctx = sim.ctx().clone();
        ctx.arm_faults(Arc::new(ModuleFaultHook {
            target: "src",
            fault: ModuleFault::Crash,
        }));
        let (tx, rx) = channel::<u32>(sim.ctx(), 4, "ch_crash");
        sim.add_module("src", ModuleKind::Interface, move || tx.push_iter(0..100));
        sim.add_module("sink", ModuleKind::Compute, move || {
            rx.pop_n(100).map(|_| ())
        });
        match sim.run() {
            Err(SimError::Module { module, detail }) => {
                assert_eq!(module, "src");
                assert!(detail.contains("panicked"), "{detail}");
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(ctx.poison_cause(), Some("src".to_string()));
    }

    #[test]
    fn hang_fault_is_caught_by_the_run_deadline() {
        let mut sim = Simulation::new();
        let ctx = sim.ctx().clone();
        ctx.arm_faults(Arc::new(ModuleFaultHook {
            target: "sink",
            fault: ModuleFault::Hang,
        }));
        sim.set_deadline(Duration::from_millis(200));
        let (tx, rx) = channel::<u32>(sim.ctx(), 4, "ch_hang");
        sim.add_module("src", ModuleKind::Interface, move || tx.push_iter(0..100));
        sim.add_module("sink", ModuleKind::Compute, move || {
            rx.pop_n(100).map(|_| ())
        });
        match sim.run() {
            Err(SimError::Deadline { report }) => {
                // The hung sink holds its endpoints open without popping,
                // so the producer is channel-blocked on the full FIFO and
                // the forensics must say so.
                let p = report.blocked_on("src").expect("src in wait-for graph");
                assert_eq!(p.channel, "ch_hang");
                assert_eq!(p.direction, WaitDirection::Full);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn peer_of_a_panicking_module_sees_poisoned_with_the_culprit_named() {
        let mut sim = Simulation::new();
        let ctx = sim.ctx().clone();
        let (tx, rx) = channel::<u32>(sim.ctx(), 4, "ch_panic");
        sim.add_module("boom", ModuleKind::Compute, move || {
            tx.push(1)?;
            panic!("mid-stream failure");
        });
        sim.add_module("sink", ModuleKind::Compute, move || rx.pop_n(2).map(|_| ()));
        // The panicking module's error surfaces (the blocked peer's
        // `Poisoned` is discarded as a cascade), and the poison cause
        // names the panicker — not a stall, not a disconnect.
        match sim.run() {
            Err(SimError::Module { module, .. }) => assert_eq!(module, "boom"),
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(ctx.poison_cause(), Some("boom".to_string()));
    }

    #[test]
    fn count_mismatch_is_disconnect_not_stall() {
        // Producer sends fewer elements than the consumer expects: the
        // consumer must see a Disconnected error naming the channel.
        let mut sim = Simulation::new();
        let (tx, rx) = channel::<u8>(sim.ctx(), 8, "short");
        sim.add_module("src", ModuleKind::Interface, move || tx.push_iter(0..10));
        sim.add_module("sink", ModuleKind::Compute, move || {
            rx.pop_n(20).map(|_| ())
        });
        match sim.run() {
            Err(SimError::Disconnected { channel }) => assert_eq!(channel, "short"),
            other => panic!("unexpected: {other:?}"),
        }
    }
}
