//! Chunked (batched) stream access on top of the channel primitives.
//!
//! The hardware model moves one element per cycle, but the software
//! simulation pays a `Mutex`+`Condvar` round trip and a trace event per
//! transfer — so simulated wall-clock scales with lock traffic, not with
//! modeled cycles. [`ChunkReader`] and [`ChunkWriter`] amortize that cost
//! by moving [`default_chunk`] elements per lock acquisition while
//! presenting the same element-at-a-time interface to routine bodies,
//! which keeps arithmetic order (and therefore results) byte-identical.
//!
//! # Deadlock safety
//!
//! Chunked *reads* are always safe: [`Receiver::pop_chunk`] blocks only
//! until one element is available, then takes what is queued — a reader
//! never holds back elements the producer needs it to consume.
//!
//! Chunked *writes* buffer output locally, which is only safe when the
//! module holds no buffered output while blocked on an input that
//! (transitively) depends on that output being visible. The safe
//! patterns used in this codebase:
//!
//! - **relay**: pop a chunk, compute, push the whole result chunk before
//!   popping again (nothing is buffered while blocked on input);
//! - **flush at tile boundaries**: [`ChunkWriter::flush`] before any
//!   blocking read that a downstream consumer's progress depends on.
//!
//! Routines with *two* output streams consumed by independent readers
//! (e.g. `Swap`, `Rot`) keep element-wise interleaved pushes: batching
//! one output while the other's consumer is starved can deadlock when
//! FIFO depths are smaller than the chunk.
//!
//! `ChunkWriter` has no *blocking* `Drop` flush — a real flush can
//! block and fail, and neither is expressible in `drop`. Callers must
//! [`flush`](ChunkWriter::flush) explicitly. A writer dropped with
//! buffered elements (forgotten flush, or a panic unwinding through
//! the owning module) makes a non-blocking best-effort salvage via
//! [`Sender::try_push_chunk`] and prints a warning naming the channel
//! and how many elements could not be delivered — a silent truncated
//! stream is the one failure mode worse than a loud one.

use crate::channel::{Receiver, Sender};
use crate::error::SimError;

/// Default number of elements moved per lock acquisition.
pub const DEFAULT_CHUNK: usize = 256;

/// The configured chunk size: `FBLAS_CHUNK` if set to a positive
/// integer, [`DEFAULT_CHUNK`] otherwise.
///
/// Read from the environment on every call (not cached) so benchmarks
/// can sweep chunk sizes within one process. `FBLAS_CHUNK=1` degrades
/// every bulk helper to honest element-wise transfers. Delegates to
/// [`crate::env::chunk`], which warns once on an invalid value.
pub fn default_chunk() -> usize {
    crate::env::chunk()
}

/// Parse an `FBLAS_CHUNK`-style value; invalid or non-positive input
/// falls back to [`DEFAULT_CHUNK`].
pub fn parse_chunk(raw: Option<&str>) -> usize {
    raw.and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|n| *n >= 1)
        .unwrap_or(DEFAULT_CHUNK)
}

/// Element-at-a-time reader that refills from the channel in chunks.
///
/// `T: Copy` because refills move elements into an internal buffer and
/// hand out copies; every stream element in this codebase is a scalar.
pub struct ChunkReader<'a, T: Send + 'static> {
    rx: &'a Receiver<T>,
    buf: Vec<T>,
    pos: usize,
    chunk: usize,
}

impl<'a, T: Copy + Send + 'static> ChunkReader<'a, T> {
    /// Reader over `rx` using the configured [`default_chunk`] size.
    pub fn new(rx: &'a Receiver<T>) -> Self {
        Self::with_chunk(rx, default_chunk())
    }

    /// Reader over `rx` with an explicit chunk size (≥ 1).
    pub fn with_chunk(rx: &'a Receiver<T>, chunk: usize) -> Self {
        let chunk = chunk.max(1);
        ChunkReader {
            rx,
            buf: Vec::with_capacity(chunk),
            pos: 0,
            chunk,
        }
    }

    /// Next element, refilling from the channel when the local buffer
    /// is exhausted. Semantically identical to `rx.pop()` per element.
    ///
    /// Not an [`Iterator`]: disconnect is an error to propagate with
    /// `?`, never an expected end-of-stream.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn next(&mut self) -> Result<T, SimError> {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
            self.rx.pop_chunk(&mut self.buf, self.chunk)?;
        }
        let v = self.buf[self.pos];
        self.pos += 1;
        Ok(v)
    }
}

/// Element-at-a-time writer that flushes to the channel in chunks.
///
/// `T: Send + 'static` (already required to construct the channel) so
/// the drop salvage can attempt a non-blocking delivery of the tail.
pub struct ChunkWriter<'a, T: Send + 'static> {
    tx: &'a Sender<T>,
    buf: Vec<T>,
    chunk: usize,
}

impl<'a, T: Send + 'static> ChunkWriter<'a, T> {
    /// Writer into `tx` using the configured [`default_chunk`] size.
    pub fn new(tx: &'a Sender<T>) -> Self {
        Self::with_chunk(tx, default_chunk())
    }

    /// Writer into `tx` with an explicit chunk size (≥ 1).
    pub fn with_chunk(tx: &'a Sender<T>, chunk: usize) -> Self {
        let chunk = chunk.max(1);
        ChunkWriter {
            tx,
            buf: Vec::with_capacity(chunk),
            chunk,
        }
    }

    /// Buffer one element, pushing the whole chunk once full.
    #[inline]
    pub fn push(&mut self, value: T) -> Result<(), SimError> {
        self.buf.push(value);
        if self.buf.len() >= self.chunk {
            self.tx.push_chunk(&mut self.buf)?;
        }
        Ok(())
    }

    /// Push any buffered elements now. Must be called before a blocking
    /// read that downstream progress depends on, and once at the end of
    /// the stream (see module docs on deadlock safety).
    pub fn flush(&mut self) -> Result<(), SimError> {
        self.tx.push_chunk(&mut self.buf)
    }
}

impl<T: Send + 'static> Drop for ChunkWriter<'_, T> {
    /// Flush-or-warn: a writer dropped with buffered elements attempts
    /// a non-blocking salvage and reports anything that could not be
    /// delivered. Blocking or panicking here is off the table (drop
    /// runs during unwinding), so a full FIFO still loses the tail —
    /// but loudly, with the channel named, instead of silently.
    fn drop(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let buffered = self.buf.len();
        let unwinding = std::thread::panicking();
        let _ = self.tx.try_push_chunk(&mut self.buf);
        let context = if unwinding {
            "dropped during panic unwind"
        } else {
            "dropped without flush()"
        };
        if self.buf.is_empty() {
            eprintln!(
                "fblas: warning: ChunkWriter for channel `{}` {context} with {buffered} buffered element(s); delivered best-effort",
                self.tx.name(),
            );
        } else {
            eprintln!(
                "fblas: warning: ChunkWriter for channel `{}` {context}; {} of {buffered} buffered element(s) lost",
                self.tx.name(),
                self.buf.len(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{channel, SimContext};
    use std::thread;

    #[test]
    fn parse_chunk_accepts_positive_integers_only() {
        assert_eq!(parse_chunk(None), DEFAULT_CHUNK);
        assert_eq!(parse_chunk(Some("16")), 16);
        assert_eq!(parse_chunk(Some(" 1 ")), 1);
        assert_eq!(parse_chunk(Some("0")), DEFAULT_CHUNK);
        assert_eq!(parse_chunk(Some("-4")), DEFAULT_CHUNK);
        assert_eq!(parse_chunk(Some("2.5")), DEFAULT_CHUNK);
        assert_eq!(parse_chunk(Some("lots")), DEFAULT_CHUNK);
        assert_eq!(parse_chunk(Some("")), DEFAULT_CHUNK);
    }

    #[test]
    fn reader_yields_the_exact_element_sequence() {
        let ctx = SimContext::new();
        let (tx, rx) = channel::<u32>(&ctx, 8, "ch");
        thread::scope(|s| {
            s.spawn(move || tx.push_iter(0..1000).unwrap());
            let mut reader = ChunkReader::with_chunk(&rx, 7);
            for want in 0..1000 {
                assert_eq!(reader.next().unwrap(), want);
            }
        });
    }

    #[test]
    fn reader_reports_disconnect_at_end_of_stream() {
        let ctx = SimContext::new();
        let (tx, rx) = channel::<u32>(&ctx, 8, "ch_end");
        tx.push_slice(&[1, 2]).unwrap();
        drop(tx);
        let mut reader = ChunkReader::new(&rx);
        assert_eq!(reader.next().unwrap(), 1);
        assert_eq!(reader.next().unwrap(), 2);
        assert!(matches!(reader.next(), Err(SimError::Disconnected { .. })));
    }

    #[test]
    fn writer_flushes_full_chunks_and_explicit_tail() {
        let ctx = SimContext::new();
        let (tx, rx) = channel::<u32>(&ctx, 64, "ch");
        let mut writer = ChunkWriter::with_chunk(&tx, 4);
        for v in 0..10 {
            writer.push(v).unwrap();
        }
        // Two full chunks of 4 are visible; the tail of 2 is buffered.
        let mut got = Vec::new();
        rx.pop_chunk(&mut got, 64).unwrap();
        assert_eq!(got.len(), 8);
        writer.flush().unwrap();
        rx.pop_chunk(&mut got, 64).unwrap();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn dropped_writer_salvages_the_buffered_tail_when_it_fits() {
        let ctx = SimContext::new();
        let (tx, rx) = channel::<u32>(&ctx, 8, "ch_drop");
        {
            let mut writer = ChunkWriter::with_chunk(&tx, 16);
            for v in 0..5 {
                writer.push(v).unwrap();
            }
            // No flush: drop must deliver the tail best-effort (and
            // warn on stderr).
        }
        drop(tx);
        assert_eq!(rx.drain().unwrap(), vec![0, 1, 2, 3, 4]);
    }
}
