//! `fblas-env`: render the documented `FBLAS_*` environment-knob table.
//!
//! ```text
//! fblas-env --list    # markdown table with current values (default)
//! fblas-env --json    # machine-readable dump
//! ```
//!
//! The table is [`fblas_hlssim::env::KNOBS`] — the same source the
//! sync test checks against the reader functions — so this bin cannot
//! drift from what the simulator actually honors.

use fblas_hlssim::env::KNOBS;
use serde::Value;

fn current(name: &str) -> Option<String> {
    std::env::var(name).ok()
}

fn print_list() {
    println!("| variable | meaning | default | read | current |");
    println!("|---|---|---|---|---|");
    for k in KNOBS {
        let cur = current(k.name).unwrap_or_else(|| "(unset)".to_string());
        println!(
            "| `{}` | {} | {} | per {} | {} |",
            k.name, k.meaning, k.default, k.cadence, cur
        );
    }
}

fn print_json() {
    let rows: Vec<Value> = KNOBS
        .iter()
        .map(|k| {
            Value::Object(vec![
                ("name".to_string(), Value::Str(k.name.to_string())),
                ("meaning".to_string(), Value::Str(k.meaning.to_string())),
                ("default".to_string(), Value::Str(k.default.to_string())),
                ("cadence".to_string(), Value::Str(k.cadence.to_string())),
                (
                    "current".to_string(),
                    match current(k.name) {
                        Some(v) => Value::Str(v),
                        None => Value::Null,
                    },
                ),
            ])
        })
        .collect();
    let doc = Value::Object(vec![("knobs".to_string(), Value::Array(rows))]);
    println!(
        "{}",
        serde_json::to_string_pretty(&doc).expect("knob table serializes")
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None | Some("--list") => print_list(),
        Some("--json") => print_json(),
        Some(other) => {
            eprintln!("fblas-env: unknown option `{other}` (use --list or --json)");
            std::process::exit(2);
        }
    }
}
