//! Resource & latency estimation for synthesized circuits.
//!
//! The paper's Table I establishes an (empirically) linear relationship
//! between the *circuit work* `CW` of a module's inner loop and its
//! computational resource consumption, with coefficients measured from the
//! Intel FPGA Offline Compiler v19.1 targeting a Stratix 10:
//!
//! * SCAL-class (map):        `LUT = 49·CW`, `FF = 96·CW`, `DSP = CW`,
//!   latency constant at 50 cycles;
//! * DOT-class (map-reduce):  `LUT ≈ 18·CW (+ ~100)`, `FF ≈ 40·CW (+ ~32)`,
//!   `DSP = CW/2`, latency growing by ~4 cycles per doubling of `W`.
//!
//! This module implements exactly that linear model (the paper's point is
//! that work/depth analysis *qualitatively correlates* circuit
//! characteristics and resources; the constants are tool- and
//! device-specific). Double precision costs are scaled by
//! [`Precision::dsps_per_op`] / [`Precision::logic_factor`] per Sec. VI-B.

use serde::{Deserialize, Serialize};

use crate::device::Device;
use crate::precision::Precision;
use crate::resources::{m20ks_for_buffer, Resources};
use crate::workdepth::ceil_log2;

/// Latency (cycles) of a hardened floating-point addition on the modeled
/// devices (paper Sec. IV-A: "the latency for both addition and
/// multiplication is 6 clock cycles").
pub const ADD_LATENCY: u64 = 6;
/// Latency (cycles) of a hardened floating-point multiplication.
pub const MUL_LATENCY: u64 = 6;

/// Fixed pipeline overhead of a map-class module beyond the arithmetic
/// latency; calibrated so SCAL reports the constant 50-cycle latency of
/// Table I.
const MAP_PIPELINE_OVERHEAD: u64 = 44;
/// Base latency of a reduce-class module at `W = 2`; Table I DOT row.
const REDUCE_BASE_LATENCY: u64 = 78;
/// Extra latency per doubling of the reduction width (one adder level
/// plus retiming registers); Table I shows ≈ 3–4 cycles per doubling.
const REDUCE_LATENCY_PER_LEVEL: u64 = 4;

/// Per-lane LUT cost of a map lane (one multiplier), Table I SCAL: 49·CW.
const MAP_LUT_PER_OP: u64 = 49;
/// Per-lane FF cost of a map lane, Table I SCAL: 96·CW.
const MAP_FF_PER_OP: u64 = 96;
/// Per-CW LUT cost of a reduce circuit, Table I DOT fit: 18·CW + 100.
const REDUCE_LUT_PER_CW: u64 = 18;
const REDUCE_LUT_BASE: u64 = 100;
/// Per-CW FF cost of a reduce circuit, Table I DOT fit: 40·CW + 32.
const REDUCE_FF_PER_CW: u64 = 40;
const REDUCE_FF_BASE: u64 = 32;

/// Cost of one floating-point operator instance in soft logic + DSPs.
///
/// The mul/add costs are derived from Table I; divide and square-root are
/// not exercised by the paper's scaling study and use representative Intel
/// FP IP core figures (they appear only in ROTG/NRM2/TRSV/TRSM control
/// paths, never replicated `W` times).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCosts {
    /// Look-up tables.
    pub luts: u64,
    /// Flip-flops.
    pub ffs: u64,
    /// DSP blocks.
    pub dsps: u64,
    /// Operator latency in cycles.
    pub latency: u64,
}

impl OpCosts {
    /// Hardened multiply.
    pub fn mul(p: Precision) -> Self {
        scale_op(
            OpCosts {
                luts: MAP_LUT_PER_OP,
                ffs: MAP_FF_PER_OP,
                dsps: 1,
                latency: MUL_LATENCY,
            },
            p,
        )
    }

    /// Hardened add.
    pub fn add(p: Precision) -> Self {
        scale_op(
            OpCosts {
                luts: 20,
                ffs: 40,
                dsps: 1,
                latency: ADD_LATENCY,
            },
            p,
        )
    }

    /// Fused multiply-accumulate lane as laid down in a reduction tree:
    /// one DSP starts one add and one mul per cycle (Sec. IV-A), so a
    /// mul+add pair costs a single DSP in single precision.
    pub fn mac(p: Precision) -> Self {
        scale_op(
            OpCosts {
                luts: 2 * REDUCE_LUT_PER_CW,
                ffs: 2 * REDUCE_FF_PER_CW,
                dsps: 1,
                latency: MUL_LATENCY + ADD_LATENCY,
            },
            p,
        )
    }

    /// Floating-point divide (iterative IP core).
    pub fn div(p: Precision) -> Self {
        scale_op(
            OpCosts {
                luts: 400,
                ffs: 800,
                dsps: 2,
                latency: 28,
            },
            p,
        )
    }

    /// Floating-point square root (iterative IP core).
    pub fn sqrt(p: Precision) -> Self {
        scale_op(
            OpCosts {
                luts: 300,
                ffs: 600,
                dsps: 2,
                latency: 28,
            },
            p,
        )
    }
}

fn scale_op(base: OpCosts, p: Precision) -> OpCosts {
    let lf = p.logic_factor();
    OpCosts {
        luts: (base.luts as f64 * lf).round() as u64,
        ffs: (base.ffs as f64 * lf).round() as u64,
        dsps: base.dsps * p.dsps_per_op(),
        latency: base.latency,
    }
}

/// Shape of a module's inner-loop circuit, for estimation purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CircuitClass {
    /// Independent lanes (SCAL, AXPY, COPY, GER, SYR, ROT, …):
    /// `W` lanes each performing `ops_per_lane` chained mul-class ops.
    Map {
        /// Vectorization width.
        w: u64,
        /// Arithmetic operations per lane (1 for SCAL/COPY, 2 for AXPY/ROT
        /// counting the multiply and the add).
        ops_per_lane: u64,
    },
    /// W-way multiply + adder-tree reduction with accumulator (DOT, GEMV
    /// inner loop, NRM2, ASUM, …).
    MapReduce {
        /// Vectorization width.
        w: u64,
    },
    /// Independent lanes of fused multiply-accumulate pairs (AXPY, ROT,
    /// GER update lanes): each mul+add pair occupies one DSP, as the
    /// hardened DSPs start one addition and one multiplication per cycle
    /// (Sec. IV-A).
    MapFused {
        /// Vectorization width.
        w: u64,
        /// Fused mul+add pairs per lane (1 for AXPY, 2 for ROT).
        macs_per_lane: u64,
    },
    /// 2D systolic array of MAC processing elements (GEMM, SYRK, …).
    Systolic {
        /// PE rows.
        rows: u64,
        /// PE columns.
        cols: u64,
    },
}

/// Estimated resources and pipeline latency of a circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceEstimate {
    /// Raw LUT count (Table I reports LUTs; ALM occupancy in
    /// [`resources`](Self::resources) is derived from it).
    pub luts: u64,
    /// Aggregated resource vector (ALMs derived from LUTs).
    pub resources: Resources,
    /// Pipeline latency `L` (the circuit depth `CD` plus fixed overhead).
    pub latency: u64,
}

impl ResourceEstimate {
    fn from_parts(luts: u64, ffs: u64, m20ks: u64, dsps: u64, latency: u64) -> Self {
        ResourceEstimate {
            luts,
            resources: Resources::from_luts(luts, ffs, m20ks, dsps),
            latency,
        }
    }

    /// Sum of two estimates; latency is the max (parallel composition).
    pub fn merge(self, other: ResourceEstimate) -> ResourceEstimate {
        ResourceEstimate {
            luts: self.luts + other.luts,
            resources: self.resources + other.resources,
            latency: self.latency.max(other.latency),
        }
    }

    /// Add on-chip buffer storage (tiles, shift registers) to the estimate.
    pub fn with_buffer(mut self, elements: u64, precision: Precision) -> ResourceEstimate {
        self.resources.m20ks += m20ks_for_buffer(elements, precision.elem_bytes());
        self
    }
}

/// Estimate the computational circuit of a module's inner loop.
///
/// This is the `CW`→resources mapping of Sec. IV-A with the calibrated
/// Table I coefficients; buffers and interface modules are added
/// separately.
pub fn estimate_circuit(class: CircuitClass, precision: Precision) -> ResourceEstimate {
    let lf = precision.logic_factor();
    let dsp_mult = precision.dsps_per_op();
    match class {
        CircuitClass::Map { w, ops_per_lane } => {
            let cw = w * ops_per_lane;
            let luts = (MAP_LUT_PER_OP as f64 * cw as f64 * lf).round() as u64;
            let ffs = (MAP_FF_PER_OP as f64 * cw as f64 * lf).round() as u64;
            let dsps = cw * dsp_mult;
            let latency = MAP_PIPELINE_OVERHEAD + MUL_LATENCY * ops_per_lane.max(1);
            ResourceEstimate::from_parts(luts, ffs, 0, dsps, latency)
        }
        CircuitClass::MapReduce { w } => {
            let cw = 2 * w; // W multiplies + W-1 adds + accumulate
            let luts = (((REDUCE_LUT_PER_CW * cw) + REDUCE_LUT_BASE) as f64 * lf).round() as u64;
            let ffs = (((REDUCE_FF_PER_CW * cw) + REDUCE_FF_BASE) as f64 * lf).round() as u64;
            let dsps = (cw / 2).max(1) * dsp_mult;
            let levels = if w > 1 { ceil_log2(w) } else { 1 };
            let latency = REDUCE_BASE_LATENCY + REDUCE_LATENCY_PER_LEVEL * levels;
            // Non-native (double) accumulation needs the two-stage
            // interleaved accumulator of Sec. III-A: extra buffering.
            let m20ks = if precision.native_accumulation() {
                0
            } else {
                2
            };
            ResourceEstimate::from_parts(luts, ffs, m20ks, dsps, latency)
        }
        CircuitClass::MapFused { w, macs_per_lane } => {
            let macs = w * macs_per_lane;
            let mac = OpCosts::mac(precision);
            let latency =
                MAP_PIPELINE_OVERHEAD + (MUL_LATENCY + ADD_LATENCY) * macs_per_lane.max(1);
            ResourceEstimate::from_parts(
                mac.luts * macs,
                mac.ffs * macs,
                0,
                mac.dsps * macs,
                latency,
            )
        }
        CircuitClass::Systolic { rows, cols } => {
            let pes = rows * cols;
            // One MAC per PE per cycle plus forwarding registers; the
            // constant-fan-out systolic structure keeps per-PE logic small
            // (Sec. III-C).
            let mac = OpCosts::mac(precision);
            let per_pe_luts = mac.luts + 30; // forwarding mux/control
            let per_pe_ffs = mac.ffs + 120; // A/B forwarding registers
            let luts = per_pe_luts * pes;
            let ffs = per_pe_ffs * pes;
            let dsps = mac.dsps * pes;
            // Feeding/draining shift registers span the array edges.
            let latency = MUL_LATENCY + ADD_LATENCY + rows + cols;
            ResourceEstimate::from_parts(luts, ffs, 0, dsps, latency)
        }
    }
}

/// Resources of one DRAM interface module (read/write helper kernel) at
/// vectorization width `w`: address generation, burst buffering, and the
/// width conversion between the memory bus and the stream.
pub fn interface_module(precision: Precision, w: u64) -> Resources {
    let burst_buffer = m20ks_for_buffer(2 * 512, precision.elem_bytes());
    Resources::from_luts(900 + 8 * w, 1_800 + 16 * w, burst_buffer, 0)
}

/// Fixed per-design overhead: clock/reset infrastructure, the OpenCL
/// kernel scaffolding, and — on HyperFlex devices — the pervasive
/// retiming registers that raise logic and BRAM utilization (Sec. VI-B:
/// "Stratix designs can achieve higher frequency but also a higher logic
/// and BRAM utilization"). Calibrated against the Table III deltas
/// between the Arria and Stratix rows of the same module.
pub fn design_overhead(device: Device, hyperflex_enabled: bool) -> Resources {
    match device {
        Device::Arria10Gx1150 => Resources::new(4_000, 8_000, 0, 0),
        Device::Stratix10Gx2800 => {
            if hyperflex_enabled {
                Resources::new(110_000, 350_000, 900, 0)
            } else {
                Resources::new(30_000, 90_000, 200, 0)
            }
        }
        // Vitis platform shell overhead (future-work device; datasheet
        // class figure, no paper calibration).
        Device::AlveoU280 => Resources::new(50_000, 120_000, 300, 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Table I, SCAL rows: exact reproduction.
    #[test]
    fn table1_scal_exact() {
        for (w, luts, ffs, dsps) in [
            (2u64, 98u64, 192u64, 2u64),
            (4, 196, 384, 4),
            (8, 392, 768, 8),
            (16, 784, 1536, 16),
            (32, 1568, 3072, 32),
            (64, 3136, 6144, 64),
        ] {
            let e = estimate_circuit(CircuitClass::Map { w, ops_per_lane: 1 }, Precision::Single);
            assert_eq!(e.luts, luts, "W={w}");
            assert_eq!(e.resources.ffs, ffs, "W={w}");
            assert_eq!(e.resources.dsps, dsps, "W={w}");
            assert_eq!(e.latency, 50, "W={w}: SCAL latency is constant");
        }
    }

    /// Paper Table I, DOT rows: within 7% on LUT/FF, exact on DSP,
    /// within 4 cycles on latency.
    #[test]
    fn table1_dot_within_tolerance() {
        for (w, luts, ffs, dsps, lat) in [
            (2u64, 174u64, 192u64, 2u64, 82u64),
            (4, 242, 320, 4, 85),
            (8, 378, 640, 8, 89),
            (16, 650, 1280, 16, 93),
            (32, 1194, 2560, 32, 97),
            (64, 2474, 5120, 64, 105),
        ] {
            let e = estimate_circuit(CircuitClass::MapReduce { w }, Precision::Single);
            let lut_err = (e.luts as f64 - luts as f64).abs() / luts as f64;
            let ff_err = (e.resources.ffs as f64 - ffs as f64).abs() / ffs as f64;
            assert!(lut_err < 0.07, "W={w}: LUT {} vs paper {luts}", e.luts);
            assert!(
                ff_err < 0.12,
                "W={w}: FF {} vs paper {ffs}",
                e.resources.ffs
            );
            assert_eq!(e.resources.dsps, dsps, "W={w}");
            assert!(
                (e.latency as i64 - lat as i64).unsigned_abs() <= 4,
                "W={w}: latency {} vs paper {lat}",
                e.latency
            );
        }
    }

    #[test]
    fn dot_latency_grows_logarithmically() {
        let l32 = estimate_circuit(CircuitClass::MapReduce { w: 32 }, Precision::Single).latency;
        let l64 = estimate_circuit(CircuitClass::MapReduce { w: 64 }, Precision::Single).latency;
        let l128 = estimate_circuit(CircuitClass::MapReduce { w: 128 }, Precision::Single).latency;
        assert_eq!(l64 - l32, REDUCE_LATENCY_PER_LEVEL);
        assert_eq!(l128 - l64, REDUCE_LATENCY_PER_LEVEL);
    }

    #[test]
    fn double_precision_uses_4x_dsps_and_more_logic() {
        let s = estimate_circuit(CircuitClass::MapReduce { w: 16 }, Precision::Single);
        let d = estimate_circuit(CircuitClass::MapReduce { w: 16 }, Precision::Double);
        assert_eq!(d.resources.dsps, 4 * s.resources.dsps);
        assert!(
            d.luts > 8 * s.luts,
            "f64 logic should be ~an order of magnitude up"
        );
        assert!(
            d.resources.m20ks > 0,
            "f64 accumulation needs interleaving buffers"
        );
    }

    #[test]
    fn systolic_dsps_equal_pe_count_in_single_precision() {
        let e = estimate_circuit(
            CircuitClass::Systolic { rows: 40, cols: 80 },
            Precision::Single,
        );
        assert_eq!(e.resources.dsps, 3_200);
        // Latency includes the feed/drain wavefront across the array.
        assert!(e.latency > 120);
    }

    #[test]
    fn ddot_width_128_fits_but_256_probably_does_not_on_stratix() {
        // Paper Sec. VI-B: "for double precision the compiler is able to
        // place and route designs with a maximum width of 128".
        let dev = Device::Stratix10Gx2800.model();
        let overhead = design_overhead(Device::Stratix10Gx2800, true);
        let w128 = estimate_circuit(CircuitClass::MapReduce { w: 128 }, Precision::Double);
        let demand128 = w128.resources + overhead + interface_module(Precision::Double, 128) * 3;
        assert!(dev.fits(&demand128), "DDOT W=128 must fit: {demand128}");
    }

    #[test]
    fn buffer_attachment_adds_m20ks() {
        let e = estimate_circuit(CircuitClass::MapReduce { w: 16 }, Precision::Single)
            .with_buffer(1024 * 1024, Precision::Single);
        assert!(e.resources.m20ks >= 1639);
    }

    #[test]
    fn merge_sums_resources_takes_max_latency() {
        let a = estimate_circuit(
            CircuitClass::Map {
                w: 4,
                ops_per_lane: 1,
            },
            Precision::Single,
        );
        let b = estimate_circuit(CircuitClass::MapReduce { w: 4 }, Precision::Single);
        let m = a.merge(b);
        assert_eq!(m.luts, a.luts + b.luts);
        assert_eq!(m.latency, a.latency.max(b.latency));
    }

    #[test]
    fn op_costs_scale_with_precision() {
        let ms = OpCosts::mul(Precision::Single);
        let md = OpCosts::mul(Precision::Double);
        assert_eq!(md.dsps, 4);
        assert!(md.luts > ms.luts * 10);
        assert!(OpCosts::div(Precision::Single).latency > OpCosts::add(Precision::Single).latency);
        assert!(OpCosts::sqrt(Precision::Single).dsps >= 2);
        assert_eq!(OpCosts::mac(Precision::Single).dsps, 1);
    }
}
