//! Board power model.
//!
//! The paper measures whole-board power with the vendor's `aocl` utility
//! (Table III: Arria designs draw ≈47–52 W, Stratix designs ≈67–70 W) and
//! compares against CPU package+DRAM power of ≈60–88 W measured with
//! Mammut, noting the FPGA board uses up to ~30% less power than the CPU
//! for the measured workloads (Sec. VI-D).
//!
//! We model board power as a device-specific static floor plus small
//! per-resource dynamic contributions, fitted to the Table III rows. The
//! absolute numbers are approximate by nature; what the reproduction
//! preserves is the ordering (FPGA below CPU) and the mild growth with
//! design size.

use serde::{Deserialize, Serialize};

use crate::device::Device;
use crate::resources::Resources;

/// Dynamic power per active DSP block, watts.
const W_PER_DSP: f64 = 0.0012;
/// Dynamic power per M20K block, watts.
const W_PER_M20K: f64 = 0.0006;
/// Dynamic power per ALM, watts.
const W_PER_ALM: f64 = 1.4e-5;
/// Dynamic power per flip-flop, watts.
const W_PER_FF: f64 = 8.0e-7;

/// Representative CPU package+DRAM power for the paper's host
/// (Xeon E5-2630 v4, 10 cores) under load, watts (Table IV–VI: 59–88 W).
pub const CPU_LOAD_POWER_W: f64 = 80.0;

/// Power model for one FPGA board.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    device: Device,
}

impl PowerModel {
    /// Model for the given device's board.
    pub fn new(device: Device) -> Self {
        PowerModel { device }
    }

    /// Static board floor (FPGA static power, DDR, board peripherals).
    pub fn static_power_w(&self) -> f64 {
        match self.device {
            Device::Arria10Gx1150 => 45.0,
            Device::Stratix10Gx2800 => 63.0,
            // Alveo U280 passive board TDP floor (datasheet class).
            Device::AlveoU280 => 60.0,
        }
    }

    /// Total board power for a configured design, watts.
    pub fn board_power_w(&self, used: &Resources) -> f64 {
        self.static_power_w()
            + used.dsps as f64 * W_PER_DSP
            + used.m20ks as f64 * W_PER_M20K
            + used.alms as f64 * W_PER_ALM
            + used.ffs as f64 * W_PER_FF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arria_designs_land_in_table3_range() {
        // Table III Arria rows: 47.3–52.1 W.
        let p = PowerModel::new(Device::Arria10Gx1150);
        let sdot = Resources::new(9_756, 15_620, 1, 331);
        let w = p.board_power_w(&sdot);
        assert!((45.0..52.0).contains(&w), "SDOT power {w}");
        let sgemm = Resources::new(102_400, 263_600, 1_970, 1_086);
        let w = p.board_power_w(&sgemm);
        assert!((47.0..56.0).contains(&w), "SGEMM power {w}");
    }

    #[test]
    fn stratix_designs_land_in_table3_range() {
        // Table III Stratix rows: 67.5–70.5 W.
        let p = PowerModel::new(Device::Stratix10Gx2800);
        let sdot = Resources::new(123_100, 386_300, 1_028, 328);
        let w = p.board_power_w(&sdot);
        assert!((63.0..72.0).contains(&w), "SDOT power {w}");
        let sgemm = Resources::new(328_500, 1_031_000, 7_767, 3_270);
        let w = p.board_power_w(&sgemm);
        assert!((65.0..78.0).contains(&w), "SGEMM power {w}");
    }

    #[test]
    fn bigger_designs_draw_more_power() {
        let p = PowerModel::new(Device::Stratix10Gx2800);
        let small = Resources::new(10_000, 20_000, 100, 100);
        let big = Resources::new(400_000, 1_000_000, 8_000, 4_000);
        assert!(p.board_power_w(&big) > p.board_power_w(&small));
    }

    #[test]
    fn fpga_board_below_cpu_package() {
        // The Sec. VI-D claim: up to ~30% less power than the CPU.
        let p = PowerModel::new(Device::Stratix10Gx2800);
        let typical = Resources::new(150_000, 400_000, 1_200, 500);
        assert!(p.board_power_w(&typical) < CPU_LOAD_POWER_W);
    }

    #[test]
    fn empty_design_draws_static_floor() {
        let p = PowerModel::new(Device::Arria10Gx1150);
        assert_eq!(p.board_power_w(&Resources::ZERO), p.static_power_w());
    }
}
