//! # fblas-arch — FPGA architecture models
//!
//! Software models of everything the FBLAS paper (De Matteis et al.,
//! SC 2020) obtains from hardware or vendor tooling:
//!
//! * [`device`] — the two evaluation boards (Intel Arria 10 GX 1150 and
//!   Stratix 10 GX 2800) with total and BSP-available resources
//!   (paper Table II).
//! * [`resources`] — resource vectors (ALM/FF/M20K/DSP), accounting, and
//!   the fit check that reproduces the paper's "compiler fails placement"
//!   limits (e.g. DDOT capped at W = 128).
//! * [`workdepth`] — the work & depth model of Sec. IV-A: application
//!   work/depth and circuit work/depth for map and map-reduce circuits,
//!   plus the optimal-vectorization-width formulas of Sec. IV-B.
//! * [`estimator`] — circuit work → LUT/FF/DSP/M20K estimates using the
//!   linear coefficients the paper reports in Table I.
//! * [`frequency`] — achieved clock frequency per device and routine
//!   class, including the Stratix 10 HyperFlex uplift.
//! * [`power`] — board power model fitted to the paper's Table III.
//! * [`memory`] — DDR bank model with optional interleaving and
//!   bank-sharing contention (the effect behind the AXPYDOT anomaly in
//!   Fig. 11).
//! * [`roofline`] — attainable throughput given compute and bandwidth
//!   ceilings, used for the "expected performance" bars of Fig. 10.
//!
//! All constants are calibrated against the numbers printed in the paper
//! and carry the table/section they come from in their doc comments.

#![warn(missing_docs)]

pub mod device;
pub mod estimator;
pub mod frequency;
pub mod memory;
pub mod power;
pub mod precision;
pub mod resources;
pub mod roofline;
pub mod workdepth;

pub use device::{Device, DeviceModel};
pub use estimator::{
    design_overhead, estimate_circuit, interface_module, CircuitClass, OpCosts, ResourceEstimate,
};
pub use frequency::{FrequencyModel, RoutineClass};
pub use memory::{BankAssignment, MemorySystem};
pub use power::PowerModel;
pub use precision::Precision;
pub use resources::Resources;
pub use roofline::attainable_flops;
pub use workdepth::{optimal_width, optimal_width_tiled, WorkDepth};
