//! Work & depth model (paper Sec. IV-A) and optimal circuit dimensioning
//! (paper Sec. IV-B).
//!
//! The *application* work/depth (`AW`, `AD`) characterize the algorithm;
//! the *circuit* work/depth (`CW`, `CD`) characterize the unrolled inner
//! loop that is synthesized into hardware: `CW` is proportional to the
//! computational resources consumed, `CD` is the pipeline latency.
//!
//! For the two circuit shapes appearing in FBLAS:
//!
//! * **map** (SCAL, AXPY, GER, SYR, …): `CW = W · ops_per_lane`,
//!   `CD = Σ op latencies` of one lane (independent lanes).
//! * **map-reduce** (DOT, GEMV, TRSV, GEMM, …): `CW = 2W` (W multiplies +
//!   W−1 adds + 1 accumulate), `CD = log2(W)·L_A + L_M`.

use crate::precision::Precision;

/// A (work, depth) pair, in operations and cycles respectively.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkDepth {
    /// Total number of operations.
    pub work: u64,
    /// Length of the longest dependency chain, in cycles.
    pub depth: u64,
}

impl WorkDepth {
    /// Application work/depth of an N-element map with per-element
    /// operation latency `op_latency` (e.g. SCAL: `AW = N`, `AD = L_M`).
    pub fn map_application(n: u64, op_latency: u64) -> Self {
        WorkDepth {
            work: n,
            depth: op_latency,
        }
    }

    /// Application work/depth of an N-element reduction-style computation
    /// (e.g. DOT: `AW = 2N − 1`, `AD = log2(N)·L_A + L_M`).
    pub fn reduce_application(n: u64, add_latency: u64, mul_latency: u64) -> Self {
        let depth = if n == 0 {
            0
        } else {
            ceil_log2(n) * add_latency + mul_latency
        };
        WorkDepth {
            work: (2 * n).saturating_sub(1),
            depth,
        }
    }

    /// Circuit work/depth of a W-wide *map* inner loop performing
    /// `ops_per_lane` chained operations of latency `lane_latency` total.
    pub fn map_circuit(w: u64, ops_per_lane: u64, lane_latency: u64) -> Self {
        WorkDepth {
            work: w * ops_per_lane,
            depth: lane_latency,
        }
    }

    /// Circuit work/depth of a W-wide *map-reduce* inner loop:
    /// `CW = 2W`, `CD = log2(W)·L_A + L_M`.
    pub fn reduce_circuit(w: u64, add_latency: u64, mul_latency: u64) -> Self {
        let depth = if w <= 1 {
            mul_latency
        } else {
            ceil_log2(w) * add_latency + mul_latency
        };
        WorkDepth { work: 2 * w, depth }
    }
}

/// Ceiling of log2 for positive integers; `ceil_log2(1) == 0`.
pub fn ceil_log2(n: u64) -> u64 {
    assert!(n > 0, "log2 of zero");
    64 - (n - 1).leading_zeros() as u64
}

/// Optimal vectorization width for an *untiled* streaming module
/// (paper Sec. IV-B): `W = ceil(B / (k·S·F))` where `B` is the arrival
/// bandwidth in bytes/s, `k` the operands consumed per clock per lane
/// (1 for SCAL, 2 for DOT), `S` the element size, `F` the clock frequency.
///
/// The returned width is rounded up to the next power of two, as widths
/// are powers of two in the paper's designs (Table I, Fig. 10).
pub fn optimal_width(
    bandwidth: f64,
    freq_hz: f64,
    precision: Precision,
    operands_per_lane: u64,
) -> u64 {
    assert!(bandwidth >= 0.0 && freq_hz > 0.0 && operands_per_lane > 0);
    let s = precision.elem_bytes() as f64;
    let w = (bandwidth / (operands_per_lane as f64 * s * freq_hz)).ceil() as u64;
    w.max(1).next_power_of_two()
}

/// Optimal vectorization width for a *tiled* Level-2 module (paper
/// Sec. IV-B): `W = ceil(B·T / (F·S·(1+T)))` with `T = T_N·T_M` the tile
/// element count. As `T → ∞` this approaches `B/(F·S)` — double the
/// untiled two-operand width, because the vector operand is reused from
/// on-chip memory and only the matrix stream consumes bandwidth.
pub fn optimal_width_tiled(
    bandwidth: f64,
    freq_hz: f64,
    precision: Precision,
    tile_elems: u64,
) -> u64 {
    assert!(bandwidth >= 0.0 && freq_hz > 0.0 && tile_elems > 0);
    let s = precision.elem_bytes() as f64;
    let t = tile_elems as f64;
    let w = (bandwidth * t / (freq_hz * s * (1.0 + t))).ceil() as u64;
    w.max(1).next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
    }

    #[test]
    fn scal_application_model() {
        // Paper: AW = N, AD = L_M.
        let wd = WorkDepth::map_application(1000, 6);
        assert_eq!(wd.work, 1000);
        assert_eq!(wd.depth, 6);
    }

    #[test]
    fn dot_application_model() {
        // Paper: AW = 2N − 1, AD = log2(N)·L_A + L_M.
        let wd = WorkDepth::reduce_application(1024, 6, 6);
        assert_eq!(wd.work, 2047);
        assert_eq!(wd.depth, 10 * 6 + 6);
    }

    #[test]
    fn scal_circuit_model() {
        // Paper Fig. 4: CW = W, CD = L_M.
        let wd = WorkDepth::map_circuit(4, 1, 6);
        assert_eq!(wd.work, 4);
        assert_eq!(wd.depth, 6);
    }

    #[test]
    fn dot_circuit_model() {
        // Paper Fig. 5: CW = 2W, CD = log2(W)·L_A + L_M.
        let wd = WorkDepth::reduce_circuit(4, 6, 6);
        assert_eq!(wd.work, 8);
        assert_eq!(wd.depth, 2 * 6 + 6);
        // Doubling W adds one adder level: depth grows logarithmically.
        let wd2 = WorkDepth::reduce_circuit(8, 6, 6);
        assert_eq!(wd2.depth - wd.depth, 6);
    }

    #[test]
    fn reduce_circuit_degenerate_width() {
        let wd = WorkDepth::reduce_circuit(1, 6, 6);
        assert_eq!(wd.depth, 6);
        assert_eq!(wd.work, 2);
    }

    #[test]
    fn optimal_width_dot_example() {
        // DOT consumes 2W operands/cycle. At B = 19.2 GB/s, F = 300 MHz,
        // f32: W = ceil(19.2e9 / (2·4·300e6)) = ceil(8) = 8.
        let w = optimal_width(19.2e9, 300.0e6, Precision::Single, 2);
        assert_eq!(w, 8);
        // SCAL consumes W operands/cycle: twice the width.
        let w = optimal_width(19.2e9, 300.0e6, Precision::Single, 1);
        assert_eq!(w, 16);
    }

    #[test]
    fn optimal_width_rounds_to_power_of_two() {
        let w = optimal_width(20.0e9, 300.0e6, Precision::Single, 2);
        // Raw value ceil(8.33) = 9 -> next pow2 = 16.
        assert_eq!(w, 16);
    }

    #[test]
    fn tiled_width_approaches_double_the_untiled() {
        let b = 19.2e9;
        let f = 300.0e6;
        // Untiled GEMV serves W from A and W from x: k = 2.
        let untiled = optimal_width(b, f, Precision::Single, 2);
        // Large tiles: x amortized, only A consumes bandwidth.
        let tiled = optimal_width_tiled(b, f, Precision::Single, 1024 * 1024);
        assert_eq!(tiled, 2 * untiled);
    }

    #[test]
    fn tiny_tiles_do_not_help() {
        // T = 1 means x is replayed for every element: W halves back.
        let b = 19.2e9;
        let f = 300.0e6;
        let w = optimal_width_tiled(b, f, Precision::Single, 1);
        assert_eq!(w, optimal_width(b, f, Precision::Single, 2));
    }

    #[test]
    fn double_precision_halves_width() {
        let ws = optimal_width(19.2e9, 300.0e6, Precision::Single, 2);
        let wd = optimal_width(19.2e9, 300.0e6, Precision::Double, 2);
        assert_eq!(ws, 2 * wd);
    }
}
