//! Evaluation device descriptions (paper Table II).
//!
//! The paper evaluates on two Bittware boards: one with an Intel
//! Arria 10 GX 1150 and one with an Intel Stratix 10 GX 2800. Part of each
//! device is reserved by the Board Support Package (≈25% on the Stratix),
//! so both *total* and *available* resources are modeled. The Stratix
//! additionally features the HyperFlex register architecture, which lifts
//! achievable clock frequencies (paper Sec. VI-B).

use serde::{Deserialize, Serialize};

use crate::memory::MemorySystem;
use crate::resources::Resources;

/// Identifier of a modeled FPGA device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Device {
    /// Intel Arria 10 GX 1150 (Bittware 385A-style board, 2 DDR banks).
    Arria10Gx1150,
    /// Intel Stratix 10 GX 2800 (Bittware 520N-style board, 4 DDR banks).
    Stratix10Gx2800,
    /// Xilinx Alveo U280 — the paper's stated future-work target
    /// ("we intend to extend FBLAS to cover Xilinx FPGAs", Sec. VI) and
    /// the HBM-class device its Sec. VI-B scaling study anticipates
    /// ("memory interfaces faster than the one offered by the testbed,
    /// e.g., HBM"). 8 GB of HBM2 in 32 pseudo-channels of ~14.4 GB/s
    /// (460 GB/s aggregate) plus 2 DDR4 banks.
    AlveoU280,
}

impl Device {
    /// The paper's two evaluation devices.
    pub const PAPER: [Device; 2] = [Device::Arria10Gx1150, Device::Stratix10Gx2800];

    /// All modeled devices, including the future-work Alveo U280.
    pub const ALL: [Device; 3] = [
        Device::Arria10Gx1150,
        Device::Stratix10Gx2800,
        Device::AlveoU280,
    ];

    /// Short display name as used in the paper's figures.
    pub fn short_name(self) -> &'static str {
        match self {
            Device::Arria10Gx1150 => "Arria",
            Device::Stratix10Gx2800 => "Stratix",
            Device::AlveoU280 => "Alveo",
        }
    }

    /// Full model description.
    pub fn model(self) -> DeviceModel {
        match self {
            // Paper Table II, Arria 10 GX 1150 row.
            Device::Arria10Gx1150 => DeviceModel {
                device: self,
                name: "Intel Arria 10 GX 1150",
                total: Resources::new(427_000, 1_700_000, 2_700, 1_518),
                available: Resources::new(392_000, 1_500_000, 2_400, 1_518),
                dram_banks: 2,
                dram_bank_bytes: 8 * (1 << 30),
                // DDR4 single-module peak on this board class.
                dram_bank_bandwidth: 17.0e9,
                hyperflex: false,
            },
            // Paper Table II, Stratix 10 GX 2800 row. ~25% of resources
            // reserved by the BSP.
            Device::Stratix10Gx2800 => DeviceModel {
                device: self,
                name: "Intel Stratix 10 GX 2800",
                total: Resources::new(933_000, 3_700_000, 11_700, 5_760),
                available: Resources::new(692_000, 2_800_000, 8_900, 4_468),
                dram_banks: 4,
                dram_bank_bytes: 8 * (1 << 30),
                // Paper Sec. VI-A: "the peak bandwidth of a single bank is
                // 19.2 GB/s".
                dram_bank_bandwidth: 19.2e9,
                hyperflex: true,
            },
            // Xilinx Alveo U280 (XCU280): public datasheet figures for
            // the user-visible resources, expressed in this crate's
            // Intel-flavored units (CLB-LUT pairs as "ALMs", URAM+BRAM
            // as M20K-equivalents). HBM2: 8 GB in 32 pseudo-channels.
            Device::AlveoU280 => DeviceModel {
                device: self,
                name: "Xilinx Alveo U280",
                total: Resources::new(1_304_000 / 2, 2_607_000, 9_024, 9_024),
                available: Resources::new(1_080_000 / 2, 2_160_000, 8_000, 8_490),
                dram_banks: 32,
                dram_bank_bytes: 256 * (1 << 20),
                dram_bank_bandwidth: 14.375e9,
                hyperflex: false,
            },
        }
    }

    /// Memory system with the device's default (non-interleaved) DDR
    /// configuration. Per the paper's BSP advice, automatic interleaving
    /// is disabled on the Stratix and buffers are manually placed.
    pub fn memory(self) -> MemorySystem {
        let m = self.model();
        MemorySystem::new(
            m.dram_banks,
            m.dram_bank_bandwidth,
            m.dram_bank_bytes,
            false,
        )
    }
}

impl std::fmt::Display for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.model().name)
    }
}

/// Static description of one FPGA board.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceModel {
    /// Which device this describes.
    pub device: Device,
    /// Marketing name.
    pub name: &'static str,
    /// Total on-chip resources (paper Table II "Total" rows).
    pub total: Resources,
    /// Resources left for user designs after the BSP reservation
    /// (paper Table II "Avail." rows).
    pub available: Resources,
    /// Number of off-chip DDR banks.
    pub dram_banks: usize,
    /// Capacity of each DDR bank in bytes.
    pub dram_bank_bytes: u64,
    /// Peak bandwidth of a single DDR bank in bytes/second.
    pub dram_bank_bandwidth: f64,
    /// Whether the device has the HyperFlex register architecture.
    pub hyperflex: bool,
}

impl DeviceModel {
    /// Does a design with the given resource demand place & route on this
    /// device? Mirrors the vendor compiler's fit check.
    pub fn fits(&self, demand: &Resources) -> bool {
        demand.fits_in(&self.available)
    }

    /// Aggregate peak DRAM bandwidth across all banks, bytes/second.
    pub fn total_dram_bandwidth(&self) -> f64 {
        self.dram_banks as f64 * self.dram_bank_bandwidth
    }

    /// Total DRAM capacity in bytes.
    pub fn total_dram_bytes(&self) -> u64 {
        self.dram_banks as u64 * self.dram_bank_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_totals_match_paper() {
        let a = Device::Arria10Gx1150.model();
        assert_eq!(a.total.alms, 427_000);
        assert_eq!(a.total.dsps, 1_518);
        assert_eq!(a.available.m20ks, 2_400);
        assert_eq!(a.dram_banks, 2);

        let s = Device::Stratix10Gx2800.model();
        assert_eq!(s.total.dsps, 5_760);
        assert_eq!(s.available.dsps, 4_468);
        assert_eq!(s.available.alms, 692_000);
        assert_eq!(s.dram_banks, 4);
        assert!(s.hyperflex && !a.hyperflex);
    }

    #[test]
    fn bsp_reservation_is_visible() {
        for d in Device::ALL {
            let m = d.model();
            assert!(m.available.alms <= m.total.alms);
            assert!(m.available.m20ks <= m.total.m20ks);
        }
        // Stratix BSP reserves roughly 25% of ALMs.
        let s = Device::Stratix10Gx2800.model();
        let reserved = 1.0 - s.available.alms as f64 / s.total.alms as f64;
        assert!(reserved > 0.2 && reserved < 0.3, "reserved = {reserved}");
    }

    #[test]
    fn fit_check_uses_available_not_total() {
        let s = Device::Stratix10Gx2800.model();
        // Demand between available and total DSPs must not fit.
        let demand = Resources::new(0, 0, 0, 5_000);
        assert!(!s.fits(&demand));
        assert!(s.fits(&Resources::new(0, 0, 0, 4_468)));
    }

    #[test]
    fn dram_aggregates() {
        let s = Device::Stratix10Gx2800.model();
        assert!((s.total_dram_bandwidth() - 4.0 * 19.2e9).abs() < 1.0);
        assert_eq!(s.total_dram_bytes(), 4 * 8 * (1 << 30));
        assert_eq!(Device::Stratix10Gx2800.memory().bank_count(), 4);
    }

    #[test]
    fn display_names() {
        assert_eq!(Device::Arria10Gx1150.short_name(), "Arria");
        assert!(Device::Stratix10Gx2800.to_string().contains("Stratix 10"));
    }
}
