//! Off-chip DDR memory model: banks, interleaving, and contention.
//!
//! The evaluation boards expose multiple independent DDR banks
//! (2 on the Arria board, 4 on the Stratix board — paper Table II). Due
//! to a BSP limitation, automatic memory interleaving was disabled on the
//! Stratix and buffers had to be manually allocated to banks
//! (Sec. VI-A). This has a visible performance consequence the model must
//! capture: in the host-layer AXPYDOT, the `z` vector is *read and
//! written in the same memory module*, halving the effective bandwidth of
//! that phase and pushing the measured streaming speedup from the
//! expected 3× to 4× (Sec. VI-C).
//!
//! [`MemorySystem`] tracks buffer→bank assignments and computes the
//! bandwidth each concurrently active stream obtains: streams sharing a
//! bank split its bandwidth equally; with interleaving enabled, all
//! streams share the aggregate bandwidth equally.

use serde::{Deserialize, Serialize};

/// Assignment of a logical buffer to a DDR bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BankAssignment {
    /// Index of the DDR bank holding the buffer.
    pub bank: usize,
}

/// A multi-bank DDR memory system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemorySystem {
    banks: usize,
    bank_bandwidth: f64,
    bank_bytes: u64,
    interleaved: bool,
}

impl MemorySystem {
    /// Create a memory system of `banks` DDR banks, each with the given
    /// peak bandwidth (bytes/s) and capacity (bytes).
    ///
    /// # Panics
    /// Panics if `banks == 0` or `bank_bandwidth <= 0`.
    pub fn new(banks: usize, bank_bandwidth: f64, bank_bytes: u64, interleaved: bool) -> Self {
        assert!(banks > 0, "memory system needs at least one bank");
        assert!(bank_bandwidth > 0.0, "bank bandwidth must be positive");
        MemorySystem {
            banks,
            bank_bandwidth,
            bank_bytes,
            interleaved,
        }
    }

    /// Number of DDR banks.
    pub fn bank_count(&self) -> usize {
        self.banks
    }

    /// Peak bandwidth of a single bank, bytes/s.
    pub fn bank_bandwidth(&self) -> f64 {
        self.bank_bandwidth
    }

    /// Capacity of a single bank, bytes.
    pub fn bank_bytes(&self) -> u64 {
        self.bank_bytes
    }

    /// Aggregate peak bandwidth across banks, bytes/s.
    pub fn total_bandwidth(&self) -> f64 {
        self.banks as f64 * self.bank_bandwidth
    }

    /// Whether automatic interleaving is enabled (data striped across all
    /// banks; every stream shares the aggregate bandwidth).
    pub fn interleaved(&self) -> bool {
        self.interleaved
    }

    /// Enable/disable interleaving (the `-no-interleaving` compile flag).
    pub fn set_interleaved(&mut self, interleaved: bool) {
        self.interleaved = interleaved;
    }

    /// Round-robin assignment of `n` buffers across banks — the manual
    /// placement a careful user performs when interleaving is off.
    pub fn round_robin(&self, n: usize) -> Vec<BankAssignment> {
        (0..n)
            .map(|i| BankAssignment {
                bank: i % self.banks,
            })
            .collect()
    }

    /// Bandwidth (bytes/s) obtained by each of a set of *concurrently
    /// active* streams, given the bank each stream touches.
    ///
    /// Non-interleaved: streams split the bandwidth of their bank evenly.
    /// Interleaved: all streams split the aggregate bandwidth evenly.
    ///
    /// # Panics
    /// Panics if any assignment references a bank out of range.
    pub fn stream_bandwidths(&self, assignments: &[BankAssignment]) -> Vec<f64> {
        for a in assignments {
            assert!(
                a.bank < self.banks,
                "bank {} out of range ({} banks)",
                a.bank,
                self.banks
            );
        }
        if assignments.is_empty() {
            return Vec::new();
        }
        if self.interleaved {
            let per = self.total_bandwidth() / assignments.len() as f64;
            return vec![per.min(self.total_bandwidth()); assignments.len()];
        }
        let mut per_bank = vec![0usize; self.banks];
        for a in assignments {
            per_bank[a.bank] += 1;
        }
        assignments
            .iter()
            .map(|a| self.bank_bandwidth / per_bank[a.bank] as f64)
            .collect()
    }

    /// Slowest stream bandwidth of a set of concurrent streams — the rate
    /// that gates a composition whose modules consume all streams in
    /// lockstep.
    pub fn bottleneck_bandwidth(&self, assignments: &[BankAssignment]) -> f64 {
        self.stream_bandwidths(assignments)
            .into_iter()
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys4() -> MemorySystem {
        MemorySystem::new(4, 19.2e9, 8 << 30, false)
    }

    #[test]
    fn exclusive_streams_get_full_bank_bandwidth() {
        let m = sys4();
        let bw = m.stream_bandwidths(&m.round_robin(4));
        assert_eq!(bw.len(), 4);
        for b in bw {
            assert!((b - 19.2e9).abs() < 1.0);
        }
    }

    #[test]
    fn sharing_a_bank_halves_bandwidth() {
        // The AXPYDOT effect: read and write of z on the same bank.
        let m = sys4();
        let shared = [BankAssignment { bank: 0 }, BankAssignment { bank: 0 }];
        let bw = m.stream_bandwidths(&shared);
        assert!((bw[0] - 9.6e9).abs() < 1.0);
        assert!((bw[1] - 9.6e9).abs() < 1.0);
        assert!((m.bottleneck_bandwidth(&shared) - 9.6e9).abs() < 1.0);
    }

    #[test]
    fn interleaving_shares_aggregate_bandwidth() {
        let mut m = sys4();
        m.set_interleaved(true);
        assert!(m.interleaved());
        let bw = m.stream_bandwidths(&[
            BankAssignment { bank: 0 },
            BankAssignment { bank: 0 },
            BankAssignment { bank: 0 },
        ]);
        // 4 * 19.2 / 3 = 25.6 GB/s per stream.
        for b in bw {
            assert!((b - 25.6e9).abs() < 1.0);
        }
    }

    #[test]
    fn round_robin_spreads_buffers() {
        let m = sys4();
        let a = m.round_robin(6);
        assert_eq!(a[0].bank, 0);
        assert_eq!(a[3].bank, 3);
        assert_eq!(a[4].bank, 0);
    }

    #[test]
    fn bottleneck_is_min_over_streams() {
        let m = sys4();
        let mixed = [
            BankAssignment { bank: 0 },
            BankAssignment { bank: 0 },
            BankAssignment { bank: 1 },
        ];
        let bn = m.bottleneck_bandwidth(&mixed);
        assert!((bn - 9.6e9).abs() < 1.0);
    }

    #[test]
    fn empty_stream_set_is_empty() {
        let m = sys4();
        assert!(m.stream_bandwidths(&[]).is_empty());
        assert_eq!(m.bottleneck_bandwidth(&[]), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_bank_rejected() {
        let m = sys4();
        let _ = m.stream_bandwidths(&[BankAssignment { bank: 9 }]);
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn zero_banks_rejected() {
        let _ = MemorySystem::new(0, 1.0, 1, false);
    }

    #[test]
    fn accessors() {
        let m = sys4();
        assert_eq!(m.bank_count(), 4);
        assert_eq!(m.bank_bytes(), 8 << 30);
        assert!((m.total_bandwidth() - 4.0 * 19.2e9).abs() < 1.0);
    }
}
