//! Resource vectors and accounting.
//!
//! FPGA designs consume four resource classes (paper Sec. VI-A): adaptive
//! logic modules (ALMs, each containing look-up tables), flip-flop
//! registers (FFs), M20K on-chip memory blocks, and hardened DSP units.
//! A design is realizable only if its total consumption fits within the
//! resources the Board Support Package leaves available — when it does
//! not, the vendor compiler fails placement/routing, which is how the
//! paper's maximum design sizes arise (e.g. DDOT capped at W = 128,
//! systolic arrays capped at 40×80 / 16×16 on the Stratix).

use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul};

use serde::{Deserialize, Serialize};

/// Number of LUTs per ALM used when converting estimator LUT counts to
/// ALM occupancy. Intel ALMs host two combinational LUT outputs.
pub const LUTS_PER_ALM: f64 = 2.0;

/// A vector of FPGA resource quantities.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Resources {
    /// Adaptive logic modules.
    pub alms: u64,
    /// Flip-flop registers.
    pub ffs: u64,
    /// M20K on-chip RAM blocks (20 kbit each).
    pub m20ks: u64,
    /// Hardened DSP units.
    pub dsps: u64,
}

impl Resources {
    /// The zero vector.
    pub const ZERO: Resources = Resources {
        alms: 0,
        ffs: 0,
        m20ks: 0,
        dsps: 0,
    };

    /// Construct from explicit quantities.
    pub fn new(alms: u64, ffs: u64, m20ks: u64, dsps: u64) -> Self {
        Resources {
            alms,
            ffs,
            m20ks,
            dsps,
        }
    }

    /// Construct from a LUT count plus the other quantities, converting
    /// LUTs to ALMs at [`LUTS_PER_ALM`].
    pub fn from_luts(luts: u64, ffs: u64, m20ks: u64, dsps: u64) -> Self {
        Resources {
            alms: (luts as f64 / LUTS_PER_ALM).ceil() as u64,
            ffs,
            m20ks,
            dsps,
        }
    }

    /// Component-wise `self <= other`: does a design needing `self` fit in
    /// a budget of `other`?
    pub fn fits_in(&self, budget: &Resources) -> bool {
        self.alms <= budget.alms
            && self.ffs <= budget.ffs
            && self.m20ks <= budget.m20ks
            && self.dsps <= budget.dsps
    }

    /// Largest utilization fraction across the four classes, against the
    /// given budget. Returns `f64::INFINITY` if the budget has a zero
    /// entry that `self` needs.
    pub fn max_utilization(&self, budget: &Resources) -> f64 {
        fn frac(used: u64, avail: u64) -> f64 {
            if used == 0 {
                0.0
            } else if avail == 0 {
                f64::INFINITY
            } else {
                used as f64 / avail as f64
            }
        }
        frac(self.alms, budget.alms)
            .max(frac(self.ffs, budget.ffs))
            .max(frac(self.m20ks, budget.m20ks))
            .max(frac(self.dsps, budget.dsps))
    }

    /// Per-class utilization percentages `(alm%, ff%, m20k%, dsp%)`, as
    /// printed in the paper's Table III.
    pub fn utilization_pct(&self, budget: &Resources) -> (f64, f64, f64, f64) {
        fn pct(used: u64, avail: u64) -> f64 {
            if avail == 0 {
                0.0
            } else {
                100.0 * used as f64 / avail as f64
            }
        }
        (
            pct(self.alms, budget.alms),
            pct(self.ffs, budget.ffs),
            pct(self.m20ks, budget.m20ks),
            pct(self.dsps, budget.dsps),
        )
    }

    /// Saturating subtraction: the budget left after allocating `other`.
    pub fn saturating_sub(&self, other: &Resources) -> Resources {
        Resources {
            alms: self.alms.saturating_sub(other.alms),
            ffs: self.ffs.saturating_sub(other.ffs),
            m20ks: self.m20ks.saturating_sub(other.m20ks),
            dsps: self.dsps.saturating_sub(other.dsps),
        }
    }

    /// Scale every component by an integer factor (replication of a
    /// circuit, e.g. PE count in a systolic array).
    pub fn scaled(&self, factor: u64) -> Resources {
        Resources {
            alms: self.alms * factor,
            ffs: self.ffs * factor,
            m20ks: self.m20ks * factor,
            dsps: self.dsps * factor,
        }
    }

    /// Scale every component by a float factor, rounding up.
    pub fn scaled_f(&self, factor: f64) -> Resources {
        assert!(factor >= 0.0, "resource scale factor must be non-negative");
        Resources {
            alms: (self.alms as f64 * factor).ceil() as u64,
            ffs: (self.ffs as f64 * factor).ceil() as u64,
            m20ks: (self.m20ks as f64 * factor).ceil() as u64,
            dsps: (self.dsps as f64 * factor).ceil() as u64,
        }
    }
}

impl Add for Resources {
    type Output = Resources;
    fn add(self, rhs: Resources) -> Resources {
        Resources {
            alms: self.alms + rhs.alms,
            ffs: self.ffs + rhs.ffs,
            m20ks: self.m20ks + rhs.m20ks,
            dsps: self.dsps + rhs.dsps,
        }
    }
}

impl AddAssign for Resources {
    fn add_assign(&mut self, rhs: Resources) {
        *self = *self + rhs;
    }
}

impl Mul<u64> for Resources {
    type Output = Resources;
    fn mul(self, factor: u64) -> Resources {
        self.scaled(factor)
    }
}

impl Sum for Resources {
    fn sum<I: Iterator<Item = Resources>>(iter: I) -> Resources {
        iter.fold(Resources::ZERO, |a, b| a + b)
    }
}

impl std::fmt::Display for Resources {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ALM {} | FF {} | M20K {} | DSP {}",
            self.alms, self.ffs, self.m20ks, self.dsps
        )
    }
}

/// Capacity of one M20K block in bytes (20 kbit).
pub const M20K_BYTES: u64 = 20 * 1024 / 8;

/// Number of M20K blocks needed to hold `elements` of `elem_bytes` each.
///
/// On-chip buffers (tile storage, shift registers) are built from M20K
/// blocks; this is why tile sizes must be compile-time constants in the
/// paper (Sec. III-A3) — they set the number of memory blocks instantiated.
pub fn m20ks_for_buffer(elements: u64, elem_bytes: u64) -> u64 {
    let bytes = elements * elem_bytes;
    bytes
        .div_ceil(M20K_BYTES)
        .max(if bytes > 0 { 1 } else { 0 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_and_scaling() {
        let a = Resources::new(10, 20, 3, 4);
        let b = Resources::new(1, 2, 3, 4);
        assert_eq!(a + b, Resources::new(11, 22, 6, 8));
        assert_eq!(b.scaled(3), Resources::new(3, 6, 9, 12));
        assert_eq!(b * 2, Resources::new(2, 4, 6, 8));
        let total: Resources = [a, b, b].into_iter().sum();
        assert_eq!(total, Resources::new(12, 24, 9, 12));
    }

    #[test]
    fn fit_check_is_component_wise() {
        let budget = Resources::new(100, 100, 100, 100);
        assert!(Resources::new(100, 1, 1, 1).fits_in(&budget));
        assert!(!Resources::new(101, 1, 1, 1).fits_in(&budget));
        assert!(!Resources::new(1, 1, 1, 101).fits_in(&budget));
    }

    #[test]
    fn utilization_tracks_binding_resource() {
        let budget = Resources::new(1000, 1000, 100, 100);
        let used = Resources::new(100, 100, 90, 10);
        assert!((used.max_utilization(&budget) - 0.9).abs() < 1e-12);
        let (alm, ff, m20k, dsp) = used.utilization_pct(&budget);
        assert!((alm - 10.0).abs() < 1e-9);
        assert!((ff - 10.0).abs() < 1e-9);
        assert!((m20k - 90.0).abs() < 1e-9);
        assert!((dsp - 10.0).abs() < 1e-9);
    }

    #[test]
    fn luts_convert_to_alms() {
        let r = Resources::from_luts(98, 192, 0, 2);
        assert_eq!(r.alms, 49);
    }

    #[test]
    fn m20k_buffer_sizing() {
        assert_eq!(m20ks_for_buffer(0, 4), 0);
        assert_eq!(m20ks_for_buffer(1, 4), 1);
        // 1024 f32 = 4096 bytes = 2 blocks of 2560 bytes.
        assert_eq!(m20ks_for_buffer(1024, 4), 2);
        // 1024x1024 f32 tile = 4 MiB = 1638.4 -> 1639 blocks.
        assert_eq!(m20ks_for_buffer(1024 * 1024, 4), 1639);
    }

    #[test]
    fn saturating_sub_never_underflows() {
        let a = Resources::new(5, 5, 5, 5);
        let b = Resources::new(10, 1, 10, 1);
        assert_eq!(a.saturating_sub(&b), Resources::new(0, 4, 0, 4));
    }

    #[test]
    fn zero_budget_means_infinite_utilization() {
        let used = Resources::new(0, 0, 0, 1);
        assert!(used.max_utilization(&Resources::ZERO).is_infinite());
        assert_eq!(Resources::ZERO.max_utilization(&Resources::ZERO), 0.0);
    }
}
