//! Roofline-style attainable-performance analysis.
//!
//! The paper evaluates each design against its *expected performance*:
//! "the number of used DSPs multiplied by the frequency of the
//! synthesized design" (Sec. VI-B) — i.e. the compute ceiling assuming
//! every DSP initiates an operation each cycle. A memory-fed module is
//! additionally capped by the arrival bandwidth: the same balance that
//! drives the optimal-width formula of Sec. IV-B. This module provides
//! both ceilings and their minimum.

/// Floating-point operations each MAC-capable DSP lane contributes per
/// cycle (a multiply and an add).
pub const FLOPS_PER_MAC: f64 = 2.0;

/// Compute ceiling of a design in ops/s: one operation initiated per DSP
/// per cycle — the paper's "expected performance" bars in Fig. 10.
pub fn expected_ops(dsps: u64, freq_hz: f64) -> f64 {
    dsps as f64 * freq_hz
}

/// Compute ceiling in flops/s of `macs` multiply-accumulate lanes.
pub fn compute_peak_flops(macs: u64, freq_hz: f64) -> f64 {
    macs as f64 * FLOPS_PER_MAC * freq_hz
}

/// Memory ceiling in flops/s at `bandwidth` bytes/s and an arithmetic
/// intensity of `flops_per_byte`.
pub fn memory_peak_flops(bandwidth: f64, flops_per_byte: f64) -> f64 {
    bandwidth * flops_per_byte
}

/// Attainable throughput: the lower of the compute and memory ceilings.
pub fn attainable_flops(compute_peak: f64, bandwidth: f64, flops_per_byte: f64) -> f64 {
    compute_peak.min(memory_peak_flops(bandwidth, flops_per_byte))
}

/// Is a kernel with the given arithmetic intensity memory bound on a
/// machine with the given balance point?
pub fn is_memory_bound(compute_peak: f64, bandwidth: f64, flops_per_byte: f64) -> bool {
    memory_peak_flops(bandwidth, flops_per_byte) < compute_peak
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stratix_sgemm_peak_matches_paper() {
        // 40×80 systolic array at 216 MHz: 2·3200·216e6 = 1.38 Tflop/s,
        // of which the paper measures 1.28 Tflop/s (Sec. VI-B).
        let peak = compute_peak_flops(3200, 216.0e6);
        assert!((peak - 1.3824e12).abs() < 1e6);
    }

    #[test]
    fn expected_ops_is_dsp_times_frequency() {
        assert_eq!(expected_ops(328, 358.0e6), 328.0 * 358.0e6);
    }

    #[test]
    fn dot_is_memory_bound_from_dram() {
        // DOT: 2N flops over 2N·4 bytes = 0.25 flops/byte (f32). From one
        // 19.2 GB/s bank that caps at 4.8 Gflop/s, far below even a
        // W=16 compute ceiling at 350 MHz (11.2 Gflop/s).
        let compute = compute_peak_flops(16, 350.0e6);
        assert!(is_memory_bound(compute, 19.2e9, 0.25));
        let att = attainable_flops(compute, 19.2e9, 0.25);
        assert!((att - 4.8e9).abs() < 1e3);
    }

    #[test]
    fn gemm_is_compute_bound() {
        // Tiled GEMM has high arithmetic intensity; the compute ceiling
        // binds.
        let compute = compute_peak_flops(3200, 216.0e6);
        assert!(!is_memory_bound(compute, 4.0 * 19.2e9, 100.0));
        assert_eq!(attainable_flops(compute, 4.0 * 19.2e9, 100.0), compute);
    }
}
