//! Floating-point precision descriptors.
//!
//! The two evaluation FPGAs have hardened *single*-precision floating point
//! DSP blocks: one DSP starts one f32 addition and one f32 multiplication
//! per clock cycle (paper Sec. IV-A). Neither device has hardened *double*
//! precision units, so f64 arithmetic is assembled from multiple DSPs plus
//! soft logic — the paper reports 4 DSPs per operation and roughly an
//! order of magnitude more logic (Sec. VI-B), which is what penalizes
//! DGEMM in Table IV.

use serde::{Deserialize, Serialize};

/// Floating-point precision of a routine instantiation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// IEEE-754 binary32 (`float` / BLAS `s` prefix).
    Single,
    /// IEEE-754 binary64 (`double` / BLAS `d` prefix).
    Double,
}

impl Precision {
    /// Size of one element in bytes (the `S` of the Sec. IV-B width
    /// formula `W = ceil(B / (2·S·F))`).
    pub fn elem_bytes(self) -> u64 {
        match self {
            Precision::Single => 4,
            Precision::Double => 8,
        }
    }

    /// DSP blocks needed per floating-point operation: 1 for hardened f32,
    /// 4 for assembled f64 (paper Sec. VI-B).
    pub fn dsps_per_op(self) -> u64 {
        match self {
            Precision::Single => 1,
            Precision::Double => 4,
        }
    }

    /// Multiplier on soft-logic (LUT/FF) cost relative to single precision.
    /// The paper reports "one order of magnitude higher" logic for f64
    /// (Sec. VI-B; compare SDOT 9.7K vs DDOT 121K ALMs in Table III —
    /// a ~12× ratio once the W-independent base is removed).
    pub fn logic_factor(self) -> f64 {
        match self {
            Precision::Single => 1.0,
            Precision::Double => 12.0,
        }
    }

    /// Whether the device's DSPs natively support accumulation at this
    /// precision. True for f32 on Arria 10 / Stratix 10; false for f64,
    /// which needs the two-stage interleaved accumulation circuit of
    /// Sec. III-A to reach II = 1.
    pub fn native_accumulation(self) -> bool {
        matches!(self, Precision::Single)
    }

    /// BLAS routine-name prefix (`s` / `d`).
    pub fn blas_prefix(self) -> char {
        match self {
            Precision::Single => 's',
            Precision::Double => 'd',
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Precision::Single => write!(f, "single"),
            Precision::Double => write!(f, "double"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_sizes() {
        assert_eq!(Precision::Single.elem_bytes(), 4);
        assert_eq!(Precision::Double.elem_bytes(), 8);
    }

    #[test]
    fn double_precision_is_costlier() {
        assert!(Precision::Double.dsps_per_op() > Precision::Single.dsps_per_op());
        assert!(Precision::Double.logic_factor() > Precision::Single.logic_factor());
        assert!(!Precision::Double.native_accumulation());
        assert!(Precision::Single.native_accumulation());
    }

    #[test]
    fn blas_prefixes() {
        assert_eq!(Precision::Single.blas_prefix(), 's');
        assert_eq!(Precision::Double.blas_prefix(), 'd');
        assert_eq!(Precision::Single.to_string(), "single");
    }
}
