//! Achieved clock frequency model.
//!
//! The paper reports synthesized frequencies per design (Tables III–VI):
//! Arria 10 Level-1/2 modules run around 130–150 MHz and its systolic GEMM
//! designs at 197–222 MHz; Stratix 10 Level-1/2 modules reach 347–370 MHz
//! *with HyperFlex* (the register retiming technology, Sec. VI-B) while
//! its GEMM designs, for which the used compiler version could not enable
//! HyperFlex, run at 216–260 MHz. Larger designs close timing at lower
//! frequencies — visible as the utilization-correlated spread within each
//! class.
//!
//! We model this as a per-(device, routine-class) base frequency, an
//! optional HyperFlex uplift, and a linear derating in the design's
//! binding resource-utilization fraction. Constants are fitted to the
//! Table III/IV rows.

use serde::{Deserialize, Serialize};

use crate::device::Device;

/// Coarse class of a routine for frequency purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoutineClass {
    /// Streaming Level-1/Level-2 modules (DOT, GEMV, compositions thereof).
    Streaming,
    /// Systolic Level-3 designs (GEMM, SYRK, TRSM).
    Systolic,
}

/// HyperFlex uplift factor on eligible designs (Stratix 10 only): the
/// ratio between the paper's HyperFlex streaming designs (≈358–370 MHz)
/// and comparable non-HyperFlex designs (≈220–238 MHz).
pub const HYPERFLEX_UPLIFT: f64 = 1.6;

/// Linear frequency derating per unit of binding resource utilization:
/// fuller devices close timing at lower clock rates.
pub const UTILIZATION_DERATE: f64 = 0.25;

/// Frequency model for a device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrequencyModel {
    device: Device,
}

impl FrequencyModel {
    /// Model for the given device.
    pub fn new(device: Device) -> Self {
        FrequencyModel { device }
    }

    /// Base (uncongested, non-HyperFlex) frequency in Hz for a routine
    /// class on this device.
    pub fn base_hz(&self, class: RoutineClass) -> f64 {
        match (self.device, class) {
            (Device::Arria10Gx1150, RoutineClass::Streaming) => 160.0e6,
            (Device::Arria10Gx1150, RoutineClass::Systolic) => 240.0e6,
            (Device::Stratix10Gx2800, RoutineClass::Streaming) => 230.0e6,
            (Device::Stratix10Gx2800, RoutineClass::Systolic) => 280.0e6,
            // UltraScale+ kernel clocks typically close 250–300 MHz on
            // HLS designs of this class (future-work device; no paper
            // calibration available).
            (Device::AlveoU280, RoutineClass::Streaming) => 300.0e6,
            (Device::AlveoU280, RoutineClass::Systolic) => 280.0e6,
        }
    }

    /// Achieved frequency in Hz for a design of the given class, with
    /// HyperFlex requested or not, at the given binding utilization
    /// fraction (0..1). Returns `(freq_hz, hyperflex_used)`.
    ///
    /// HyperFlex only applies on devices that have it, and per the paper
    /// the evaluated compiler version could not enable it for systolic
    /// GEMM designs (striped memory accesses inferred as unaligned).
    pub fn achieved_hz(
        &self,
        class: RoutineClass,
        hyperflex_requested: bool,
        utilization: f64,
    ) -> (f64, bool) {
        let util = utilization.clamp(0.0, 1.0);
        let hyperflex_used = hyperflex_requested
            && self.device.model().hyperflex
            && class == RoutineClass::Streaming;
        let base = self.base_hz(class)
            * if hyperflex_used {
                HYPERFLEX_UPLIFT
            } else {
                1.0
            };
        (base * (1.0 - UTILIZATION_DERATE * util), hyperflex_used)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mhz(hz: f64) -> f64 {
        hz / 1.0e6
    }

    #[test]
    fn arria_sdot_near_150mhz() {
        // Table III: Arria SDOT at 21.8% DSP utilization runs at 150 MHz.
        let m = FrequencyModel::new(Device::Arria10Gx1150);
        let (f, hf) = m.achieved_hz(RoutineClass::Streaming, true, 0.218);
        assert!(!hf, "Arria has no HyperFlex");
        assert!((mhz(f) - 150.0).abs() < 10.0, "got {} MHz", mhz(f));
    }

    #[test]
    fn stratix_streaming_with_hyperflex_above_340mhz() {
        // Table III: Stratix SDOT/SGEMV with HyperFlex at 347–358 MHz.
        let m = FrequencyModel::new(Device::Stratix10Gx2800);
        let (f, hf) = m.achieved_hz(RoutineClass::Streaming, true, 0.18);
        assert!(hf);
        assert!(mhz(f) > 340.0 && mhz(f) < 380.0, "got {} MHz", mhz(f));
    }

    #[test]
    fn stratix_systolic_denied_hyperflex() {
        // Paper: HyperFlex not enabled for GEMM with this compiler
        // version; SGEMM at 86% utilization ran at 216 MHz.
        let m = FrequencyModel::new(Device::Stratix10Gx2800);
        let (f, hf) = m.achieved_hz(RoutineClass::Systolic, true, 0.86);
        assert!(!hf);
        assert!((mhz(f) - 216.0).abs() < 15.0, "got {} MHz", mhz(f));
    }

    #[test]
    fn fuller_designs_run_slower() {
        let m = FrequencyModel::new(Device::Stratix10Gx2800);
        let (f_small, _) = m.achieved_hz(RoutineClass::Systolic, false, 0.26);
        let (f_big, _) = m.achieved_hz(RoutineClass::Systolic, false, 0.86);
        assert!(f_small > f_big);
        // Table III: DGEMM (26%) 260 MHz vs SGEMM (86%) 216 MHz.
        assert!(
            (mhz(f_small) - 260.0).abs() < 15.0,
            "got {} MHz",
            mhz(f_small)
        );
    }

    #[test]
    fn utilization_is_clamped() {
        let m = FrequencyModel::new(Device::Arria10Gx1150);
        let (f_over, _) = m.achieved_hz(RoutineClass::Streaming, false, 1.7);
        let (f_one, _) = m.achieved_hz(RoutineClass::Streaming, false, 1.0);
        assert_eq!(f_over, f_one);
        let (f_neg, _) = m.achieved_hz(RoutineClass::Streaming, false, -0.5);
        let (f_zero, _) = m.achieved_hz(RoutineClass::Streaming, false, 0.0);
        assert_eq!(f_neg, f_zero);
    }
}
