//! Metric registration and lock-free handles.
//!
//! Registration (name + sorted labels → handle) takes a mutex once;
//! the returned [`Counter`], [`Gauge`], and [`Hist`] handles are `Arc`s
//! over padded atomic shard arrays, so the hot path — a channel push, a
//! retry, a latency sample — is a relaxed atomic op with no lock and no
//! false sharing between simulator worker threads.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::hist::{Histogram, HistogramSnapshot};

/// Default writer-shard count when `FBLAS_METRICS_SHARDS` is unset.
pub const DEFAULT_SHARDS: usize = 8;

/// Monotonically assigned per-thread ordinal, used to pick a shard.
pub fn thread_ordinal() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static ORDINAL: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ORDINAL.with(|o| *o)
}

/// One padded counter shard.
#[repr(align(64))]
struct Pad(AtomicU64);

struct CounterCore {
    shards: Box<[Pad]>,
    mask: usize,
}

impl CounterCore {
    fn new(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, || Pad(AtomicU64::new(0)));
        CounterCore {
            shards: v.into_boxed_slice(),
            mask: n - 1,
        }
    }
}

/// Handle to a registered monotonic counter. Cloning is cheap; `add` is
/// a single relaxed `fetch_add` on the calling thread's shard.
#[derive(Clone)]
pub struct Counter(Arc<CounterCore>);

impl Counter {
    /// Add `delta` to the counter.
    #[inline]
    pub fn add(&self, delta: u64) {
        let c = &self.0;
        c.shards[thread_ordinal() & c.mask]
            .0
            .fetch_add(delta, Ordering::Relaxed);
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Aggregate all shards.
    pub fn value(&self) -> u64 {
        self.0
            .shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// Handle to a registered gauge: last-write-wins f64 stored as bits.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if larger (lock-free running max).
    #[inline]
    pub fn raise(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        while f64::from_bits(cur) < v {
            match self.0.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Handle to a registered histogram.
#[derive(Clone)]
pub struct Hist(Arc<Histogram>);

impl Hist {
    /// Record one observation (microseconds by convention).
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.record(v);
    }

    /// Aggregate all shards into a snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0.snapshot()
    }
}

/// A metric identity: name plus sorted `(label, value)` pairs.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Key {
    /// Metric name, e.g. `fblas_channel_push_elements_total`.
    pub name: String,
    /// Label pairs, sorted by label name at construction.
    pub labels: Vec<(String, String)>,
}

impl Key {
    /// Build a key, sorting labels so identity is order-independent.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        Key {
            name: name.to_string(),
            labels,
        }
    }

    /// Prometheus-style rendering: `name{l1="v1",l2="v2"}` (bare name
    /// when label-free). Label values escape backslash, double-quote,
    /// and newline per the exposition format — backslash first, so the
    /// escapes introduced for the other two are not themselves escaped.
    pub fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let inner: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| {
                format!(
                    "{k}=\"{}\"",
                    v.replace('\\', "\\\\")
                        .replace('"', "\\\"")
                        .replace('\n', "\\n")
                )
            })
            .collect();
        format!("{}{{{}}}", self.name, inner.join(","))
    }
}

/// Registry of all live metrics. Handle lookup is mutex-guarded (cold);
/// everything the handles do afterwards is lock-free.
pub struct Registry {
    shards: usize,
    counters: Mutex<BTreeMap<Key, Counter>>,
    gauges: Mutex<BTreeMap<Key, Gauge>>,
    histograms: Mutex<BTreeMap<Key, Hist>>,
}

impl Registry {
    /// Create a registry whose metrics use `shards` writer shards.
    pub fn new(shards: usize) -> Self {
        Registry {
            shards: shards.max(1).next_power_of_two(),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }
    }

    /// Writer-shard count used by metrics in this registry.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Get or create the counter `name{labels}`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = Key::new(name, labels);
        self.counters
            .lock()
            .entry(key)
            .or_insert_with(|| Counter(Arc::new(CounterCore::new(self.shards))))
            .clone()
    }

    /// Get or create the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = Key::new(name, labels);
        self.gauges
            .lock()
            .entry(key)
            .or_insert_with(|| Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))))
            .clone()
    }

    /// Get or create the histogram `name{labels}`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Hist {
        let key = Key::new(name, labels);
        self.histograms
            .lock()
            .entry(key)
            .or_insert_with(|| Hist(Arc::new(Histogram::new(self.shards))))
            .clone()
    }

    /// Aggregate counters and gauges only — the cheap subset the flight
    /// recorder samples on every tick. Histogram snapshots (976-slot
    /// bucket walks) are deferred to the one full [`Registry::collect`]
    /// the postmortem capture performs.
    #[allow(clippy::type_complexity)]
    pub(crate) fn collect_scalars(&self) -> (Vec<(Key, u64)>, Vec<(Key, f64)>) {
        (
            self.counters
                .lock()
                .iter()
                .map(|(k, c)| (k.clone(), c.value()))
                .collect(),
            self.gauges
                .lock()
                .iter()
                .map(|(k, g)| (k.clone(), g.value()))
                .collect(),
        )
    }

    /// Aggregate every metric into sorted `(key, value)` rows.
    pub fn collect(&self) -> Collected {
        Collected {
            counters: self
                .counters
                .lock()
                .iter()
                .map(|(k, c)| (k.clone(), c.value()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .iter()
                .map(|(k, g)| (k.clone(), g.value()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// Point-in-time aggregate of a registry, sorted by key.
pub struct Collected {
    /// Counter totals.
    pub counters: Vec<(Key, u64)>,
    /// Gauge values.
    pub gauges: Vec<(Key, f64)>,
    /// Histogram snapshots.
    pub histograms: Vec<(Key, HistogramSnapshot)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_aggregates_across_threads() {
        let reg = Registry::new(4);
        let c = reg.counter("ops_total", &[]);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.value(), 4000);
    }

    #[test]
    fn labels_sorted_into_one_identity() {
        let reg = Registry::new(1);
        let a = reg.counter("x", &[("b", "2"), ("a", "1")]);
        let b = reg.counter("x", &[("a", "1"), ("b", "2")]);
        a.add(5);
        assert_eq!(b.value(), 5);
        let rows = reg.collect();
        assert_eq!(rows.counters.len(), 1);
        assert_eq!(rows.counters[0].0.render(), "x{a=\"1\",b=\"2\"}");
    }

    #[test]
    fn gauge_raise_is_running_max() {
        let reg = Registry::new(1);
        let g = reg.gauge("depth", &[]);
        g.raise(3.0);
        g.raise(1.0);
        assert_eq!(g.value(), 3.0);
        g.set(0.5);
        assert_eq!(g.value(), 0.5);
    }
}
