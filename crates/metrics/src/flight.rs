//! Flight recorder: a bounded ring of metrics time-series frames, a
//! rule-based anomaly detector over it, and the postmortem bundle that
//! is assembled when a run dies.
//!
//! The live registry ([`crate::registry`]) only answers "what are the
//! totals *now*" — by the time a stall, deadline, or exhausted retry
//! budget surfaces, the trajectory that caused it (occupancy collapse,
//! retry storm, throughput cliff) is gone. The flight recorder closes
//! that gap the way a black box does: the simulator watchdog calls
//! [`FlightRecorder::tick`] on its poll loop, the recorder samples the
//! registry's counters and gauges on a configurable cadence into a
//! bounded delta-ring, and on any terminal failure the failure site
//! captures a [`PostmortemBundle`] carrying the last-window frames, the
//! anomalies [`detect`] found in them, and the forensic attachments
//! (stall report, guard reports, recovery report) the caller has.
//!
//! # Determinism
//!
//! The bundle's JSON document (schema [`BUNDLE_SCHEMA`]) is rendered
//! byte-stably, and every wall-clock-dependent field — the frames, the
//! anomalies detected over them, the final metrics snapshot — is
//! isolated under the single `"wall"` key. [`PostmortemBundle::deterministic_json`]
//! renders the document with that key nulled, so two seeded chaos runs
//! serialize to byte-identical deterministic documents (ci.sh compares
//! them) while the full document keeps the forensics.
//!
//! Like the rest of the runtime the recorder is disarmed by default;
//! [`recorder`] costs one relaxed load when off. Arming is wired to the
//! `FBLAS_FLIGHT*` knobs by `fblas_hlssim::env::arm_flight`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::Mutex;
use serde::Value;

use crate::registry::{Key, Registry};

/// Schema identifier stamped on every postmortem bundle.
pub const BUNDLE_SCHEMA: &str = "fblas-flight-bundle-v1";

/// Default sampling cadence when `FBLAS_FLIGHT_HZ` is unset.
pub const DEFAULT_FLIGHT_HZ: u32 = 50;
/// Default ring window (seconds) when `FBLAS_FLIGHT_WINDOW` is unset.
pub const DEFAULT_FLIGHT_WINDOW_S: u32 = 10;

/// Occupancy must sit at capacity for at least this many consecutive
/// frames *ending at the failure* before [`AnomalyKind::OccupancyPinned`] fires.
pub const PIN_MIN_FRAMES: usize = 2;
/// Minimum full-wait events across the window before
/// [`AnomalyKind::FullWaitSustained`] can fire.
pub const FULL_WAIT_MIN_EVENTS: u64 = 4;
/// Fraction of sampled frame pairs that must show new full-waits for the
/// ratio to count as "sustained".
pub const FULL_WAIT_MIN_FRACTION: f64 = 0.75;
/// Retry-counter delta across the window that counts as a spike.
pub const RETRY_SPIKE_MIN: u64 = 2;
/// Peak per-frame element throughput below which
/// [`AnomalyKind::ThroughputCollapse`] never fires (too little flow to
/// call anything a collapse).
pub const COLLAPSE_MIN_PEAK: u64 = 256;
/// Trailing frame pairs that must sit under the collapse floor.
pub const COLLAPSE_TAIL_PAIRS: usize = 3;
/// Collapse floor as a fraction of the window's peak throughput.
pub const COLLAPSE_FRACTION: f64 = 0.1;

/// Sampling configuration for the recorder ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightConfig {
    /// Frames per second the ring samples at (clamped to 1..=1000).
    pub hz: u32,
    /// Seconds of history the ring retains.
    pub window_s: u32,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig {
            hz: DEFAULT_FLIGHT_HZ,
            window_s: DEFAULT_FLIGHT_WINDOW_S,
        }
    }
}

/// One sampled frame: registry counter totals and gauge values at
/// `t_us` microseconds after the recorder was installed. Histograms are
/// deliberately not sampled per-frame (their 976-slot snapshots are the
/// expensive part of a collection); the final postmortem snapshot
/// carries them once.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Microseconds since the recorder's origin.
    pub t_us: u64,
    /// Counter totals, sorted by key.
    pub counters: Vec<(Key, u64)>,
    /// Gauge values, sorted by key.
    pub gauges: Vec<(Key, f64)>,
}

/// The rule a detected anomaly came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AnomalyKind {
    /// A channel's occupancy sat at capacity through the frames leading
    /// into the failure — the backpressure signature of a deadlocked or
    /// under-depth FIFO.
    OccupancyPinned,
    /// A sustained fraction of frames showed new full-capacity waits on
    /// one channel — producer-side thrashing.
    FullWaitSustained,
    /// The executor retry counter jumped within the window — a recovery
    /// storm preceding budget exhaustion.
    RetrySpike,
    /// Aggregate element throughput fell off a cliff relative to the
    /// window's peak and stayed down.
    ThroughputCollapse,
}

impl AnomalyKind {
    /// Stable snake_case label used in the bundle JSON.
    pub fn label(&self) -> &'static str {
        match self {
            AnomalyKind::OccupancyPinned => "occupancy_pinned",
            AnomalyKind::FullWaitSustained => "full_wait_sustained",
            AnomalyKind::RetrySpike => "retry_spike",
            AnomalyKind::ThroughputCollapse => "throughput_collapse",
        }
    }
}

/// One detected anomaly: which rule fired, on what, and when.
#[derive(Debug, Clone, PartialEq)]
pub struct Anomaly {
    /// The rule that fired.
    pub kind: AnomalyKind,
    /// Culprit channel name, or `"executor"`/`"pipeline"` for the
    /// non-channel rules.
    pub culprit: String,
    /// Onset: `t_us` of the first frame exhibiting the anomaly.
    pub onset_us: u64,
    /// Number of frames (or frame pairs) the anomaly spans.
    pub frames: usize,
    /// Human-readable evidence line.
    pub detail: String,
}

/// What killed the run: normalized kind (`"stall"`, `"deadline"`,
/// `"poisoned"`, `"corruption"`, ...), the error's own description, and
/// the culprit module/channel when the error names one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trigger {
    /// Normalized failure kind, matching the executor's error kinds.
    pub kind: String,
    /// The error's rendered detail.
    pub detail: String,
    /// Culprit module or channel named by the error, when known.
    pub culprit: Option<String>,
}

/// Bounded ring of [`Frame`]s with interval-gated sampling.
pub struct FlightRecorder {
    origin: Instant,
    interval_us: u64,
    capacity: usize,
    /// `u64::MAX` = never sampled.
    last_us: AtomicU64,
    ring: Mutex<VecDeque<Frame>>,
}

impl FlightRecorder {
    /// Build a recorder from a sampling config: `hz` frames/sec kept
    /// for `window_s` seconds.
    pub fn new(cfg: FlightConfig) -> Self {
        let hz = cfg.hz.clamp(1, 1000);
        let window = cfg.window_s.max(1);
        FlightRecorder::with_params(
            1_000_000 / u64::from(hz),
            (hz as usize).saturating_mul(window as usize).max(4),
        )
    }

    /// Build a recorder with an explicit interval and ring capacity
    /// (tests size the ring directly).
    pub fn with_params(interval_us: u64, capacity: usize) -> Self {
        FlightRecorder {
            origin: Instant::now(),
            interval_us: interval_us.max(1),
            capacity: capacity.max(2),
            last_us: AtomicU64::new(u64::MAX),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Microseconds between retained frames.
    pub fn interval_us(&self) -> u64 {
        self.interval_us
    }

    /// Maximum frames the ring retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn now_us(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_micros()).unwrap_or(u64::MAX - 1)
    }

    /// Sample `reg` if at least one interval elapsed since the last
    /// frame; returns whether a frame was recorded. The watchdog calls
    /// this on every poll, so the recorder — not the poll rate —
    /// governs the cadence.
    pub fn tick(&self, reg: &Registry) -> bool {
        let now = self.now_us();
        let last = self.last_us.load(Ordering::Relaxed);
        if last != u64::MAX && now.saturating_sub(last) < self.interval_us {
            return false;
        }
        self.last_us.store(now, Ordering::Relaxed);
        self.push_frame(now, reg);
        true
    }

    /// Sample `reg` unconditionally — the final frame a postmortem
    /// capture records at the moment of death.
    pub fn sample_now(&self, reg: &Registry) {
        let now = self.now_us();
        self.last_us.store(now, Ordering::Relaxed);
        self.push_frame(now, reg);
    }

    fn push_frame(&self, t_us: u64, reg: &Registry) {
        let (counters, gauges) = reg.collect_scalars();
        let mut ring = self.ring.lock();
        while ring.len() >= self.capacity {
            ring.pop_front();
        }
        ring.push_back(Frame {
            t_us,
            counters,
            gauges,
        });
    }

    /// The retained frames, oldest first.
    pub fn frames(&self) -> Vec<Frame> {
        self.ring.lock().iter().cloned().collect()
    }

    /// Drop all retained frames and reset the cadence gate.
    pub fn clear(&self) {
        self.ring.lock().clear();
        self.last_us.store(u64::MAX, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Global arming — mirrors the registry's arm/disarm discipline.

static FLIGHT_ARMED: AtomicBool = AtomicBool::new(false);

fn slot() -> &'static Mutex<Option<Arc<FlightRecorder>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<FlightRecorder>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Whether the flight recorder is armed: one relaxed load.
#[inline(always)]
pub fn armed() -> bool {
    FLIGHT_ARMED.load(Ordering::Relaxed)
}

/// Install (or replace) the global recorder with `cfg` and arm it.
pub fn install(cfg: FlightConfig) -> Arc<FlightRecorder> {
    let rec = Arc::new(FlightRecorder::new(cfg));
    *slot().lock() = Some(rec.clone());
    FLIGHT_ARMED.store(true, Ordering::Release);
    rec
}

/// Disarm the recorder; its frames survive until the next install.
pub fn disarm() {
    FLIGHT_ARMED.store(false, Ordering::Release);
}

/// The global recorder when armed, else `None`.
#[inline]
pub fn recorder() -> Option<Arc<FlightRecorder>> {
    if !armed() {
        return None;
    }
    slot().lock().clone()
}

// ---------------------------------------------------------------------------
// Capture suppression — the recovery executor runs each attempt's
// simulation with sim-level capture suppressed so a retried (and maybe
// recovered) attempt doesn't publish a bundle; the executor itself
// captures the authoritative bundle once the budget is exhausted.

thread_local! {
    static SUPPRESS: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

/// RAII guard holding sim-level capture suppressed on this thread.
pub struct CaptureSuppressed(());

impl Drop for CaptureSuppressed {
    fn drop(&mut self) {
        SUPPRESS.with(|c| c.set(c.get() - 1));
    }
}

/// Suppress sim-level postmortem capture on this thread until the guard
/// drops. Nestable.
pub fn suppress_capture() -> CaptureSuppressed {
    SUPPRESS.with(|c| c.set(c.get() + 1));
    CaptureSuppressed(())
}

/// Whether capture is currently suppressed on this thread.
pub fn capture_suppressed() -> bool {
    SUPPRESS.with(|c| c.get() > 0)
}

// ---------------------------------------------------------------------------
// Anomaly detection: pure rules over a frame window.

fn label<'a>(key: &'a Key, name: &str) -> Option<&'a str> {
    key.labels
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

fn gauge_value(frame: &Frame, name: &str, channel: &str) -> Option<f64> {
    frame
        .gauges
        .iter()
        .find(|(k, _)| k.name == name && label(k, "channel") == Some(channel))
        .map(|(_, v)| *v)
}

fn counter_value(frame: &Frame, name: &str, channel: Option<&str>) -> Option<u64> {
    frame
        .counters
        .iter()
        .find(|(k, _)| k.name == name && channel.is_none_or(|c| label(k, "channel") == Some(c)))
        .map(|(_, v)| *v)
}

fn channel_names(frames: &[Frame], metric: &str, gauge: bool) -> Vec<String> {
    let mut names: Vec<String> = frames
        .iter()
        .flat_map(|f| {
            let keys: Vec<&Key> = if gauge {
                f.gauges.iter().map(|(k, _)| k).collect()
            } else {
                f.counters.iter().map(|(k, _)| k).collect()
            };
            keys.into_iter()
                .filter(|k| k.name == metric)
                .filter_map(|k| label(k, "channel").map(str::to_string))
                .collect::<Vec<_>>()
        })
        .collect();
    names.sort();
    names.dedup();
    names
}

/// Run every anomaly rule over `frames` (oldest first). Pure: the same
/// window always yields the same anomalies, sorted by onset then kind.
pub fn detect(frames: &[Frame]) -> Vec<Anomaly> {
    let mut out = Vec::new();
    if frames.len() < 2 {
        return out;
    }
    let last = frames.last().expect("len checked");

    // Rule: occupancy pinned at capacity into the failure.
    for ch in channel_names(frames, "fblas_channel_occupancy", true) {
        let cap = gauge_value(last, "fblas_channel_capacity", &ch).unwrap_or(0.0);
        if cap < 1.0 {
            continue;
        }
        let run = frames
            .iter()
            .rev()
            .take_while(|f| {
                gauge_value(f, "fblas_channel_occupancy", &ch).is_some_and(|occ| occ + 0.5 >= cap)
            })
            .count();
        if run >= PIN_MIN_FRAMES {
            out.push(Anomaly {
                kind: AnomalyKind::OccupancyPinned,
                onset_us: frames[frames.len() - run].t_us,
                frames: run,
                detail: format!("occupancy pinned at capacity {cap:.0} for the final {run} frames"),
                culprit: ch,
            });
        }
    }

    // Rule: sustained full-wait ratio on one channel.
    for ch in channel_names(frames, "fblas_channel_full_waits_total", false) {
        let series: Vec<Option<u64>> = frames
            .iter()
            .map(|f| counter_value(f, "fblas_channel_full_waits_total", Some(&ch)))
            .collect();
        let (Some(Some(first)), Some(Some(last_v))) = (series.first(), series.last()) else {
            continue;
        };
        let total = last_v.saturating_sub(*first);
        if total < FULL_WAIT_MIN_EVENTS {
            continue;
        }
        let mut pairs = 0usize;
        let mut active = 0usize;
        let mut onset = None;
        for i in 1..series.len() {
            if let (Some(a), Some(b)) = (series[i - 1], series[i]) {
                pairs += 1;
                if b > a {
                    active += 1;
                    onset.get_or_insert(frames[i - 1].t_us);
                }
            }
        }
        if pairs > 0 && active as f64 / pairs as f64 >= FULL_WAIT_MIN_FRACTION {
            out.push(Anomaly {
                kind: AnomalyKind::FullWaitSustained,
                onset_us: onset.unwrap_or(frames[0].t_us),
                frames: active,
                detail: format!(
                    "{total} full-capacity waits across {active}/{pairs} sampled frame pairs"
                ),
                culprit: ch,
            });
        }
    }

    // Rule: executor retry spike. The counter is created lazily on the
    // first retry, so a frame without it reads as 0 — otherwise a spike
    // starting mid-window would be invisible.
    let retries: Vec<u64> = frames
        .iter()
        .map(|f| counter_value(f, "fblas_exec_retries_total", None).unwrap_or(0))
        .collect();
    let first = *retries.first().expect("len checked");
    let delta = retries.last().expect("len checked").saturating_sub(first);
    if delta >= RETRY_SPIKE_MIN {
        let onset_ix = retries
            .iter()
            .position(|v| *v > first)
            .unwrap_or(frames.len() - 1);
        out.push(Anomaly {
            kind: AnomalyKind::RetrySpike,
            culprit: "executor".to_string(),
            onset_us: frames[onset_ix].t_us,
            frames: frames.len() - onset_ix,
            detail: format!("{delta} recovery retries within the window"),
        });
    }

    // Rule: aggregate element throughput collapse.
    let totals: Vec<u64> = frames
        .iter()
        .map(|f| {
            f.counters
                .iter()
                .filter(|(k, _)| k.name == "fblas_channel_push_elements_total")
                .map(|(_, v)| *v)
                .sum()
        })
        .collect();
    let deltas: Vec<u64> = totals
        .windows(2)
        .map(|w| w[1].saturating_sub(w[0]))
        .collect();
    let peak = deltas.iter().copied().max().unwrap_or(0);
    if peak >= COLLAPSE_MIN_PEAK && deltas.len() > COLLAPSE_TAIL_PAIRS {
        let floor = (peak as f64 * COLLAPSE_FRACTION) as u64;
        let tail = deltas.iter().rev().take_while(|d| **d <= floor).count();
        if (COLLAPSE_TAIL_PAIRS..deltas.len()).contains(&tail) {
            // Name the channel whose own flow dropped hardest from its
            // window peak; fall back to "pipeline" when none stands out.
            let mut culprit = "pipeline".to_string();
            let mut worst = 0u64;
            for ch in channel_names(frames, "fblas_channel_push_elements_total", false) {
                let series: Vec<u64> = frames
                    .iter()
                    .filter_map(|f| {
                        counter_value(f, "fblas_channel_push_elements_total", Some(&ch))
                    })
                    .collect();
                let ch_deltas: Vec<u64> = series
                    .windows(2)
                    .map(|w| w[1].saturating_sub(w[0]))
                    .collect();
                let ch_peak = ch_deltas.iter().copied().max().unwrap_or(0);
                let ch_last = ch_deltas.last().copied().unwrap_or(0);
                let drop = ch_peak.saturating_sub(ch_last);
                if drop > worst && ch_peak >= COLLAPSE_MIN_PEAK / 4 {
                    worst = drop;
                    culprit = ch;
                }
            }
            out.push(Anomaly {
                kind: AnomalyKind::ThroughputCollapse,
                culprit,
                onset_us: frames[frames.len() - tail].t_us,
                frames: tail,
                detail: format!(
                    "per-frame throughput fell from a peak of {peak} elements to <= {floor} for the final {tail} frame pairs"
                ),
            });
        }
    }

    out.sort_by(|a, b| {
        (a.onset_us, a.kind, a.culprit.as_str()).cmp(&(b.onset_us, b.kind, b.culprit.as_str()))
    });
    out
}

// ---------------------------------------------------------------------------
// The postmortem bundle.

/// Everything a failed run leaves behind, in one document.
///
/// Foreign reports (stall report, guard reports, recovery report, fault
/// report) arrive as pre-serialized [`Value`] trees so this crate needs
/// no dependency on the crates that define them.
#[derive(Debug, Clone)]
pub struct PostmortemBundle {
    /// Run ID from the live [`crate::span::RunScope`], if any.
    pub run_id: Option<String>,
    /// What killed the run.
    pub trigger: Trigger,
    /// Resolved `FBLAS_*` knob values at capture time.
    pub knobs: Vec<(String, String)>,
    /// Wait-for-graph `StallReport`, when the failure produced one.
    pub stall: Option<Value>,
    /// Channel integrity `GuardReport`s, when faults were armed.
    pub guards: Option<Value>,
    /// Executor `RecoveryReport`, when the failure exhausted a budget.
    pub recovery: Option<Value>,
    /// Chaos `FaultReport`, when a harness attaches one.
    pub fault: Option<Value>,
    /// The last-window time series (wall-clock section).
    pub frames: Vec<Frame>,
    /// Anomalies detected over `frames` (wall-clock section).
    pub anomalies: Vec<Anomaly>,
    /// Final full metrics snapshot (wall-clock section).
    pub snapshot: Value,
}

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn key_value(key: &Key) -> Vec<(String, Value)> {
    vec![
        ("name".to_string(), Value::Str(key.name.clone())),
        (
            "labels".to_string(),
            Value::Object(
                key.labels
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                    .collect(),
            ),
        ),
    ]
}

fn frame_value(frame: &Frame) -> Value {
    let row_u64 = |k: &Key, v: u64| {
        let mut entries = key_value(k);
        entries.push(("value".to_string(), Value::U64(v)));
        Value::Object(entries)
    };
    let row_f64 = |k: &Key, v: f64| {
        let mut entries = key_value(k);
        entries.push(("value".to_string(), Value::F64(v)));
        Value::Object(entries)
    };
    obj(vec![
        ("t_us", Value::U64(frame.t_us)),
        (
            "counters",
            Value::Array(frame.counters.iter().map(|(k, v)| row_u64(k, *v)).collect()),
        ),
        (
            "gauges",
            Value::Array(frame.gauges.iter().map(|(k, v)| row_f64(k, *v)).collect()),
        ),
    ])
}

fn anomaly_value(a: &Anomaly) -> Value {
    obj(vec![
        ("kind", Value::Str(a.kind.label().to_string())),
        ("culprit", Value::Str(a.culprit.clone())),
        ("onset_us", Value::U64(a.onset_us)),
        ("frames", Value::U64(a.frames as u64)),
        ("detail", Value::Str(a.detail.clone())),
    ])
}

impl PostmortemBundle {
    fn value_with_wall(&self, wall: Value) -> Value {
        let opt = |v: &Option<Value>| v.clone().unwrap_or(Value::Null);
        obj(vec![
            ("schema", Value::Str(BUNDLE_SCHEMA.to_string())),
            (
                "run_id",
                match &self.run_id {
                    Some(id) => Value::Str(id.clone()),
                    None => Value::Null,
                },
            ),
            (
                "trigger",
                obj(vec![
                    ("kind", Value::Str(self.trigger.kind.clone())),
                    ("detail", Value::Str(self.trigger.detail.clone())),
                    (
                        "culprit",
                        match &self.trigger.culprit {
                            Some(c) => Value::Str(c.clone()),
                            None => Value::Null,
                        },
                    ),
                ]),
            ),
            (
                "knobs",
                Value::Object(
                    self.knobs
                        .iter()
                        // The bundle's own output directory is where the
                        // document lands, not how the run behaved — it
                        // stays out of the deterministic view, so keep
                        // the full view consistent by key order only.
                        .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                        .collect(),
                ),
            ),
            ("stall", opt(&self.stall)),
            ("guards", opt(&self.guards)),
            ("recovery", opt(&self.recovery)),
            ("fault", opt(&self.fault)),
            ("wall", wall),
        ])
    }

    /// The full document as an insertion-ordered value tree.
    pub fn to_value(&self) -> Value {
        self.value_with_wall(obj(vec![
            (
                "frames",
                Value::Array(self.frames.iter().map(frame_value).collect()),
            ),
            (
                "anomalies",
                Value::Array(self.anomalies.iter().map(anomaly_value).collect()),
            ),
            ("snapshot", self.snapshot.clone()),
        ]))
    }

    /// Full document rendered as byte-stable pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.to_value()).expect("bundle value tree serializes")
    }

    /// The document with every wall-clock-dependent field removed: the
    /// `"wall"` section is nulled and the environment-specific
    /// `FBLAS_FLIGHT_DIR` knob (the bundle's own output location) is
    /// dropped. Two seeded chaos runs render byte-identical
    /// deterministic documents.
    pub fn deterministic_value(&self) -> Value {
        let mut v = self.value_with_wall(Value::Null);
        if let Value::Object(entries) = &mut v {
            for (k, val) in entries.iter_mut() {
                if k == "knobs" {
                    if let Value::Object(knobs) = val {
                        knobs.retain(|(name, _)| name != "FBLAS_FLIGHT_DIR");
                    }
                }
            }
        }
        v
    }

    /// Deterministic document rendered as byte-stable pretty JSON.
    pub fn deterministic_json(&self) -> String {
        serde_json::to_string_pretty(&self.deterministic_value())
            .expect("bundle value tree serializes")
    }
}

fn last_slot() -> &'static Mutex<Option<Arc<PostmortemBundle>>> {
    static LAST: OnceLock<Mutex<Option<Arc<PostmortemBundle>>>> = OnceLock::new();
    LAST.get_or_init(|| Mutex::new(None))
}

/// Publish `bundle` as the process's most recent postmortem and return
/// the shared handle. Last writer wins.
pub fn record_bundle(bundle: PostmortemBundle) -> Arc<PostmortemBundle> {
    let bundle = Arc::new(bundle);
    *last_slot().lock() = Some(bundle.clone());
    bundle
}

/// The most recently captured postmortem bundle, if any.
pub fn last_bundle() -> Option<Arc<PostmortemBundle>> {
    last_slot().lock().clone()
}

/// Forget the last captured bundle (tests isolate themselves with this).
pub fn clear_last_bundle() {
    *last_slot().lock() = None;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(name: &str, channel: Option<&str>) -> Key {
        match channel {
            Some(c) => Key::new(name, &[("channel", c)]),
            None => Key::new(name, &[]),
        }
    }

    fn frame(
        t_us: u64,
        counters: &[(&str, Option<&str>, u64)],
        gauges: &[(&str, &str, f64)],
    ) -> Frame {
        Frame {
            t_us,
            counters: counters.iter().map(|(n, c, v)| (key(n, *c), *v)).collect(),
            gauges: gauges
                .iter()
                .map(|(n, c, v)| (key(n, Some(c)), *v))
                .collect(),
        }
    }

    #[test]
    fn ring_is_bounded_and_keeps_newest() {
        let rec = FlightRecorder::with_params(1, 3);
        let reg = Registry::new(1);
        let c = reg.counter("ticks_total", &[]);
        for i in 0..10u64 {
            c.add(1);
            rec.sample_now(&reg);
            std::thread::sleep(std::time::Duration::from_micros(5));
            let _ = i;
        }
        let frames = rec.frames();
        assert_eq!(frames.len(), 3);
        // Newest frames retained: the final counter totals.
        assert_eq!(frames.last().unwrap().counters[0].1, 10);
        assert!(frames.windows(2).all(|w| w[0].t_us <= w[1].t_us));
    }

    #[test]
    fn tick_honors_the_sampling_interval() {
        let rec = FlightRecorder::with_params(60_000_000, 8);
        let reg = Registry::new(1);
        assert!(rec.tick(&reg), "first tick always samples");
        assert!(!rec.tick(&reg), "second tick inside the interval skips");
        assert_eq!(rec.frames().len(), 1);
        rec.clear();
        assert!(rec.frames().is_empty());
        assert!(rec.tick(&reg), "clear resets the cadence gate");
    }

    #[test]
    fn detector_flags_occupancy_pinned_at_capacity() {
        let frames: Vec<Frame> = (0..6)
            .map(|i| {
                let occ = if i < 2 { 1.0 } else { 4.0 };
                frame(
                    i * 1000,
                    &[],
                    &[
                        ("fblas_channel_occupancy", "hot", occ),
                        ("fblas_channel_capacity", "hot", 4.0),
                        ("fblas_channel_occupancy", "cool", 1.0),
                        ("fblas_channel_capacity", "cool", 8.0),
                    ],
                )
            })
            .collect();
        let anomalies = detect(&frames);
        assert_eq!(anomalies.len(), 1, "{anomalies:?}");
        assert_eq!(anomalies[0].kind, AnomalyKind::OccupancyPinned);
        assert_eq!(anomalies[0].culprit, "hot");
        assert_eq!(anomalies[0].onset_us, 2000);
        assert_eq!(anomalies[0].frames, 4);
    }

    #[test]
    fn detector_flags_sustained_full_waits() {
        let frames: Vec<Frame> = (0..5)
            .map(|i| {
                frame(
                    i * 1000,
                    &[("fblas_channel_full_waits_total", Some("hot"), i * 3)],
                    &[],
                )
            })
            .collect();
        let anomalies = detect(&frames);
        assert_eq!(anomalies.len(), 1, "{anomalies:?}");
        assert_eq!(anomalies[0].kind, AnomalyKind::FullWaitSustained);
        assert_eq!(anomalies[0].culprit, "hot");
        assert_eq!(anomalies[0].onset_us, 0);
    }

    #[test]
    fn detector_flags_retry_spike() {
        let frames: Vec<Frame> = (0..4)
            .map(|i| {
                frame(
                    i * 1000,
                    &[("fblas_exec_retries_total", None, if i < 2 { 0 } else { i })],
                    &[],
                )
            })
            .collect();
        let anomalies = detect(&frames);
        assert_eq!(anomalies.len(), 1, "{anomalies:?}");
        assert_eq!(anomalies[0].kind, AnomalyKind::RetrySpike);
        assert_eq!(anomalies[0].culprit, "executor");
        assert_eq!(anomalies[0].onset_us, 2000);
    }

    #[test]
    fn detector_flags_throughput_collapse_with_channel_culprit() {
        // Channel "fast" moves 1000 elements/frame then flatlines;
        // "slow" idles throughout.
        let frames: Vec<Frame> = (0..8)
            .map(|i| {
                let fast_total = if i < 4 { i * 1000 } else { 3000 };
                frame(
                    i * 1000,
                    &[
                        (
                            "fblas_channel_push_elements_total",
                            Some("fast"),
                            fast_total,
                        ),
                        ("fblas_channel_push_elements_total", Some("slow"), i),
                    ],
                    &[],
                )
            })
            .collect();
        let anomalies = detect(&frames);
        assert_eq!(anomalies.len(), 1, "{anomalies:?}");
        assert_eq!(anomalies[0].kind, AnomalyKind::ThroughputCollapse);
        assert_eq!(anomalies[0].culprit, "fast");
        assert_eq!(anomalies[0].frames, 4);
    }

    #[test]
    fn detector_stays_quiet_on_healthy_frames() {
        let frames: Vec<Frame> = (0..6)
            .map(|i| {
                frame(
                    i * 1000,
                    &[
                        ("fblas_channel_push_elements_total", Some("hot"), i * 500),
                        ("fblas_exec_retries_total", None, 0),
                    ],
                    &[
                        ("fblas_channel_occupancy", "hot", (i % 3) as f64),
                        ("fblas_channel_capacity", "hot", 8.0),
                    ],
                )
            })
            .collect();
        assert!(detect(&frames).is_empty());
        assert!(detect(&frames[..1]).is_empty(), "one frame is never enough");
    }

    fn sample_bundle() -> PostmortemBundle {
        PostmortemBundle {
            run_id: Some("00000000deadbeef".to_string()),
            trigger: Trigger {
                kind: "stall".to_string(),
                detail: "deadlocked after 80 ms grace".to_string(),
                culprit: None,
            },
            knobs: vec![
                ("FBLAS_CHUNK".to_string(), "256".to_string()),
                ("FBLAS_FLIGHT_DIR".to_string(), "/tmp/xyz".to_string()),
            ],
            stall: Some(Value::Str("stall-report".to_string())),
            guards: None,
            recovery: None,
            fault: None,
            frames: vec![frame(
                0,
                &[("fblas_channel_push_elements_total", Some("hot"), 4)],
                &[("fblas_channel_occupancy", "hot", 4.0)],
            )],
            anomalies: vec![Anomaly {
                kind: AnomalyKind::OccupancyPinned,
                culprit: "hot".to_string(),
                onset_us: 0,
                frames: 1,
                detail: "pinned".to_string(),
            }],
            snapshot: Value::Str("snapshot".to_string()),
        }
    }

    #[test]
    fn bundle_json_is_byte_stable_and_round_trips() {
        let b = sample_bundle();
        let text = b.to_json();
        assert_eq!(text, b.to_json());
        assert!(crate::expo::snapshot_round_trips(&text), "round trip");
        assert!(text.contains(BUNDLE_SCHEMA));
        assert!(text.contains("occupancy_pinned"));
    }

    #[test]
    fn deterministic_json_excludes_wall_and_output_dir() {
        let b = sample_bundle();
        let det = b.deterministic_json();
        assert!(det.contains("\"wall\": null"));
        assert!(!det.contains("occupancy_pinned"), "anomalies are wall data");
        assert!(!det.contains("FBLAS_FLIGHT_DIR"));
        assert!(det.contains("FBLAS_CHUNK"));
        assert!(b.to_json().contains("FBLAS_FLIGHT_DIR"));
    }

    #[test]
    fn global_arming_and_last_bundle_slot() {
        // Process-global state: exercise the lifecycle in one test.
        disarm();
        assert!(recorder().is_none());
        let rec = install(FlightConfig::default());
        assert!(armed());
        assert_eq!(rec.capacity(), 500);
        assert_eq!(rec.interval_us(), 20_000);
        let _s = suppress_capture();
        assert!(capture_suppressed());
        {
            let _nested = suppress_capture();
            assert!(capture_suppressed());
        }
        assert!(capture_suppressed());
        drop(_s);
        assert!(!capture_suppressed());
        let b = record_bundle(sample_bundle());
        assert_eq!(last_bundle().unwrap().trigger.kind, b.trigger.kind);
        clear_last_bundle();
        assert!(last_bundle().is_none());
        disarm();
        assert!(recorder().is_none());
    }
}
