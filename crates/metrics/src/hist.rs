//! Log-linear latency histogram (HDR-style).
//!
//! Values are non-negative integers (microseconds by convention).
//! Buckets are exact below 16 and then split every octave into 16
//! linear sub-buckets, so relative error is bounded by 1/16 ≈ 6.25%
//! across the whole u64 range with a fixed 976-slot table. Recording is
//! a single relaxed `fetch_add` on a per-shard slot plus min/max
//! updates, so concurrent writers never contend on a lock; readers
//! aggregate all shards into a [`HistogramSnapshot`], and snapshots
//! merge losslessly (same bucket boundaries everywhere), which is what
//! makes sharded-then-merged quantiles identical to a single-shard
//! reference.

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per octave above the exact range.
const SUB_BUCKETS: usize = 16;
/// Values below this are their own bucket (exact).
const EXACT_LIMIT: u64 = 16;
/// Octaves above the exact range: exponents 4..=63.
const OCTAVES: usize = 60;
/// Total bucket count: 16 exact + 60 octaves × 16 sub-buckets.
pub const BUCKETS: usize = EXACT_LIMIT as usize + OCTAVES * SUB_BUCKETS;

/// Bucket index for a value.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < EXACT_LIMIT {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros() as usize; // 4..=63
        let sub = ((v >> (exp - 4)) & 0xF) as usize;
        EXACT_LIMIT as usize + (exp - 4) * SUB_BUCKETS + sub
    }
}

/// Lower bound of bucket `idx` — the representative value reported for
/// samples that landed in it.
#[inline]
pub fn bucket_lower(idx: usize) -> u64 {
    if idx < EXACT_LIMIT as usize {
        idx as u64
    } else {
        let rel = idx - EXACT_LIMIT as usize;
        let exp = rel / SUB_BUCKETS + 4;
        let sub = (rel % SUB_BUCKETS) as u64;
        (EXACT_LIMIT + sub) << (exp - 4)
    }
}

/// One writer shard: padded out so two shards never share a cache line.
#[repr(align(64))]
struct HistShard {
    count: AtomicU64,
    sum: AtomicU64,
    /// Minimum seen, `u64::MAX` when empty.
    min: AtomicU64,
    /// Maximum seen, `0` when empty (disambiguated by `count`).
    max: AtomicU64,
    buckets: Box<[AtomicU64]>,
}

impl HistShard {
    fn new() -> Self {
        let mut b = Vec::with_capacity(BUCKETS);
        b.resize_with(BUCKETS, || AtomicU64::new(0));
        HistShard {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: b.into_boxed_slice(),
        }
    }

    #[inline]
    fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }
}

/// Sharded log-linear histogram. Writers pick a shard by thread ordinal
/// (masked by the power-of-two shard count) so parallel recorders touch
/// disjoint cache lines.
pub struct Histogram {
    shards: Box<[HistShard]>,
    mask: usize,
}

impl Histogram {
    /// Create with `shards` writer shards (rounded up to a power of two,
    /// at least 1).
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, HistShard::new);
        Histogram {
            shards: v.into_boxed_slice(),
            mask: n - 1,
        }
    }

    /// Record one observation into the shard for `ordinal` (any
    /// per-thread number; masked internally).
    #[inline]
    pub fn record_at(&self, ordinal: usize, v: u64) {
        self.shards[ordinal & self.mask].record(v);
    }

    /// Record into the calling thread's shard.
    #[inline]
    pub fn record(&self, v: u64) {
        self.record_at(crate::registry::thread_ordinal(), v);
    }

    /// Aggregate every shard into a point-in-time snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::empty();
        for s in self.shards.iter() {
            let count = s.count.load(Ordering::Relaxed);
            if count == 0 {
                continue;
            }
            out.count += count;
            // Shard sums accumulate via wrapping atomic fetch_add, so
            // aggregate with the same mod-2^64 semantics.
            out.sum = out.sum.wrapping_add(s.sum.load(Ordering::Relaxed));
            out.min = out.min.min(s.min.load(Ordering::Relaxed));
            out.max = out.max.max(s.max.load(Ordering::Relaxed));
            for (i, b) in s.buckets.iter().enumerate() {
                let n = b.load(Ordering::Relaxed);
                if n != 0 {
                    out.buckets[i] += n;
                }
            }
        }
        out
    }
}

/// Immutable aggregate of one or more histogram shards.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observation (`u64::MAX` when empty).
    pub min: u64,
    /// Largest observation (`0` when empty).
    pub max: u64,
    /// Per-bucket counts, indexed by [`bucket_index`].
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// A snapshot with no observations.
    pub fn empty() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: vec![0; BUCKETS],
        }
    }

    /// Merge another snapshot into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the lower bound of the
    /// bucket holding the `ceil(q·count)`-th observation, clamped to
    /// `[min, max]` so single-sample histograms report exactly that
    /// sample. Returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank == self.count {
            // The top-ranked observation is tracked exactly.
            return Some(self.max);
        }
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(bucket_lower(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Mean of all observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_sixteen() {
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower(v as usize), v);
        }
    }

    #[test]
    fn lower_bound_inverts_index() {
        for &v in &[16u64, 17, 31, 32, 100, 255, 256, 1 << 20, u64::MAX] {
            let idx = bucket_index(v);
            let lo = bucket_lower(idx);
            assert!(lo <= v, "lower {lo} > value {v}");
            // Same bucket must map back to the same index.
            assert_eq!(bucket_index(lo), idx, "v={v}");
            // Relative error bound: width ≤ lower/16 above the exact range.
            assert!(v - lo <= lo / 16, "v={v} lo={lo}");
        }
    }

    #[test]
    fn quantiles_exact_for_single_sample() {
        let h = Histogram::new(4);
        h.record_at(3, 777);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(s.quantile(q), Some(777));
        }
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let s = Histogram::new(1).snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn median_of_uniform_range_is_accurate() {
        let h = Histogram::new(8);
        for v in 1..=1000u64 {
            h.record_at(v as usize, v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        let p50 = s.quantile(0.5).unwrap();
        // Within one bucket width (≤ 6.25%) of the true median.
        assert!((468..=532).contains(&p50), "p50={p50}");
        assert_eq!(s.quantile(1.0), Some(1000));
    }

    #[test]
    fn merge_matches_combined_recording() {
        let a = Histogram::new(2);
        let b = Histogram::new(2);
        let all = Histogram::new(1);
        for v in [3u64, 19, 40_000, 5, 7, 1 << 33] {
            all.record_at(0, v);
        }
        for v in [3u64, 19, 40_000] {
            a.record_at(0, v);
        }
        for v in [5u64, 7, 1 << 33] {
            b.record_at(1, v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
    }
}
