//! Request-scoped run IDs.
//!
//! A [`RunScope`] marks one logical request — lint → plan → execute →
//! recovery — with a [`RunId`] that every layer can read via
//! [`current_run_id`]. The current run lives in a *thread-local* slot:
//! every reader (the executor's report assembly, exposition snapshots,
//! postmortem capture — the simulator's watchdog runs inline on the
//! thread that called `Simulation::run`) executes on the thread that
//! entered the scope, and a serving layer holds one scope per worker
//! thread, so concurrent tenant requests get non-clashing run IDs and
//! distinct `postmortem-<runid>.json` bundles. Scopes nest (the guard
//! restores the previous run on drop) and are `!Send` — a guard must
//! drop on the thread that created it.

use std::cell::Cell;
use std::fmt;
use std::marker::PhantomData;

/// A 64-bit run identifier, rendered as 16 lowercase hex digits.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RunId(pub u64);

impl RunId {
    /// Derive a run ID deterministically from a seed (SplitMix64 mix),
    /// so seeded chaos runs produce byte-identical reports.
    pub fn from_seed(seed: u64) -> Self {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        RunId(z ^ (z >> 31))
    }

    /// Derive from wall-clock entropy plus a process-local sequence, for
    /// unseeded interactive runs.
    pub fn fresh() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::time::{SystemTime, UNIX_EPOCH};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        RunId::from_seed(nanos ^ SEQ.fetch_add(1, Ordering::Relaxed).rotate_left(32))
    }
}

impl fmt::Display for RunId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

thread_local! {
    static CURRENT: Cell<Option<RunId>> = const { Cell::new(None) };
}

/// The run ID of the innermost live [`RunScope`] on *this thread*, if
/// any.
pub fn current_run_id() -> Option<RunId> {
    CURRENT.with(Cell::get)
}

/// RAII guard marking the extent of one logical request. On drop the
/// previously current run (if any) is restored. `!Send`: the scope is
/// thread-local state and must drop on the thread that entered it.
pub struct RunScope {
    id: RunId,
    prev: Option<RunId>,
    _not_send: PhantomData<*const ()>,
}

impl RunScope {
    /// Enter a scope with an explicit ID.
    pub fn enter(id: RunId) -> Self {
        let prev = CURRENT.with(|c| c.replace(Some(id)));
        RunScope {
            id,
            prev,
            _not_send: PhantomData,
        }
    }

    /// Enter a scope with an ID derived from `seed`.
    pub fn seeded(seed: u64) -> Self {
        Self::enter(RunId::from_seed(seed))
    }

    /// This scope's run ID.
    pub fn id(&self) -> RunId {
        self.id
    }
}

impl Drop for RunScope {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_nest_and_restore() {
        let prev = current_run_id();
        let outer = RunScope::seeded(1);
        assert_eq!(current_run_id(), Some(outer.id()));
        {
            let inner = RunScope::seeded(2);
            assert_ne!(inner.id(), outer.id());
            assert_eq!(current_run_id(), Some(inner.id()));
        }
        assert_eq!(current_run_id(), Some(outer.id()));
        drop(outer);
        assert_eq!(current_run_id(), prev);
    }

    #[test]
    fn scopes_are_per_thread() {
        let _outer = RunScope::seeded(7);
        let mine = current_run_id();
        let theirs = std::thread::spawn(|| {
            assert_eq!(current_run_id(), None, "scope leaked across threads");
            let s = RunScope::seeded(8);
            (s.id(), current_run_id())
        })
        .join()
        .unwrap();
        assert_eq!(theirs.1, Some(theirs.0));
        assert_ne!(theirs.1, mine);
        assert_eq!(current_run_id(), mine, "other thread's scope bled back");
    }

    #[test]
    fn seeded_ids_are_deterministic_hex() {
        let a = RunId::from_seed(42);
        let b = RunId::from_seed(42);
        assert_eq!(a, b);
        let s = a.to_string();
        assert_eq!(s.len(), 16);
        assert!(s.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
