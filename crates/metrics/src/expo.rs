//! Exposition surfaces: Prometheus text format and a JSON snapshot.
//!
//! Both render from one [`Collected`] aggregate so a scrape and a
//! snapshot taken at the same instant agree. The JSON snapshot is an
//! insertion-ordered value tree whose serialization is byte-stable:
//! parsing the pretty text and re-serializing yields identical bytes
//! (ci.sh asserts this round trip), which is the schema contract the
//! serving layer's scrape endpoint will inherit.

use serde::Value;

use crate::hist::{bucket_lower, HistogramSnapshot};
use crate::registry::{Collected, Key};
use crate::span::current_run_id;

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn labels_value(key: &Key) -> Value {
    Value::Object(
        key.labels
            .iter()
            .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
            .collect(),
    )
}

fn hist_value(h: &HistogramSnapshot) -> Value {
    // Sparse bucket encoding: only non-empty buckets, as [lower, count]
    // pairs, so a 976-slot table serializes in a few lines.
    let buckets: Vec<Value> = h
        .buckets
        .iter()
        .enumerate()
        .filter(|(_, n)| **n != 0)
        .map(|(i, n)| Value::Array(vec![Value::U64(bucket_lower(i)), Value::U64(*n)]))
        .collect();
    let q = |p: f64| match h.quantile(p) {
        Some(v) => Value::U64(v),
        None => Value::Null,
    };
    obj(vec![
        ("count", Value::U64(h.count)),
        ("sum", Value::U64(h.sum)),
        (
            "min",
            if h.count == 0 {
                Value::Null
            } else {
                Value::U64(h.min)
            },
        ),
        (
            "max",
            if h.count == 0 {
                Value::Null
            } else {
                Value::U64(h.max)
            },
        ),
        ("p50", q(0.5)),
        ("p95", q(0.95)),
        ("p99", q(0.99)),
        ("buckets", Value::Array(buckets)),
    ])
}

/// Build the JSON snapshot of `collected` as a value tree. Top level:
/// `schema`, `run_id` (current scope or null), then sorted `counters`,
/// `gauges`, and `histograms` arrays of `{name, labels, ...}` rows.
pub fn snapshot_value(collected: &Collected) -> Value {
    let run_id = match current_run_id() {
        Some(id) => Value::Str(id.to_string()),
        None => Value::Null,
    };
    let counters: Vec<Value> = collected
        .counters
        .iter()
        .map(|(k, v)| {
            obj(vec![
                ("name", Value::Str(k.name.clone())),
                ("labels", labels_value(k)),
                ("value", Value::U64(*v)),
            ])
        })
        .collect();
    let gauges: Vec<Value> = collected
        .gauges
        .iter()
        .map(|(k, v)| {
            obj(vec![
                ("name", Value::Str(k.name.clone())),
                ("labels", labels_value(k)),
                ("value", Value::F64(*v)),
            ])
        })
        .collect();
    let histograms: Vec<Value> = collected
        .histograms
        .iter()
        .map(|(k, h)| {
            obj(vec![
                ("name", Value::Str(k.name.clone())),
                ("labels", labels_value(k)),
                ("hist", hist_value(h)),
            ])
        })
        .collect();
    obj(vec![
        ("schema", Value::Str("fblas-metrics-snapshot-v1".into())),
        ("run_id", run_id),
        ("counters", Value::Array(counters)),
        ("gauges", Value::Array(gauges)),
        ("histograms", Value::Array(histograms)),
    ])
}

/// JSON snapshot rendered as pretty text (the byte-stable form).
pub fn snapshot_json(collected: &Collected) -> String {
    serde_json::to_string_pretty(&snapshot_value(collected))
        .expect("snapshot value tree always serializes")
}

/// Render `collected` in Prometheus text exposition format. Counters
/// get a `# TYPE ... counter` header and `_total` semantics; gauges a
/// `gauge` header; histograms emit `_count`, `_sum`, and quantile
/// gauge lines (`{quantile="0.5"}` etc.), plus a `fblas_run_info`
/// gauge labeled with the current run ID when a scope is live.
pub fn prometheus_text(collected: &Collected) -> String {
    let mut out = String::new();
    let mut last_type_hdr = String::new();
    let mut type_hdr = |out: &mut String, name: &str, kind: &str| {
        if last_type_hdr != name {
            out.push_str(&format!("# TYPE {name} {kind}\n"));
            last_type_hdr = name.to_string();
        }
    };
    for (k, v) in &collected.counters {
        type_hdr(&mut out, &k.name, "counter");
        out.push_str(&format!("{} {v}\n", k.render()));
    }
    for (k, v) in &collected.gauges {
        type_hdr(&mut out, &k.name, "gauge");
        out.push_str(&format!("{} {v}\n", k.render()));
    }
    for (k, h) in &collected.histograms {
        type_hdr(&mut out, &k.name, "summary");
        let mut with = |extra: &[(&str, &str)], suffix: &str, val: String| {
            let mut labels: Vec<(&str, &str)> = k
                .labels
                .iter()
                .map(|(a, b)| (a.as_str(), b.as_str()))
                .collect();
            labels.extend_from_slice(extra);
            let key = Key::new(&format!("{}{suffix}", k.name), &labels);
            out.push_str(&format!("{} {val}\n", key.render()));
        };
        for (q, label) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
            if let Some(v) = h.quantile(q) {
                with(&[("quantile", label)], "", v.to_string());
            }
        }
        with(&[], "_count", h.count.to_string());
        with(&[], "_sum", h.sum.to_string());
    }
    if let Some(id) = current_run_id() {
        let key = Key::new("fblas_run_info", &[("run_id", &id.to_string())]);
        out.push_str(&format!(
            "# TYPE fblas_run_info gauge\n{} 1\n",
            key.render()
        ));
    }
    out
}

/// Verify the snapshot round trip: parse the pretty JSON text and
/// re-serialize; returns `true` when the bytes are identical. ci.sh
/// runs this as the snapshot-schema self-check.
pub fn snapshot_round_trips(text: &str) -> bool {
    match serde_json::from_str::<Value>(text) {
        Ok(v) => serde_json::to_string_pretty(&v).as_deref() == Ok(text),
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_registry() -> Registry {
        let reg = Registry::new(2);
        reg.counter("fblas_demo_ops_total", &[("kind", "push")])
            .add(7);
        reg.gauge("fblas_demo_depth", &[]).set(4.0);
        let h = reg.histogram("fblas_demo_us", &[]);
        for v in [5u64, 90, 1800] {
            h.record(v);
        }
        reg
    }

    #[test]
    fn prometheus_text_contains_all_series() {
        let reg = sample_registry();
        let text = prometheus_text(&reg.collect());
        assert!(text.contains("# TYPE fblas_demo_ops_total counter"));
        assert!(text.contains("fblas_demo_ops_total{kind=\"push\"} 7"));
        assert!(text.contains("fblas_demo_depth 4"));
        assert!(text.contains("fblas_demo_us_count 3"));
        assert!(text.contains("quantile=\"0.99\""));
    }

    #[test]
    fn snapshot_json_round_trips_byte_identical() {
        let reg = sample_registry();
        let text = snapshot_json(&reg.collect());
        assert!(snapshot_round_trips(&text));
        assert!(text.contains("\"fblas-metrics-snapshot-v1\""));
    }

    #[test]
    fn label_values_escape_exposition_special_chars() {
        // A channel name carrying a double-quote, a newline, and a
        // backslash must render escaped per the Prometheus exposition
        // format — one physical line whose value reads back verbatim.
        let reg = Registry::new(1);
        reg.counter(
            "fblas_channel_push_elements_total",
            &[("channel", "x\"mid\nend\\tail")],
        )
        .add(3);
        let collected = reg.collect();
        let text = prometheus_text(&collected);
        let line = text
            .lines()
            .find(|l| l.starts_with("fblas_channel_push_elements_total{"))
            .expect("counter line rendered");
        assert_eq!(
            line,
            "fblas_channel_push_elements_total{channel=\"x\\\"mid\\nend\\\\tail\"} 3"
        );
        // The JSON snapshot keeps its byte-stable round trip with the
        // same hostile label value.
        assert!(snapshot_round_trips(&snapshot_json(&collected)));
    }

    #[test]
    fn run_id_appears_in_both_surfaces_inside_scope() {
        let reg = sample_registry();
        let scope = crate::span::RunScope::seeded(99);
        let id = scope.id().to_string();
        let collected = reg.collect();
        assert!(prometheus_text(&collected).contains(&id));
        assert!(snapshot_json(&collected).contains(&id));
    }
}
