//! fblas-metrics: the always-on telemetry runtime.
//!
//! Everything the future serving layer scrapes mid-flight lives here:
//!
//! - **Sharded lock-free counters/gauges** ([`registry`]) — per-thread
//!   shards of relaxed atomics aggregated on read, registered by
//!   name + labels. Threaded through hlssim channels, the composition
//!   executor, and the chaos fault hooks.
//! - **Log-linear latency histograms** ([`hist`]) — HDR-style buckets
//!   with exact min/max and mergeable shards, recording per-routine and
//!   per-plan wall latency plus per-channel wait times in microseconds.
//! - **Request-scoped spans** ([`span`]) — a [`RunScope`] carries a
//!   [`RunId`] through lint → plan → execute → recovery so metric
//!   samples, trace events, and RecoveryReports correlate to one
//!   logical request.
//! - **Exposition** ([`expo`]) — Prometheus text format and a
//!   byte-stable JSON snapshot, both rendered from one aggregate.
//! - **Flight recorder** ([`flight`]) — a bounded ring of sampled
//!   counter/gauge frames, a rule-based anomaly detector, and the
//!   postmortem bundle captured when a run dies.
//!
//! # Arming
//!
//! The runtime is **disarmed by default**: every instrumentation site
//! first checks [`armed`], a single relaxed atomic load, so the
//! disarmed cost is one predictable branch. [`install`] arms the global
//! registry explicitly; [`arm_from_env`] arms it when `FBLAS_METRICS=1`
//! (shard count from `FBLAS_METRICS_SHARDS`). `bench_observe` measures
//! the armed-vs-disarmed gap and holds it under 3%.

pub mod expo;
pub mod flight;
pub mod hist;
pub mod registry;
pub mod span;

pub use hist::{Histogram, HistogramSnapshot};
pub use registry::{Collected, Counter, Gauge, Hist, Key, Registry, DEFAULT_SHARDS};
pub use span::{current_run_id, RunId, RunScope};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

static ARMED: AtomicBool = AtomicBool::new(false);

fn global() -> &'static OnceLock<Arc<Registry>> {
    static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
    &GLOBAL
}

/// Whether the global registry is armed. One relaxed load — the fast
/// path every instrumentation site pays when telemetry is off.
#[inline(always)]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Arm the global registry with `shards` writer shards. The first call
/// wins the registry identity; later calls just re-arm it. Returns the
/// installed registry.
pub fn install(shards: usize) -> Arc<Registry> {
    let reg = global()
        .get_or_init(|| Arc::new(Registry::new(shards)))
        .clone();
    ARMED.store(true, Ordering::Release);
    reg
}

/// Disarm the global registry: instrumentation sites go back to the
/// one-branch no-op. The registry and its accumulated values survive,
/// so `bench_observe` can flip arming per rep without re-registering.
pub fn disarm() {
    ARMED.store(false, Ordering::Release);
}

/// The global registry when armed, else `None`. Instrumentation sites
/// call this after [`armed`] returns true.
#[inline]
pub fn registry() -> Option<Arc<Registry>> {
    if !armed() {
        return None;
    }
    global().get().cloned()
}

/// The global registry regardless of arming (for exposition tools that
/// want to read after a run disarms). `None` if never installed.
pub fn registry_any() -> Option<Arc<Registry>> {
    global().get().cloned()
}

/// Arm from the environment: `FBLAS_METRICS=1` (or `true`/`on`) arms
/// with `FBLAS_METRICS_SHARDS` shards (default [`DEFAULT_SHARDS`]).
/// Returns whether the registry ended up armed.
pub fn arm_from_env() -> bool {
    let on = std::env::var("FBLAS_METRICS")
        .map(|v| matches!(v.trim(), "1" | "true" | "on"))
        .unwrap_or(false);
    if on {
        let shards = std::env::var("FBLAS_METRICS_SHARDS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|n| *n >= 1)
            .unwrap_or(DEFAULT_SHARDS);
        install(shards);
    }
    armed()
}

/// Elapsed-microseconds helper: returns µs since `start`, saturating
/// into u64 — the unit every fblas histogram records.
#[inline]
pub fn elapsed_us(start: std::time::Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arming_flips_fast_path_and_keeps_registry() {
        // Global state: run the whole lifecycle in one test.
        assert!(registry().is_none() || armed());
        let reg = install(2);
        assert!(armed());
        reg.counter("lifecycle_total", &[]).add(3);
        disarm();
        assert!(!armed());
        assert!(registry().is_none());
        // Values survive disarm and are visible via registry_any.
        let again = registry_any().unwrap();
        assert_eq!(again.counter("lifecycle_total", &[]).value(), 3);
        install(2);
        assert!(registry().is_some());
        disarm();
    }
}
