//! Property test: sharded-then-merged histograms report identical
//! quantiles to a single-shard reference, including the empty and
//! single-sample edge cases.

use fblas_metrics::hist::{Histogram, HistogramSnapshot};
use proptest::prelude::*;

fn quantile_grid(s: &HistogramSnapshot) -> Vec<Option<u64>> {
    [0.0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0]
        .iter()
        .map(|&q| s.quantile(q))
        .collect()
}

proptest! {
    #[test]
    fn sharded_merge_equals_single_shard(
        samples in proptest::collection::vec(0u64..u64::MAX, 0..512),
        shards in 1usize..16,
    ) {
        // Reference: every sample into one shard.
        let single = Histogram::new(1);
        for &v in &samples {
            single.record_at(0, v);
        }
        // Sharded: samples scattered across shards by index, then the
        // shards aggregate at snapshot time.
        let sharded = Histogram::new(shards);
        for (i, &v) in samples.iter().enumerate() {
            sharded.record_at(i, v);
        }
        let a = single.snapshot();
        let b = sharded.snapshot();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(quantile_grid(&a), quantile_grid(&b));

        // Merging per-shard snapshots pairwise must also agree: split
        // the samples into two independent histograms and merge.
        let left = Histogram::new(4);
        let right = Histogram::new(4);
        for (i, &v) in samples.iter().enumerate() {
            if i % 2 == 0 {
                left.record_at(i, v);
            } else {
                right.record_at(i, v);
            }
        }
        let mut merged = left.snapshot();
        merged.merge(&right.snapshot());
        prop_assert_eq!(&merged, &a);
        prop_assert_eq!(quantile_grid(&merged), quantile_grid(&a));
    }

    #[test]
    fn quantiles_bounded_by_min_max(
        samples in proptest::collection::vec(0u64..1_000_000, 1..256),
    ) {
        let h = Histogram::new(8);
        for (i, &v) in samples.iter().enumerate() {
            h.record_at(i, v);
        }
        let s = h.snapshot();
        let lo = *samples.iter().min().unwrap();
        let hi = *samples.iter().max().unwrap();
        prop_assert_eq!(s.min, lo);
        prop_assert_eq!(s.max, hi);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            let v = s.quantile(q).unwrap();
            prop_assert!(v >= lo && v <= hi, "q={} v={} lo={} hi={}", q, v, lo, hi);
        }
    }
}

#[test]
fn empty_and_single_sample_edges() {
    let empty = Histogram::new(4).snapshot();
    assert_eq!(empty.count, 0);
    assert!(quantile_grid(&empty).iter().all(|q| q.is_none()));
    let mut merged = empty.clone();
    merged.merge(&empty);
    assert_eq!(merged.count, 0);

    let one = Histogram::new(4);
    one.record_at(2, 123_456);
    let s = one.snapshot();
    assert!(quantile_grid(&s).iter().all(|q| *q == Some(123_456)));

    // Merging an empty snapshot is the identity.
    let mut with_empty = s.clone();
    with_empty.merge(&empty);
    assert_eq!(with_empty, s);
}
