//! Per-tenant token buckets.
//!
//! Accounting is in integer micro-tokens (one request = 10⁶ µtokens) so
//! refill arithmetic is exact and two runs of the same admission
//! sequence make identical decisions whenever refill is disabled
//! (`qps == 0`, the deterministic-test configuration) or the sequence
//! completes well inside one refill interval.

use std::collections::HashMap;
use std::time::Instant;

use parking_lot::Mutex;

/// µtokens per request.
const TOKEN: u64 = 1_000_000;

/// A shed decision: the bucket is empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverQuota {
    /// When a retry could succeed, milliseconds from now. `None` when
    /// the bucket never refills (`qps == 0`).
    pub retry_after_ms: Option<u64>,
}

struct Bucket {
    micro: u64,
    last: Instant,
}

/// Token buckets keyed by tenant name.
pub struct TenantQuotas {
    /// Refill rate, requests/sec. `0` disables refill — a bucket holds
    /// exactly `burst` admissions, ever (deterministic tests).
    qps: u32,
    /// Bucket capacity, requests.
    burst: u32,
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl TenantQuotas {
    /// Buckets refilling at `qps` with capacity `burst`.
    pub fn new(qps: u32, burst: u32) -> TenantQuotas {
        TenantQuotas {
            qps,
            burst: burst.max(1),
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Take one token for `tenant`, or explain the shed.
    pub fn admit(&self, tenant: &str) -> Result<(), OverQuota> {
        let now = Instant::now();
        let mut buckets = self.buckets.lock();
        let b = buckets.entry(tenant.to_string()).or_insert(Bucket {
            micro: u64::from(self.burst) * TOKEN,
            last: now,
        });
        if self.qps > 0 {
            let elapsed_us = now.duration_since(b.last).as_micros() as u64;
            b.micro = (b.micro + elapsed_us.saturating_mul(u64::from(self.qps)))
                .min(u64::from(self.burst) * TOKEN);
        }
        b.last = now;
        if b.micro >= TOKEN {
            b.micro -= TOKEN;
            Ok(())
        } else {
            let retry_after_ms = (self.qps > 0).then(|| {
                let per_ms = u64::from(self.qps) * 1_000;
                (TOKEN - b.micro).div_ceil(per_ms)
            });
            Err(OverQuota { retry_after_ms })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_admits_then_sheds_without_refill() {
        let q = TenantQuotas::new(0, 3);
        for _ in 0..3 {
            assert!(q.admit("a").is_ok());
        }
        let shed = q.admit("a").unwrap_err();
        assert_eq!(shed.retry_after_ms, None, "qps 0 never refills");
        // Tenants are isolated.
        assert!(q.admit("b").is_ok());
    }

    #[test]
    fn refilling_bucket_reports_retry_after() {
        let q = TenantQuotas::new(10, 1);
        assert!(q.admit("a").is_ok());
        let shed = q.admit("a").unwrap_err();
        let ms = shed.retry_after_ms.expect("refilling bucket has an ETA");
        assert!(
            (1..=100).contains(&ms),
            "10 qps refills one token in 100ms: {ms}"
        );
        std::thread::sleep(std::time::Duration::from_millis(120));
        assert!(q.admit("a").is_ok(), "token refilled");
    }
}
