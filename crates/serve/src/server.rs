//! The server: listener, admission, bounded worker pool, drain.
//!
//! One OS thread per connection reads JSON lines and runs *admission*
//! inline: drain gate → circuit breaker → tenant quota → fblas-lint →
//! bounded queue. Every rejection is an explicit structured response —
//! nothing is ever silently dropped. Admitted jobs cross a bounded
//! queue to a fixed worker pool; each worker enters a per-request
//! seeded [`RunScope`](fblas_metrics::RunScope) (thread-local, so
//! concurrent requests get distinct run IDs and postmortem bundles),
//! executes through `execute_plan_with_recovery` with the request's
//! deadline spread across its retry budget, and writes the response
//! back through the connection's shared write half (bounded by a write
//! timeout, so a client that stops reading loses its connection rather
//! than wedging a worker). Worker panics are caught and converted to
//! structured `panic` responses; the listener never dies with a
//! request.

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fblas_core::composition::{
    execute_plan_with_recovery_backend, plan, Backend, RecoveryErrorKind, RetryPolicy,
};
use fblas_core::host::DeviceBuffer;
use fblas_hlssim::env;
use fblas_hlssim::FaultHook;
use fblas_lint::{lint_document_full, Document};
use parking_lot::{Condvar, Mutex};
use serde::{Serialize, Value};

use crate::breaker::{shape_hash, Breakers};
use crate::protocol::{
    fill_value, parse_line, run_seed, wanted_outputs, Inbound, Request, Response, STATUS_FAILED,
    STATUS_OK, STATUS_REJECTED, STATUS_SHED,
};
use crate::quota::TenantQuotas;

/// Server configuration. [`ServeConfig::from_env`] reads the
/// `FBLAS_SERVE_*` knobs; tests and benches construct it directly
/// (notably with `tenant_qps: 0` for refill-free deterministic quotas).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`host:port`; port 0 binds an ephemeral port).
    pub addr: String,
    /// Execution worker threads.
    pub workers: usize,
    /// Admission queue depth; a full queue sheds.
    pub queue: usize,
    /// Per-tenant token refill, requests/sec (0 = no refill).
    pub tenant_qps: u32,
    /// Per-tenant bucket capacity, requests.
    pub tenant_burst: u32,
    /// Consecutive failures of one (tenant, plan shape) that open its
    /// breaker.
    pub breaker: u32,
    /// Graceful-drain timeout for queued + in-flight requests.
    pub drain: Duration,
    /// Socket write timeout per response line; a client that stops
    /// reading is disconnected once a blocked write exceeds this.
    pub write_timeout: Duration,
}

impl ServeConfig {
    /// The knob-driven configuration (`FBLAS_SERVE_*`).
    pub fn from_env() -> ServeConfig {
        let qps = env::serve_tenant_qps();
        ServeConfig {
            addr: env::serve_addr(),
            workers: env::serve_workers(),
            queue: env::serve_queue(),
            tenant_qps: qps,
            tenant_burst: qps,
            breaker: env::serve_breaker(),
            drain: env::serve_drain(),
            write_timeout: env::serve_write_timeout(),
        }
    }
}

/// Point-in-time server counters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct ServerStats {
    /// Requests past admission (queued for a worker).
    pub admitted: u64,
    /// Executed successfully.
    pub ok: u64,
    /// Executed and failed terminally (retry budget, deadline, panic).
    pub failed: u64,
    /// Rejected at admission: parse, lint, bad data.
    pub rejected: u64,
    /// Shed over-quota.
    pub shed_quota: u64,
    /// Shed on a full queue.
    pub shed_queue: u64,
    /// Shed while draining.
    pub shed_draining: u64,
    /// Fast-failed on an open breaker.
    pub breaker_fastfail: u64,
    /// Worker panics converted to structured responses.
    pub panics: u64,
    /// Requests whose deadline expired before execution started.
    pub deadline_expired: u64,
}

#[derive(Default)]
struct Stats {
    admitted: AtomicU64,
    ok: AtomicU64,
    failed: AtomicU64,
    rejected: AtomicU64,
    shed_quota: AtomicU64,
    shed_queue: AtomicU64,
    shed_draining: AtomicU64,
    breaker_fastfail: AtomicU64,
    panics: AtomicU64,
    deadline_expired: AtomicU64,
}

impl Stats {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            shed_quota: self.shed_quota.load(Ordering::Relaxed),
            shed_queue: self.shed_queue.load(Ordering::Relaxed),
            shed_draining: self.shed_draining.load(Ordering::Relaxed),
            breaker_fastfail: self.breaker_fastfail.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
        }
    }
}

/// The shared write half of one connection; responses are written
/// line-atomically under the lock.
///
/// Writes are bounded by the configured socket write timeout: a client
/// that pipelines requests but never reads fills its TCP receive window
/// and our send buffer, at which point the blocked `write_all` errors
/// out instead of wedging the calling worker forever. The first failed
/// write marks the connection dead and shuts the socket down — later
/// responses for it are discarded, the reader thread sees EOF and
/// exits, and no worker ever blocks on this connection again. A
/// non-reading tenant can only lose its *own* connection; it can never
/// starve the pool.
struct Conn {
    stream: Mutex<TcpStream>,
    dead: AtomicBool,
}

type Out = Arc<Conn>;

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream: Mutex::new(stream),
            dead: AtomicBool::new(false),
        }
    }

    /// Write one response line, or tear the connection down if the
    /// client has stopped reading (write timeout) or disconnected.
    fn write_line(&self, line: &str) {
        if self.dead.load(Ordering::Acquire) {
            return;
        }
        let mut s = self.stream.lock();
        if self.dead.load(Ordering::Acquire) {
            return;
        }
        let outcome = s
            .write_all(line.as_bytes())
            .and_then(|()| s.write_all(b"\n"))
            .and_then(|()| s.flush());
        if let Err(e) = outcome {
            self.dead.store(true, Ordering::Release);
            let _ = s.shutdown(Shutdown::Both);
            eprintln!("fblas-serve: dropping unresponsive connection: {e}");
        }
    }
}

struct Job {
    req: Request,
    shape: u64,
    admitted_at: Instant,
    deadline_at: Option<Instant>,
    out: Out,
}

#[derive(Debug, PartialEq, Eq)]
enum PushError {
    Full,
    Draining,
}

#[derive(Default)]
struct QueueState {
    jobs: VecDeque<Box<Job>>,
    in_flight: usize,
    draining: bool,
    stopped: bool,
}

/// Bounded MPMC job queue with drain support.
struct JobQueue {
    cap: usize,
    state: Mutex<QueueState>,
    pop_cv: Condvar,
    drain_cv: Condvar,
}

impl JobQueue {
    fn new(cap: usize) -> JobQueue {
        JobQueue {
            cap: cap.max(1),
            state: Mutex::new(QueueState::default()),
            pop_cv: Condvar::new(),
            drain_cv: Condvar::new(),
        }
    }

    fn try_push(&self, job: Box<Job>) -> Result<(), (Box<Job>, PushError)> {
        let mut s = self.state.lock();
        if s.draining || s.stopped {
            return Err((job, PushError::Draining));
        }
        if s.jobs.len() >= self.cap {
            return Err((job, PushError::Full));
        }
        s.jobs.push_back(job);
        drop(s);
        self.pop_cv.notify_one();
        Ok(())
    }

    fn pop(&self) -> Option<Box<Job>> {
        let mut s = self.state.lock();
        loop {
            if let Some(job) = s.jobs.pop_front() {
                s.in_flight += 1;
                return Some(job);
            }
            if s.stopped {
                return None;
            }
            self.pop_cv.wait(&mut s);
        }
    }

    fn done(&self) {
        let mut s = self.state.lock();
        s.in_flight = s.in_flight.saturating_sub(1);
        if s.jobs.is_empty() && s.in_flight == 0 {
            drop(s);
            self.drain_cv.notify_all();
        }
    }

    /// Stop admitting, wait (up to `timeout`) for queued + in-flight
    /// work to finish, then stop workers. Returns `(clean, lost)`:
    /// whether everything completed, and how many queued jobs were
    /// abandoned on timeout.
    fn drain(&self, timeout: Duration) -> (bool, usize) {
        let deadline = Instant::now() + timeout;
        let mut s = self.state.lock();
        s.draining = true;
        let clean = loop {
            if s.jobs.is_empty() && s.in_flight == 0 {
                break true;
            }
            let now = Instant::now();
            if now >= deadline {
                break false;
            }
            self.drain_cv.wait_for(&mut s, deadline - now);
        };
        let lost = s.jobs.len();
        s.jobs.clear();
        s.stopped = true;
        drop(s);
        self.pop_cv.notify_all();
        (clean, lost)
    }
}

const STATE_RUNNING: u8 = 0;
const STATE_DRAINING: u8 = 1;
const STATE_STOPPED: u8 = 2;

struct Inner {
    cfg: ServeConfig,
    queue: JobQueue,
    quotas: TenantQuotas,
    breakers: Breakers,
    state: AtomicU8,
    stats: Stats,
    /// `(clean, lost)` once a drain has completed.
    finished: Mutex<Option<(bool, usize)>>,
    finished_cv: Condvar,
}

impl Inner {
    fn stopped(&self) -> bool {
        self.state.load(Ordering::Acquire) == STATE_STOPPED
    }

    fn draining(&self) -> bool {
        self.state.load(Ordering::Acquire) != STATE_RUNNING
    }

    fn count(&self, tenant: &str, outcome: &str) {
        if let Some(reg) = fblas_metrics::registry() {
            reg.counter(
                "fblas_serve_requests_total",
                &[("tenant", tenant), ("outcome", outcome)],
            )
            .inc();
        }
    }

    fn observe_latency(&self, tenant: &str, us: u64) {
        if let Some(reg) = fblas_metrics::registry() {
            reg.histogram("fblas_serve_latency_us", &[("tenant", tenant)])
                .record(us);
        }
    }
}

/// Outcome of a graceful drain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrainOutcome {
    /// Every queued and in-flight request completed.
    pub clean: bool,
    /// Queued jobs abandoned on timeout (0 when clean).
    pub lost: usize,
    /// Final counters.
    pub stats: ServerStats,
}

/// A running server.
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    listener: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the worker pool and the listener, return.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        env::arm_metrics();
        env::arm_flight();
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            quotas: TenantQuotas::new(cfg.tenant_qps, cfg.tenant_burst),
            breakers: Breakers::new(cfg.breaker),
            queue: JobQueue::new(cfg.queue),
            state: AtomicU8::new(STATE_RUNNING),
            stats: Stats::default(),
            finished: Mutex::new(None),
            finished_cv: Condvar::new(),
            cfg,
        });
        let workers = (0..inner.cfg.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("fblas-serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        let accept_inner = Arc::clone(&inner);
        let accept = std::thread::Builder::new()
            .name("fblas-serve-listener".to_string())
            .spawn(move || accept_loop(listener, &accept_inner))?;
        Ok(Server {
            inner,
            addr,
            listener: Some(accept),
            workers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current counters.
    pub fn stats(&self) -> ServerStats {
        self.inner.stats.snapshot()
    }

    /// Block until a `drain` control request completes, then join every
    /// thread. Returns the drain outcome.
    pub fn wait(mut self) -> DrainOutcome {
        let (clean, lost) = {
            let mut fin = self.inner.finished.lock();
            while fin.is_none() {
                self.inner.finished_cv.wait(&mut fin);
            }
            fin.unwrap_or((false, 0))
        };
        self.join_threads();
        DrainOutcome {
            clean,
            lost,
            stats: self.inner.stats.snapshot(),
        }
    }

    /// Programmatic graceful drain: stop admitting, finish in-flight
    /// work, stop workers, join everything.
    pub fn drain(mut self) -> DrainOutcome {
        let (clean, lost) = initiate_drain(&self.inner);
        self.join_threads();
        DrainOutcome {
            clean,
            lost,
            stats: self.inner.stats.snapshot(),
        }
    }

    fn join_threads(&mut self) {
        if let Some(h) = self.listener.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Transition to draining, run the queue drain, mark stopped, flush the
/// final metrics snapshot, and wake `Server::wait`.
fn initiate_drain(inner: &Inner) -> (bool, usize) {
    inner.state.store(STATE_DRAINING, Ordering::Release);
    let (clean, lost) = inner.queue.drain(inner.cfg.drain);
    inner.state.store(STATE_STOPPED, Ordering::Release);
    flush_metrics_snapshot();
    let mut fin = inner.finished.lock();
    *fin = Some((clean, lost));
    drop(fin);
    inner.finished_cv.notify_all();
    (clean, lost)
}

/// Persist the final metrics snapshot next to the postmortem bundles
/// when both the registry and `FBLAS_FLIGHT_DIR` are live.
fn flush_metrics_snapshot() {
    let (Some(reg), Some(dir)) = (fblas_metrics::registry(), env::flight_dir()) else {
        return;
    };
    let path = dir.join("serve-final-metrics.json");
    let text = fblas_metrics::expo::snapshot_json(&reg.collect());
    if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, text)) {
        eprintln!(
            "fblas-serve: warning: failed to flush metrics snapshot {}: {e}",
            path.display()
        );
    }
}

fn accept_loop(listener: TcpListener, inner: &Arc<Inner>) {
    loop {
        if inner.stopped() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                // One JSON line per response: Nagle + delayed ACK would
                // otherwise add ~40ms to every lockstep roundtrip.
                stream.set_nodelay(true).ok();
                let inner = Arc::clone(inner);
                let spawned = std::thread::Builder::new()
                    .name("fblas-serve-conn".to_string())
                    .spawn(move || connection_loop(stream, &inner));
                if let Err(e) = spawned {
                    eprintln!("fblas-serve: warning: failed to spawn connection thread: {e}");
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => {
                eprintln!("fblas-serve: accept error: {e}");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

fn write_line(out: &Out, line: &str) {
    out.write_line(line);
}

fn connection_loop(stream: TcpStream, inner: &Arc<Inner>) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(150)));
    let _ = stream.set_write_timeout(Some(inner.cfg.write_timeout));
    let out: Out = match stream.try_clone() {
        Ok(w) => Arc::new(Conn::new(w)),
        Err(e) => {
            eprintln!("fblas-serve: failed to clone stream: {e}");
            return;
        }
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return,
            Ok(_) => {
                let trimmed = line.trim();
                if !trimmed.is_empty() {
                    handle_line(trimmed, &out, inner);
                }
                line.clear();
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                if inner.stopped() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

fn handle_line(line: &str, out: &Out, inner: &Arc<Inner>) {
    match parse_line(line) {
        Ok(Inbound::Control(verb)) => handle_control(&verb, out, inner),
        Ok(Inbound::Exec(req)) => admit(*req, out, inner),
        Err(e) => {
            // Salvage the id/tenant for correlation when present.
            let (id, tenant) = serde_json::from_str::<Value>(line)
                .map(|v| {
                    (
                        v.get("id").and_then(Value::as_u64).unwrap_or(0),
                        v.get("tenant")
                            .and_then(Value::as_str)
                            .unwrap_or("anonymous")
                            .to_string(),
                    )
                })
                .unwrap_or((0, "anonymous".to_string()));
            inner.stats.rejected.fetch_add(1, Ordering::Relaxed);
            inner.count(&tenant, "rejected");
            let resp = Response::skeleton(id, &tenant, STATUS_REJECTED, 400)
                .with_kind("parse")
                .with_detail(e);
            write_line(out, &resp.to_line());
        }
    }
}

fn handle_control(verb: &str, out: &Out, inner: &Arc<Inner>) {
    match verb {
        "ping" => write_line(out, r#"{"control":"ping","status":"ok"}"#),
        "stats" => {
            let stats = inner.stats.snapshot();
            let body = control_body("stats", "ok", &stats, None);
            write_line(out, &body);
        }
        "reset_breakers" => {
            inner.breakers.reset();
            write_line(out, r#"{"control":"reset_breakers","status":"ok"}"#);
        }
        "drain" => {
            let (clean, lost) = initiate_drain(inner);
            let stats = inner.stats.snapshot();
            let body = control_body(
                "drain",
                if clean { "ok" } else { "timeout" },
                &stats,
                Some(lost),
            );
            write_line(out, &body);
        }
        other => {
            write_line(
                out,
                &format!(r#"{{"control":{:?},"status":"unknown"}}"#, other),
            );
        }
    }
}

/// Render a control response with stats attached; field order fixed.
fn control_body(verb: &str, status: &str, stats: &ServerStats, lost: Option<usize>) -> String {
    let mut fields = vec![
        ("control".to_string(), Value::Str(verb.to_string())),
        ("status".to_string(), Value::Str(status.to_string())),
    ];
    if let Some(l) = lost {
        fields.push(("lost".to_string(), Value::U64(l as u64)));
    }
    fields.push(("stats".to_string(), stats.to_value()));
    // Invariant: plain data — serialization cannot fail.
    #[allow(clippy::disallowed_methods)]
    serde_json::to_string(&Value::Object(fields)).expect("control body always serializes")
}

/// Admission: drain gate → breaker → quota → lint → queue. Every exit
/// is a structured response.
fn admit(req: Request, out: &Out, inner: &Arc<Inner>) {
    let tenant = req.tenant.clone();
    if inner.draining() {
        inner.stats.shed_draining.fetch_add(1, Ordering::Relaxed);
        inner.count(&tenant, "shed_draining");
        let resp = Response::skeleton(req.id, &tenant, STATUS_SHED, 503)
            .with_kind("draining")
            .with_detail("server is draining; not admitting new work");
        write_line(out, &resp.to_line());
        return;
    }

    let shape = shape_hash(&req.program);
    if let Err(open) = inner.breakers.check(&tenant, shape) {
        inner.stats.breaker_fastfail.fetch_add(1, Ordering::Relaxed);
        inner.count(&tenant, "breaker_open");
        let mut resp = Response::skeleton(req.id, &tenant, STATUS_SHED, 503)
            .with_kind("breaker_open")
            .with_detail(format!(
                "circuit breaker open for this tenant's plan shape after {} consecutive failures",
                open.failures
            ));
        resp.postmortem = open.last_postmortem;
        write_line(out, &resp.to_line());
        return;
    }

    if let Err(over) = inner.quotas.admit(&tenant) {
        inner.stats.shed_quota.fetch_add(1, Ordering::Relaxed);
        inner.count(&tenant, "shed_quota");
        let mut resp = Response::skeleton(req.id, &tenant, STATUS_SHED, 429)
            .with_kind("quota")
            .with_detail("tenant token bucket empty");
        resp.retry_after_ms = over.retry_after_ms;
        write_line(out, &resp.to_line());
        return;
    }

    let lint = lint_document_full(&Document::Program(req.program.clone()), "<request>");
    if !lint.report.accepted() {
        inner.stats.rejected.fetch_add(1, Ordering::Relaxed);
        inner.count(&tenant, "rejected");
        let mut resp = Response::skeleton(req.id, &tenant, STATUS_REJECTED, 400)
            .with_kind("lint")
            .with_detail(format!(
                "rejected by fblas-lint with {} error(s)",
                lint.report.errors()
            ));
        resp.diagnostics = serde_json::to_value(&lint.report.diagnostics).ok();
        write_line(out, &resp.to_line());
        return;
    }

    let admitted_at = Instant::now();
    let deadline_at = req
        .deadline_ms
        .map(|ms| admitted_at + Duration::from_millis(ms));
    let job = Box::new(Job {
        shape,
        admitted_at,
        deadline_at,
        out: Arc::clone(out),
        req,
    });
    match inner.queue.try_push(job) {
        Ok(()) => {
            inner.stats.admitted.fetch_add(1, Ordering::Relaxed);
        }
        Err((job, PushError::Full)) => {
            inner.stats.shed_queue.fetch_add(1, Ordering::Relaxed);
            inner.count(&tenant, "shed_queue");
            let resp = Response::skeleton(job.req.id, &tenant, STATUS_SHED, 429)
                .with_kind("queue_full")
                .with_detail(format!("admission queue at capacity {}", inner.cfg.queue));
            write_line(&job.out, &resp.to_line());
        }
        Err((job, PushError::Draining)) => {
            inner.stats.shed_draining.fetch_add(1, Ordering::Relaxed);
            inner.count(&tenant, "shed_draining");
            let resp = Response::skeleton(job.req.id, &tenant, STATUS_SHED, 503)
                .with_kind("draining")
                .with_detail("server is draining; not admitting new work");
            write_line(&job.out, &resp.to_line());
        }
    }
}

fn worker_loop(inner: &Arc<Inner>) {
    while let Some(job) = inner.queue.pop() {
        let tenant = job.req.tenant.clone();
        let out = Arc::clone(&job.out);
        let t0 = Instant::now();
        let queue_us = t0.duration_since(job.admitted_at).as_micros() as u64;
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| execute_job(&job, inner)));
        let mut resp = match result {
            Ok(resp) => resp,
            Err(payload) => {
                inner.stats.panics.fetch_add(1, Ordering::Relaxed);
                let what = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic payload".to_string());
                Response::skeleton(job.req.id, &tenant, STATUS_FAILED, 500)
                    .with_kind("panic")
                    .with_detail(format!("worker panicked: {what}"))
            }
        };
        let latency_us = t0.elapsed().as_micros() as u64;
        resp.wall = Some(Value::Object(vec![
            ("latency_us".to_string(), Value::U64(latency_us)),
            ("queue_us".to_string(), Value::U64(queue_us)),
        ]));
        match resp.status.as_str() {
            STATUS_OK => {
                inner.stats.ok.fetch_add(1, Ordering::Relaxed);
                inner.count(&tenant, "ok");
            }
            _ => {
                inner.stats.failed.fetch_add(1, Ordering::Relaxed);
                inner.count(&tenant, resp.kind.as_deref().unwrap_or("failed"));
            }
        }
        inner.observe_latency(&tenant, latency_us);
        write_line(&out, &resp.to_line());
        inner.queue.done();
    }
}

/// Execute one admitted job to a terminal [`Response`]. Runs on a
/// worker thread inside a per-request seeded run scope.
fn execute_job(job: &Job, inner: &Arc<Inner>) -> Response {
    let req = &job.req;
    let id = req.id;
    let tenant = &req.tenant;

    // Deadline may already have expired in the queue.
    let remaining = match job.deadline_at {
        Some(at) => {
            let now = Instant::now();
            if now >= at {
                inner.stats.deadline_expired.fetch_add(1, Ordering::Relaxed);
                return Response::skeleton(id, tenant, STATUS_FAILED, 408)
                    .with_kind("deadline")
                    .with_detail("deadline expired before execution started");
            }
            Some(at - now)
        }
        None => None,
    };

    // Deliberate worker suicide: the chaos switch that validates panic
    // containment end to end. Caught by the worker's catch_unwind and
    // returned as a structured `panic` failure.
    if req
        .chaos
        .as_ref()
        .and_then(|c| c.panic_worker)
        .unwrap_or(false)
    {
        panic!("chaos: panic_worker armed for request {id}");
    }

    let run = fblas_metrics::RunScope::seeded(run_seed(req));
    let run_id = run.id().to_string();

    let program = match req.program.to_program() {
        Ok(p) => p,
        Err(e) => {
            return Response::skeleton(id, tenant, STATUS_REJECTED, 400)
                .with_kind("plan")
                .with_detail(e)
        }
    };
    let cfg = req.program.config.planner_config();
    let planned = match plan(&program, &cfg) {
        Ok(p) => p,
        Err(e) => {
            return Response::skeleton(id, tenant, STATUS_REJECTED, 400)
                .with_kind("plan")
                .with_detail(e.to_string())
        }
    };

    // Bind every non-scalar operand: explicit data, or deterministic
    // fill from `fill_seed`.
    let fill_seed = req.fill_seed.unwrap_or(0);
    let mut buffers: HashMap<String, DeviceBuffer<f64>> = HashMap::new();
    for od in &req.program.operands {
        let len = match od.kind.as_str() {
            "vector" => od.len.unwrap_or(0),
            "matrix" => od.rows.unwrap_or(0) * od.cols.unwrap_or(0),
            _ => continue,
        };
        let data = match req.data.as_ref().and_then(|d| d.get(&od.name)) {
            Some(v) if v.len() == len => v.clone(),
            Some(v) => {
                return Response::skeleton(id, tenant, STATUS_REJECTED, 400)
                    .with_kind("data")
                    .with_detail(format!(
                        "operand `{}`: got {} elements, expected {len}",
                        od.name,
                        v.len()
                    ))
            }
            None => (0..len)
                .map(|i| fill_value(fill_seed, &od.name, i))
                .collect(),
        };
        buffers.insert(od.name.clone(), DeviceBuffer::from_vec(&od.name, data, 0));
    }

    let max_attempts = req.retry_max.unwrap_or_else(env::retry_max).max(1);
    // Spread the remaining end-to-end budget across the attempts so the
    // budget bounds the whole retry loop, not each try.
    let per_attempt = remaining.map(|r| (r / max_attempts).max(Duration::from_millis(1)));
    let policy = RetryPolicy {
        max_attempts,
        deadline: per_attempt,
        backoff: Duration::ZERO,
        abft: true,
    };

    let hook: Option<Arc<dyn FaultHook>> = match &req.chaos {
        Some(doc) => match doc.to_fault_plan() {
            Ok(plan) => Some(Arc::new(plan)),
            Err(e) => {
                return Response::skeleton(id, tenant, STATUS_REJECTED, 400)
                    .with_kind("chaos")
                    .with_detail(e)
            }
        },
        None => None,
    };

    match execute_plan_with_recovery_backend::<f64>(
        &program,
        &planned,
        &cfg,
        &buffers,
        &policy,
        hook,
        None,
        Backend::resolve(),
    ) {
        Ok((outcome, report)) => {
            inner.breakers.record_success(tenant, job.shape);
            let mut resp = Response::skeleton(id, tenant, STATUS_OK, 200);
            resp.scalars = outcome.scalars.into_iter().collect();
            for name in wanted_outputs(req) {
                if let Some(buf) = buffers.get(&name) {
                    resp.outputs.insert(name, buf.to_host());
                }
            }
            resp.recovery = serde_json::to_value(&report).ok();
            resp.run_id = Some(run_id);
            resp
        }
        Err(err) => {
            let kind = RecoveryErrorKind::of(&err.error);
            let postmortem = postmortem_path(&run_id);
            inner
                .breakers
                .record_failure(tenant, job.shape, kind, postmortem.clone());
            let code = if kind == RecoveryErrorKind::Deadline {
                408
            } else {
                500
            };
            let mut resp = Response::skeleton(id, tenant, STATUS_FAILED, code)
                .with_kind(kind.as_str())
                .with_detail(format!(
                    "execution failed terminally after {} attempt(s)",
                    err.report.attempts.len()
                ));
            resp.recovery = serde_json::to_value(&err.report).ok();
            resp.postmortem = postmortem;
            resp.run_id = Some(run_id);
            resp
        }
    }
}

/// The postmortem bundle this run persisted, if capture was armed and
/// the file exists.
fn postmortem_path(run_id: &str) -> Option<String> {
    let dir = env::flight_dir()?;
    let path = dir.join(format!("postmortem-{run_id}.json"));
    std::fs::metadata(&path)
        .is_ok()
        .then(|| path.display().to_string())
}
