//! The JSON-lines wire protocol.
//!
//! One request per line, one response per line. A request is either an
//! **execution request** (a planner program plus operand data and
//! robustness envelope — tenant, deadline, retry budget, optional chaos
//! arming) or a **control request** (`{"control": "drain" | "stats" |
//! "ping" | "reset_breakers"}`). Responses carry a coarse `status`
//! (`ok` / `shed` / `rejected` / `failed`), an HTTP-flavored `code`,
//! and a machine-readable `kind` drawn from a stable vocabulary:
//! admission kinds (`quota`, `queue_full`, `draining`, `breaker_open`,
//! `parse`, `lint`, `data`) plus the executor's
//! [`RecoveryErrorKind`] names and `panic` for a poisoned worker.
//!
//! Field order is declaration order and map keys are sorted, so a
//! seeded request always serializes to byte-identical response bodies —
//! except the `wall` object, which carries wall-clock timings and is
//! the one field a deterministic byte-compare must drop
//! ([`Response::deterministic_line`] does).

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::Arc;

use fblas_chaos::FaultPlan;
use fblas_core::composition::RecoveryErrorKind;
use fblas_hlssim::{FaultAction, FaultSite, ModuleFault};
use fblas_lint::input::ProgramDoc;
use serde::{Deserialize, Serialize, Value};

/// One execution request.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Request {
    /// Client-chosen request ID, echoed on the response.
    pub id: u64,
    /// Tenant the request is accounted against.
    #[serde(default = "default_tenant")]
    pub tenant: String,
    /// End-to-end deadline from admission, milliseconds. Propagated to
    /// the per-attempt [`RetryPolicy`](fblas_core::composition::RetryPolicy)
    /// deadline and the simulator's wall-clock watchdog.
    #[serde(default)]
    pub deadline_ms: Option<u64>,
    /// Retry budget override (default: `FBLAS_RETRY_MAX`).
    #[serde(default)]
    pub retry_max: Option<u32>,
    /// Seed for deterministic operand fill when `data` omits an operand.
    #[serde(default)]
    pub fill_seed: Option<u64>,
    /// Explicit operand data by name (row-major for matrices).
    #[serde(default)]
    pub data: Option<HashMap<String, Vec<f64>>>,
    /// Operand buffers to return (default: every op's `out` operand).
    #[serde(default)]
    pub want: Option<Vec<String>>,
    /// Deterministic fault arming for this request (chaos tenants).
    #[serde(default)]
    pub chaos: Option<ChaosDoc>,
    /// The program to execute, in the lint `"program"` dialect.
    pub program: ProgramDoc,
}

fn default_tenant() -> String {
    "anonymous".to_string()
}

/// Deterministic fault plan riding on a request.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ChaosDoc {
    /// Fault-plan RNG seed.
    #[serde(default)]
    pub seed: Option<u64>,
    /// Stack each rule this many times — one-shot rules are spent per
    /// attempt, so `repeat: 3` makes three consecutive attempts fail.
    #[serde(default)]
    pub repeat: Option<u32>,
    /// Panic the worker thread itself instead of running — validates
    /// the server's panic containment (the request must come back as a
    /// structured `panic` failure and the worker must survive).
    #[serde(default)]
    pub panic_worker: Option<bool>,
    /// The rules.
    #[serde(default)]
    pub faults: Vec<FaultDoc>,
}

/// One fault rule. Channel rules name `site`/`channel`/`index` plus an
/// `action` (`corrupt` with `bit`, `drop`, `duplicate`, `delay` with
/// `micros`); module rules name `module` plus `action` (`crash`/`hang`).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FaultDoc {
    /// `"push"` or `"pop"` (channel rules).
    #[serde(default)]
    pub site: Option<String>,
    /// Channel name (channel rules).
    #[serde(default)]
    pub channel: Option<String>,
    /// Element index the rule fires at (channel rules).
    #[serde(default)]
    pub index: Option<u64>,
    /// Bit to flip for `corrupt`.
    #[serde(default)]
    pub bit: Option<u32>,
    /// Injected delay for `delay`, microseconds.
    #[serde(default)]
    pub micros: Option<u64>,
    /// Module name (module rules).
    #[serde(default)]
    pub module: Option<String>,
    /// `corrupt` (default when `bit` is set), `drop`, `duplicate`,
    /// `delay`, `crash`, `hang`.
    #[serde(default)]
    pub action: Option<String>,
}

impl ChaosDoc {
    /// Build the executable [`FaultPlan`], or explain why the spec is
    /// malformed.
    pub fn to_fault_plan(&self) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new(self.seed);
        let repeat = self.repeat.unwrap_or(1).max(1);
        for _ in 0..repeat {
            for (i, f) in self.faults.iter().enumerate() {
                plan = f.apply(plan, i)?;
            }
        }
        Ok(plan)
    }
}

impl FaultDoc {
    fn apply(&self, plan: FaultPlan, i: usize) -> Result<FaultPlan, String> {
        if let Some(module) = &self.module {
            let fault = match self.action.as_deref() {
                Some("crash") | None => ModuleFault::Crash,
                Some("hang") => ModuleFault::Hang,
                Some(other) => {
                    return Err(format!(
                        "fault #{i}: module action `{other}` (expected crash/hang)"
                    ))
                }
            };
            return Ok(plan.module_fault(module.clone(), fault));
        }
        let channel = self
            .channel
            .as_ref()
            .ok_or_else(|| format!("fault #{i}: needs `channel` or `module`"))?;
        let site = match self.site.as_deref() {
            Some("push") | None => FaultSite::Push,
            Some("pop") => FaultSite::Pop,
            Some(other) => return Err(format!("fault #{i}: site `{other}` (expected push/pop)")),
        };
        let index = self.index.unwrap_or(0);
        let action = match self.action.as_deref() {
            Some("corrupt") | None => FaultAction::Corrupt {
                bit: self.bit.unwrap_or(7),
            },
            Some("drop") => FaultAction::DropElement,
            Some("duplicate") => FaultAction::Duplicate,
            Some("delay") => FaultAction::Delay {
                micros: self.micros.unwrap_or(1000),
            },
            Some(other) => {
                return Err(format!(
                    "fault #{i}: channel action `{other}` (expected corrupt/drop/duplicate/delay)"
                ))
            }
        };
        Ok(plan.channel_fault(site, channel.clone(), index, action))
    }
}

/// Coarse response status.
pub const STATUS_OK: &str = "ok";
/// Over-quota or over-capacity: retry later; nothing executed.
pub const STATUS_SHED: &str = "shed";
/// Malformed or lint-rejected: retrying is pointless.
pub const STATUS_REJECTED: &str = "rejected";
/// Admitted and executed, but execution failed terminally.
pub const STATUS_FAILED: &str = "failed";

/// One response line.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Response {
    /// Echo of the request ID (0 when the ID could not be parsed).
    pub id: u64,
    /// Echo of the tenant.
    pub tenant: String,
    /// `ok` / `shed` / `rejected` / `failed`.
    pub status: String,
    /// HTTP-flavored numeric code: 200 ok, 400 rejected, 408 deadline,
    /// 429 shed (quota/queue), 500 execution failure, 503 unavailable
    /// (draining or open breaker).
    pub code: u32,
    /// Machine-readable failure kind; `None` on success.
    #[serde(default)]
    pub kind: Option<String>,
    /// Human-readable one-liner for logs; never needed to dispatch.
    #[serde(default)]
    pub detail: Option<String>,
    /// DOT results by scalar operand name.
    #[serde(default)]
    pub scalars: BTreeMap<String, f64>,
    /// Returned operand buffers by name.
    #[serde(default)]
    pub outputs: BTreeMap<String, Vec<f64>>,
    /// Full serialized [`RecoveryReport`](fblas_core::composition::RecoveryReport).
    #[serde(default)]
    pub recovery: Option<Value>,
    /// Lint diagnostics when `kind` is `lint`.
    #[serde(default)]
    pub diagnostics: Option<Value>,
    /// For `quota` sheds with a refilling bucket: when to retry.
    #[serde(default)]
    pub retry_after_ms: Option<u64>,
    /// Path of the postmortem bundle this failure produced, when the
    /// flight recorder is armed and `FBLAS_FLIGHT_DIR` is set.
    #[serde(default)]
    pub postmortem: Option<String>,
    /// Correlation run ID (16 hex digits) of the execution.
    #[serde(default)]
    pub run_id: Option<String>,
    /// Wall-clock timings (`latency_us`, `queue_us`). The only
    /// nondeterministic field; byte-compares must strip it.
    #[serde(default)]
    pub wall: Option<Value>,
}

impl Response {
    /// A skeleton response echoing `id`/`tenant` with empty payloads.
    pub fn skeleton(id: u64, tenant: &str, status: &str, code: u32) -> Response {
        Response {
            id,
            tenant: tenant.to_string(),
            status: status.to_string(),
            code,
            kind: None,
            detail: None,
            scalars: BTreeMap::new(),
            outputs: BTreeMap::new(),
            recovery: None,
            diagnostics: None,
            retry_after_ms: None,
            postmortem: None,
            run_id: None,
            wall: None,
        }
    }

    /// Set the machine-readable kind.
    pub fn with_kind(mut self, kind: impl Into<String>) -> Response {
        self.kind = Some(kind.into());
        self
    }

    /// Set the human-readable detail.
    pub fn with_detail(mut self, detail: impl Into<String>) -> Response {
        self.detail = Some(detail.into());
        self
    }

    /// The executor failure kind, when `kind` names one.
    pub fn recovery_kind(&self) -> Option<RecoveryErrorKind> {
        self.kind.as_deref().and_then(RecoveryErrorKind::parse)
    }

    /// Serialize to one wire line (no trailing newline).
    ///
    /// Invariant: the response is plain data — serialization cannot
    /// fail.
    #[allow(clippy::disallowed_methods)]
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("response always serializes")
    }

    /// The wire line with the `wall` object nulled — byte-stable across
    /// two runs of the same seeded workload.
    pub fn deterministic_line(&self) -> String {
        let mut r = self.clone();
        r.wall = None;
        r.to_line()
    }
}

/// Parse one wire line into a [`Response`] (client side).
pub fn parse_response(line: &str) -> Result<Response, String> {
    serde_json::from_str(line).map_err(|e| format!("bad response line: {e}"))
}

/// A classified inbound line.
#[derive(Debug)]
pub enum Inbound {
    /// An execution request.
    Exec(Box<Request>),
    /// A control verb: `drain`, `stats`, `ping`, `reset_breakers`.
    Control(String),
}

/// Classify and parse one request line.
pub fn parse_line(line: &str) -> Result<Inbound, String> {
    let v: Value = serde_json::from_str(line).map_err(|e| format!("malformed JSON: {e}"))?;
    if let Some(verb) = v.get("control").and_then(Value::as_str) {
        return Ok(Inbound::Control(verb.to_string()));
    }
    Request::from_value(&v)
        .map(|r| Inbound::Exec(Box::new(r)))
        .map_err(|e| format!("malformed request: {e}"))
}

/// The operand names an executed request returns: the explicit `want`
/// list, or every op's non-scalar `out` operand (deduplicated, in
/// program order).
pub fn wanted_outputs(req: &Request) -> Vec<String> {
    if let Some(w) = &req.want {
        return w.clone();
    }
    let mut outs = Vec::new();
    for op in &req.program.ops {
        if let Some(out) = &op.out {
            let is_scalar = req
                .program
                .operands
                .iter()
                .any(|o| &o.name == out && o.kind == "scalar");
            if !is_scalar && !outs.contains(out) {
                outs.push(out.clone());
            }
        }
    }
    outs
}

/// FNV-1a over bytes — the workspace's standing content-hash primitive.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The run seed a request executes under: deterministic in (tenant,
/// id, chaos seed), so two runs of the same seeded workload produce
/// identical run IDs, reports, and postmortem filenames.
pub fn run_seed(req: &Request) -> u64 {
    fnv1a(req.tenant.as_bytes())
        ^ req.id.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ req
            .chaos
            .as_ref()
            .and_then(|c| c.seed)
            .unwrap_or(0)
            .rotate_left(17)
}

/// Deterministic operand fill: element `i` of operand `name` under
/// `fill_seed`, in `[-1, 1)`. SplitMix64 over the mixed seed.
pub fn fill_value(fill_seed: u64, name: &str, i: usize) -> f64 {
    let mut z = fill_seed
        .wrapping_add(fnv1a(name.as_bytes()))
        .wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    ((z >> 11) as f64) / ((1u64 << 53) as f64) * 2.0 - 1.0
}

/// The stub for a fault hook shared across attempts.
pub type SharedFaultPlan = Arc<FaultPlan>;

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_program() -> &'static str {
        r#"{"id": 7, "tenant": "t0", "program": {"operands": [
              {"name":"x","kind":"vector","len":8},
              {"name":"o","kind":"vector","len":8}],
             "ops": [{"op":"scal","alpha":2.0,"x":"x","out":"o"}]}}"#
    }

    #[test]
    fn classifies_exec_and_control_lines() {
        match parse_line(tiny_program()).unwrap() {
            Inbound::Exec(r) => {
                assert_eq!(r.id, 7);
                assert_eq!(r.tenant, "t0");
                assert_eq!(wanted_outputs(&r), ["o"]);
            }
            other => panic!("expected exec, got {other:?}"),
        }
        match parse_line(r#"{"control": "drain"}"#).unwrap() {
            Inbound::Control(v) => assert_eq!(v, "drain"),
            other => panic!("expected control, got {other:?}"),
        }
        assert!(parse_line("not json").is_err());
        assert!(parse_line(r#"{"neither": 1}"#).is_err());
    }

    #[test]
    fn chaos_doc_builds_stacked_plans() {
        let doc = ChaosDoc {
            seed: Some(42),
            repeat: Some(3),
            panic_worker: None,
            faults: vec![FaultDoc {
                channel: Some("write_o".into()),
                index: Some(5),
                bit: Some(7),
                ..FaultDoc::default()
            }],
        };
        let plan = doc.to_fault_plan().unwrap();
        assert_eq!(plan.planned(), 3, "repeat stacks one-shot rules");
        let bad = ChaosDoc {
            faults: vec![FaultDoc::default()],
            ..ChaosDoc::default()
        };
        assert!(bad.to_fault_plan().is_err(), "rule without target rejected");
    }

    #[test]
    fn response_line_is_deterministic_modulo_wall() {
        let mut r = Response::skeleton(3, "t", STATUS_OK, 200);
        r.scalars.insert("beta".into(), 1.5);
        let a = r.to_line();
        r.wall = Some(Value::U64(12345));
        assert_ne!(r.to_line(), a);
        assert_eq!(r.deterministic_line(), a);
        let parsed = parse_response(&a).unwrap();
        assert_eq!(parsed.id, 3);
        assert_eq!(parsed.scalars["beta"], 1.5);
    }

    #[test]
    fn run_seed_and_fill_are_stable() {
        match parse_line(tiny_program()).unwrap() {
            Inbound::Exec(r) => {
                assert_eq!(run_seed(&r), run_seed(&r));
                let v = fill_value(9, "x", 3);
                assert_eq!(v, fill_value(9, "x", 3));
                assert!((-1.0..1.0).contains(&v));
                assert_ne!(v, fill_value(9, "x", 4));
                assert_ne!(v, fill_value(9, "y", 3));
            }
            other => panic!("{other:?}"),
        }
    }
}
