//! The fblas-serve daemon.
//!
//! ```text
//! fblas-serve [--addr HOST:PORT] [--workers N] [--queue N]
//!             [--tenant-qps N] [--breaker N] [--drain-ms N]
//!             [--write-ms N]
//! ```
//!
//! Flags override the `FBLAS_SERVE_*` knobs (see `fblas-hlssim`'s env
//! table). The process serves until a client sends
//! `{"control":"drain"}`, then drains gracefully and exits — 0 when
//! every queued and in-flight request completed, 1 when the drain
//! timed out and queued work was abandoned.

use std::process::ExitCode;
use std::time::Duration;

use fblas_serve::{ServeConfig, Server};

fn usage() -> ! {
    eprintln!(
        "usage: fblas-serve [--addr HOST:PORT] [--workers N] [--queue N] \
         [--tenant-qps N] [--breaker N] [--drain-ms N] [--write-ms N]"
    );
    std::process::exit(2);
}

fn parse_args(cfg: &mut ServeConfig) {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| match args.next() {
            Some(v) => v,
            None => {
                eprintln!("fblas-serve: {what} needs a value");
                usage();
            }
        };
        match arg.as_str() {
            "--addr" => cfg.addr = take("--addr"),
            "--workers" => match take("--workers").parse::<usize>() {
                Ok(n) if n >= 1 => cfg.workers = n.min(256),
                _ => usage(),
            },
            "--queue" => match take("--queue").parse::<usize>() {
                Ok(n) if n >= 1 => cfg.queue = n,
                _ => usage(),
            },
            "--tenant-qps" => match take("--tenant-qps").parse::<u32>() {
                Ok(n) => {
                    cfg.tenant_qps = n;
                    cfg.tenant_burst = n.max(1);
                }
                Err(_) => usage(),
            },
            "--breaker" => match take("--breaker").parse::<u32>() {
                Ok(n) if n >= 1 => cfg.breaker = n,
                _ => usage(),
            },
            "--drain-ms" => match take("--drain-ms").parse::<u64>() {
                Ok(n) => cfg.drain = Duration::from_millis(n),
                Err(_) => usage(),
            },
            "--write-ms" => match take("--write-ms").parse::<u64>() {
                Ok(n) if n >= 1 => cfg.write_timeout = Duration::from_millis(n),
                _ => usage(),
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("fblas-serve: unknown flag `{other}`");
                usage();
            }
        }
    }
}

fn main() -> ExitCode {
    let mut cfg = ServeConfig::from_env();
    parse_args(&mut cfg);
    let server = match Server::start(cfg.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fblas-serve: failed to bind {}: {e}", cfg.addr);
            return ExitCode::from(1);
        }
    };
    eprintln!(
        "fblas-serve: listening on {} ({} workers, queue {}, tenant qps {}, breaker {}, drain {:?})",
        server.addr(),
        cfg.workers,
        cfg.queue,
        cfg.tenant_qps,
        cfg.breaker,
        cfg.drain
    );
    let outcome = server.wait();
    eprintln!(
        "fblas-serve: drained ({}) — admitted {}, ok {}, failed {}, shed {}",
        if outcome.clean { "clean" } else { "timeout" },
        outcome.stats.admitted,
        outcome.stats.ok,
        outcome.stats.failed,
        outcome.stats.shed_quota + outcome.stats.shed_queue + outcome.stats.shed_draining,
    );
    if outcome.clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
