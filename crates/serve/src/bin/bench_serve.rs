//! Serving benchmark and deterministic smoke driver.
//!
//! Two modes:
//!
//! - `bench_serve --smoke [--dump-responses PATH]` — drive a fixed
//!   lockstep workload (one request outstanding at a time) against an
//!   in-process server with refill-free quotas, printing every
//!   response's [`Response::deterministic_line`]. Two runs of this mode
//!   must produce byte-identical dumps — `ci.sh` compares them — because
//!   lockstep serializes every admission decision and all wall-clock
//!   material lives in the stripped `wall` field. Exercises the whole
//!   robustness surface: success, lint rejection, quota shed, chaos
//!   exhaustion, breaker open/fast-fail/reset, stats, graceful drain.
//!
//! - `bench_serve` (default) — closed-loop latency/throughput sweep: at
//!   1, 4, and 8 workers, four healthy tenants (and, in the `armed`
//!   rows, one chaos tenant whose every request dies through the full
//!   retry budget) each run a lockstep request stream from their own
//!   connection. Reports RPS and p50/p95/p99 latency. Deterministic
//!   columns (`workers`, `chaos`, `requests`, `ok`, `failed`) are gated
//!   by bench-diff; wall-clock columns carry the volatile `cpu_` prefix
//!   and are exempt.
//!
//! ```text
//! cargo run --release -p fblas-serve --bin bench_serve [-- --smoke]
//! ```

use std::io::Write as _;
use std::time::{Duration, Instant};

use fblas_bench::metrics::{BenchReport, Cell};
use fblas_serve::{parse_response, Client, ServeConfig, Server};

/// A gemv request in the lint `"program"` dialect. `n` picks the plan
/// shape; `chaos_repeat` arms a stacked write-channel corruption that
/// outlives the retry budget when `>= retry_max`.
fn gemv_request(
    id: u64,
    tenant: &str,
    n: usize,
    fill_seed: u64,
    chaos_repeat: Option<u32>,
) -> String {
    let chaos = match chaos_repeat {
        Some(repeat) => format!(
            r#","retry_max":3,"chaos":{{"seed":4242,"repeat":{repeat},"faults":[{{"channel":"write_o","index":5,"bit":7}}]}}"#
        ),
        None => String::new(),
    };
    format!(
        r#"{{"id":{id},"tenant":"{tenant}","fill_seed":{fill_seed}{chaos},"program":{{"operands":[{{"name":"A","kind":"matrix","rows":{n},"cols":{n}}},{{"name":"x","kind":"vector","len":{n}}},{{"name":"y","kind":"vector","len":{n}}},{{"name":"o","kind":"vector","len":{n}}}],"ops":[{{"op":"gemv","alpha":1.5,"beta":-0.25,"a":"A","x":"x","y":"y","out":"o"}}],"config":{{"tn":{n},"tm":{n}}}}}}}"#
    )
}

/// A structurally broken program: `x` is referenced but never declared.
fn broken_request(id: u64, tenant: &str) -> String {
    format!(
        r#"{{"id":{id},"tenant":"{tenant}","program":{{"operands":[{{"name":"o","kind":"vector","len":8}}],"ops":[{{"op":"scal","alpha":2.0,"x":"x","out":"o"}}]}}}}"#
    )
}

/// The fixed smoke workload. Returns every deterministic response line
/// in order.
fn run_smoke() -> Vec<String> {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue: 8,
        tenant_qps: 0, // refill-free: every quota decision is exact
        tenant_burst: 4,
        breaker: 3,
        drain: Duration::from_secs(10),
        write_timeout: Duration::from_secs(5),
    })
    .expect("smoke server binds an ephemeral port");
    let mut c = Client::connect(server.addr()).expect("smoke client connects");
    let mut dump = Vec::new();
    let mut roundtrip = |line: &str, dump: &mut Vec<String>| {
        let resp = c.roundtrip_line(line).expect("smoke roundtrip");
        // Control responses carry no wall field; exec responses get it
        // stripped by re-serializing deterministically.
        let det = match parse_response(&resp) {
            Ok(r) => r.deterministic_line(),
            Err(_) => resp,
        };
        dump.push(det);
    };

    roundtrip(r#"{"control":"ping"}"#, &mut dump);
    // Healthy tenant: the same seeded request twice — identical bodies.
    roundtrip(&gemv_request(1, "alpha", 16, 7, None), &mut dump);
    roundtrip(&gemv_request(2, "alpha", 16, 7, None), &mut dump);
    // Admission: structurally broken program bounces with diagnostics.
    roundtrip(&broken_request(3, "badly"), &mut dump);
    // Quota: burst 4 admits four, sheds the fifth.
    for id in 4..=8 {
        roundtrip(&gemv_request(id, "bursty", 16, 1, None), &mut dump);
    }
    // Chaos tenant on its own 24×24 shape: three exhaustion failures
    // open that shape's breaker…
    for id in 9..=11 {
        roundtrip(&gemv_request(id, "chaos", 24, 2, Some(5)), &mut dump);
    }
    // …so the fourth fast-fails at admission without debiting quota,
    roundtrip(&gemv_request(12, "chaos", 24, 2, None), &mut dump);
    // while the healthy 16×16 shape is untouched by the neighbor's
    // breaker (alpha's quota: 2 spent + this = 3 ≤ 4).
    roundtrip(&gemv_request(13, "alpha", 16, 7, None), &mut dump);
    // Operators can close breakers; the shape then executes again.
    roundtrip(r#"{"control":"reset_breakers"}"#, &mut dump);
    roundtrip(&gemv_request(14, "chaos", 24, 2, None), &mut dump);
    roundtrip(r#"{"control":"stats"}"#, &mut dump);
    roundtrip(r#"{"control":"drain"}"#, &mut dump);
    let outcome = server.wait();
    assert!(outcome.clean, "smoke drain must complete cleanly");
    dump
}

/// One tenant's closed-loop stream: `count` lockstep requests on a
/// dedicated connection; returns per-request latencies in µs and the
/// (ok, failed) split.
fn drive_tenant(
    addr: std::net::SocketAddr,
    tenant: String,
    base_id: u64,
    count: usize,
    chaos: bool,
) -> (Vec<u64>, u64, u64) {
    let mut c = Client::connect(addr).expect("bench client connects");
    let mut lat = Vec::with_capacity(count);
    let (mut ok, mut failed) = (0u64, 0u64);
    for i in 0..count {
        let line = gemv_request(
            base_id + i as u64,
            &tenant,
            16,
            base_id + i as u64,
            chaos.then_some(5),
        );
        let t0 = Instant::now();
        let resp = c.roundtrip_line(&line).expect("bench roundtrip");
        lat.push(t0.elapsed().as_micros() as u64);
        let parsed = parse_response(&resp).expect("bench response parses");
        if parsed.status == "ok" {
            ok += 1;
        } else {
            failed += 1;
        }
    }
    (lat, ok, failed)
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One sweep point: `workers` workers, optionally a chaos tenant
/// alongside the four healthy ones.
fn bench_point(workers: usize, armed: bool, per_tenant: usize) -> Vec<(&'static str, Cell)> {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue: 1024,
        tenant_qps: 1_000_000, // never shed: counts stay deterministic
        tenant_burst: 1_000_000,
        breaker: 1_000_000, // never trip: chaos rows measure full retries
        drain: Duration::from_secs(30),
        write_timeout: Duration::from_secs(10),
    })
    .expect("bench server binds");
    let addr = server.addr();
    let t0 = Instant::now();
    let mut handles: Vec<std::thread::JoinHandle<(Vec<u64>, u64, u64)>> = (0..4)
        .map(|t| {
            let tenant = format!("tenant-{t}");
            std::thread::spawn(move || {
                drive_tenant(addr, tenant, (t as u64 + 1) * 10_000, per_tenant, false)
            })
        })
        .collect();
    if armed {
        handles.push(std::thread::spawn(move || {
            drive_tenant(addr, "chaos".to_string(), 90_000, per_tenant, true)
        }));
    }
    let mut lat = Vec::new();
    let (mut ok, mut failed) = (0u64, 0u64);
    for h in handles {
        let (l, o, f) = h.join().expect("bench tenant thread joins");
        lat.extend(l);
        ok += o;
        failed += f;
    }
    let wall = t0.elapsed().as_secs_f64();
    let outcome = server.drain();
    assert!(outcome.clean, "bench drain must complete cleanly");
    lat.sort_unstable();
    let total = ok + failed;
    vec![
        ("workers", Cell::U(workers as u64)),
        ("chaos", Cell::S(if armed { "armed" } else { "off" }.into())),
        ("requests", Cell::U(total)),
        ("ok", Cell::U(ok)),
        ("failed", Cell::U(failed)),
        ("cpu_rps", Cell::F(total as f64 / wall)),
        ("cpu_p50_us", Cell::U(percentile(&lat, 0.50))),
        ("cpu_p95_us", Cell::U(percentile(&lat, 0.95))),
        ("cpu_p99_us", Cell::U(percentile(&lat, 0.99))),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        let dump = run_smoke();
        let path = args
            .iter()
            .position(|a| a == "--dump-responses")
            .and_then(|i| args.get(i + 1));
        match path {
            Some(p) => {
                let mut f = std::fs::File::create(p).expect("create dump file");
                for line in &dump {
                    writeln!(f, "{line}").expect("write dump line");
                }
                println!("bench_serve --smoke: {} responses -> {p}", dump.len());
            }
            None => {
                for line in &dump {
                    println!("{line}");
                }
            }
        }
        return;
    }

    let per_tenant = args
        .iter()
        .position(|a| a == "--requests")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(20);
    let mut report = BenchReport::new("serve");
    report.meta("suite", Cell::S("serve-latency".into()));
    report.meta("tenants", Cell::U(4));
    report.meta("per_tenant_requests", Cell::U(per_tenant as u64));
    report.meta("gemv_n", Cell::U(16));
    println!(
        "{:>7} {:>6} {:>9} {:>6} {:>7} {:>10} {:>10} {:>10} {:>10}",
        "workers", "chaos", "requests", "ok", "failed", "rps", "p50_us", "p95_us", "p99_us"
    );
    for &workers in &[1usize, 4, 8] {
        for &armed in &[false, true] {
            let row = bench_point(workers, armed, per_tenant);
            let get_u = |k: &str| {
                row.iter()
                    .find(|(n, _)| *n == k)
                    .map(|(_, c)| match c {
                        Cell::U(v) => *v,
                        _ => 0,
                    })
                    .unwrap_or(0)
            };
            let rps = row
                .iter()
                .find(|(n, _)| *n == "cpu_rps")
                .map(|(_, c)| match c {
                    Cell::F(v) => *v,
                    _ => 0.0,
                })
                .unwrap_or(0.0);
            println!(
                "{:>7} {:>6} {:>9} {:>6} {:>7} {:>10.1} {:>10} {:>10} {:>10}",
                workers,
                if armed { "armed" } else { "off" },
                get_u("requests"),
                get_u("ok"),
                get_u("failed"),
                rps,
                get_u("cpu_p50_us"),
                get_u("cpu_p95_us"),
                get_u("cpu_p99_us"),
            );
            report.add_row(row);
        }
    }
    report.write().expect("write BENCH_serve.json");
}
