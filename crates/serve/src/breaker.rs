//! Per-(tenant, plan-shape) circuit breakers.
//!
//! A *plan shape* is the content hash of everything the planner and
//! executor see — ops, operand kinds and dimensions, planner config —
//! but **not** operand data. Requests that keep failing with
//! infrastructure kinds (stall, deadline, corruption, panic…) charge
//! their tenant's breaker for that shape; after a threshold of
//! *consecutive* failures the breaker opens and further requests
//! fast-fail at admission with the last postmortem bundle path instead
//! of burning a worker on a run that is going to die again. One
//! success closes the breaker.
//!
//! Breakers are keyed by **(tenant, shape)**, not shape alone: a
//! tenant whose requests keep failing for reasons of its own making —
//! a chaos-armed corruption storm, a deadline too tight to ever meet —
//! opens only *its* breaker. A neighbor submitting the structurally
//! identical program is admitted normally; one tenant can never
//! fast-fail another's valid traffic (cross-tenant denial of service).
//!
//! Caller-error kinds (`plan`, `error`) never trip a breaker — see
//! [`RecoveryErrorKind::trips_breaker`].

use std::collections::HashMap;

use fblas_core::composition::RecoveryErrorKind;
use fblas_lint::input::ProgramDoc;
use parking_lot::Mutex;

use crate::protocol::fnv1a;

/// Content-hash of a program's *shape* (FNV-1a; data-independent).
/// Operand references are mixed with their field tag (`a:`/`x:`/`y:`/
/// `out:`, absence as `-`) so the same name in different roles — or a
/// present operand vs an absent one — hashes differently.
pub fn shape_hash(doc: &ProgramDoc) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |s: &str| h = fnv1a(s.as_bytes()) ^ h.rotate_left(7);
    for od in &doc.operands {
        mix(&od.name);
        mix(&od.kind);
        mix(&format!(
            "{}x{}x{}",
            od.len.unwrap_or(0),
            od.rows.unwrap_or(0),
            od.cols.unwrap_or(0)
        ));
    }
    for op in &doc.ops {
        mix(&op.op);
        for (tag, v) in [("a", &op.a), ("x", &op.x), ("y", &op.y), ("out", &op.out)] {
            match v {
                Some(name) => mix(&format!("{tag}:{name}")),
                None => mix(&format!("{tag}:-")),
            }
        }
        mix(&format!("t{}", op.transposed.unwrap_or(false)));
    }
    mix(&format!(
        "cfg{}:{}:{}",
        doc.config.tn.unwrap_or(0),
        doc.config.tm.unwrap_or(0),
        doc.config.default_depth.unwrap_or(0)
    ));
    h
}

#[derive(Default)]
struct ShapeState {
    consecutive: u32,
    open: bool,
    last_postmortem: Option<String>,
}

/// What an open breaker tells the shed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerOpen {
    /// Consecutive failures that opened it.
    pub failures: u32,
    /// Path of the last postmortem bundle of this (tenant, shape), if
    /// one was persisted.
    pub last_postmortem: Option<String>,
}

/// Breakers for every (tenant, shape) pair seen this process.
pub struct Breakers {
    threshold: u32,
    states: Mutex<HashMap<(String, u64), ShapeState>>,
}

impl Breakers {
    /// Breakers opening after `threshold` consecutive breaker-eligible
    /// failures.
    pub fn new(threshold: u32) -> Breakers {
        Breakers {
            threshold: threshold.max(1),
            states: Mutex::new(HashMap::new()),
        }
    }

    /// Admission check: `Err` when this tenant's breaker for the shape
    /// is open.
    pub fn check(&self, tenant: &str, shape: u64) -> Result<(), BreakerOpen> {
        let states = self.states.lock();
        match states.get(&(tenant.to_string(), shape)) {
            Some(s) if s.open => Err(BreakerOpen {
                failures: s.consecutive,
                last_postmortem: s.last_postmortem.clone(),
            }),
            _ => Ok(()),
        }
    }

    /// A request of this (tenant, shape) completed: close and reset the
    /// breaker.
    pub fn record_success(&self, tenant: &str, shape: u64) {
        let mut states = self.states.lock();
        if let Some(s) = states.get_mut(&(tenant.to_string(), shape)) {
            s.consecutive = 0;
            s.open = false;
        }
    }

    /// A request of this (tenant, shape) failed terminally with `kind`;
    /// returns whether this failure opened the breaker.
    pub fn record_failure(
        &self,
        tenant: &str,
        shape: u64,
        kind: RecoveryErrorKind,
        postmortem: Option<String>,
    ) -> bool {
        if !kind.trips_breaker() {
            return false;
        }
        let mut states = self.states.lock();
        let s = states.entry((tenant.to_string(), shape)).or_default();
        s.consecutive += 1;
        if postmortem.is_some() {
            s.last_postmortem = postmortem;
        }
        if !s.open && s.consecutive >= self.threshold {
            s.open = true;
            return true;
        }
        false
    }

    /// Close every breaker (the `reset_breakers` control verb).
    pub fn reset(&self) {
        self.states.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fblas_lint::input::{ConfigDoc, OpDoc, OperandDoc};

    fn doc(len: usize) -> ProgramDoc {
        ProgramDoc {
            operands: vec![
                OperandDoc {
                    name: "x".into(),
                    kind: "vector".into(),
                    len: Some(len),
                    rows: None,
                    cols: None,
                },
                OperandDoc {
                    name: "o".into(),
                    kind: "vector".into(),
                    len: Some(len),
                    rows: None,
                    cols: None,
                },
            ],
            ops: vec![OpDoc {
                op: "scal".into(),
                alpha: Some(2.0),
                beta: None,
                a: None,
                x: Some("x".into()),
                y: None,
                out: Some("o".into()),
                transposed: None,
            }],
            config: ConfigDoc::default(),
        }
    }

    #[test]
    fn shape_hash_tracks_shape_not_data() {
        assert_eq!(shape_hash(&doc(8)), shape_hash(&doc(8)));
        assert_ne!(shape_hash(&doc(8)), shape_hash(&doc(16)));
        let mut alpha_differs = doc(8);
        alpha_differs.ops[0].alpha = Some(99.0);
        // α is data, not shape: the planner builds the same MDAG.
        assert_eq!(shape_hash(&doc(8)), shape_hash(&alpha_differs));
    }

    #[test]
    fn shape_hash_distinguishes_operand_roles() {
        // Same operand name, different field: `x:"x"` vs `a:"x"` must
        // not collide into one breaker state.
        let base = doc(8);
        let mut moved = doc(8);
        moved.ops[0].a = moved.ops[0].x.take();
        assert_ne!(shape_hash(&base), shape_hash(&moved));
        // Absence is mixed too: dropping `y` (already absent) is a
        // no-op, but dropping `out` changes the hash.
        let mut no_out = doc(8);
        no_out.ops[0].out = None;
        assert_ne!(shape_hash(&base), shape_hash(&no_out));
    }

    #[test]
    fn opens_after_threshold_and_closes_on_success() {
        let b = Breakers::new(2);
        let s = shape_hash(&doc(8));
        assert!(b.check("t", s).is_ok());
        assert!(!b.record_failure("t", s, RecoveryErrorKind::Corruption, None));
        assert!(b.check("t", s).is_ok(), "one failure below threshold");
        assert!(b.record_failure(
            "t",
            s,
            RecoveryErrorKind::Deadline,
            Some("/tmp/pm.json".into())
        ));
        let open = b.check("t", s).unwrap_err();
        assert_eq!(open.failures, 2);
        assert_eq!(open.last_postmortem.as_deref(), Some("/tmp/pm.json"));
        b.record_success("t", s);
        assert!(b.check("t", s).is_ok(), "success closes the breaker");
    }

    #[test]
    fn breakers_are_tenant_scoped() {
        // One tenant failing a shape must never open the breaker for a
        // neighbor submitting the structurally identical program.
        let b = Breakers::new(1);
        let s = shape_hash(&doc(8));
        assert!(b.record_failure("chaos", s, RecoveryErrorKind::Corruption, None));
        assert!(b.check("chaos", s).is_err(), "own breaker opens");
        assert!(
            b.check("healthy", s).is_ok(),
            "neighbor with the same shape is unaffected"
        );
        // And the neighbor's own failures charge only its key.
        assert!(b.record_failure("healthy", s, RecoveryErrorKind::Stall, None));
        b.record_success("chaos", s);
        assert!(b.check("chaos", s).is_ok());
        assert!(b.check("healthy", s).is_err());
    }

    #[test]
    fn caller_errors_never_trip() {
        let b = Breakers::new(1);
        let s = shape_hash(&doc(8));
        assert!(!b.record_failure("t", s, RecoveryErrorKind::Plan, None));
        assert!(!b.record_failure("t", s, RecoveryErrorKind::Error, None));
        assert!(b.check("t", s).is_ok());
        b.reset();
    }
}
