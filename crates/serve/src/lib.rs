//! fblas-serve: a fault-contained multi-tenant execution server.
//!
//! The rest of the workspace executes one planner program per process:
//! build, plan, run, exit. This crate turns that into a *service* — a
//! long-running process accepting planner programs over a JSON-lines
//! TCP protocol from many tenants at once, where one tenant's
//! pathological program (a plan that deadlocks, a chaos-armed
//! corruption storm, a worker panic) cannot take down or starve its
//! neighbors. Robustness is layered:
//!
//! - **Admission control** — every request passes through fblas-lint
//!   before touching a worker; structurally broken programs bounce with
//!   full diagnostics instead of wedging the simulator.
//! - **Tenant quotas** — integer token buckets per tenant; over-quota
//!   requests shed with `429`-style responses and a retry ETA.
//! - **Bounded queues** — admission backlog is explicit and finite;
//!   overload sheds loudly rather than growing latency silently.
//! - **Deadline propagation** — a request deadline bounds queue wait
//!   plus the *whole* retry loop, with per-attempt slices handed to the
//!   recovery executor's watchdog.
//! - **Circuit breakers** — a (tenant, plan shape) pair that keeps
//!   failing opens a breaker and fast-fails at admission, pointing at
//!   the last postmortem bundle; neighbors running the structurally
//!   identical program are unaffected.
//! - **Slow-reader disconnects** — response writes carry a socket
//!   write timeout; a client that stops reading loses its own
//!   connection instead of wedging a worker.
//! - **Panic isolation + graceful drain** — worker panics become
//!   structured responses; `{"control":"drain"}` stops admission,
//!   finishes in-flight work, flushes metrics, and exits clean.
//!
//! Protocol details live in [`protocol`]; the server in [`server`];
//! [`Client`] is the blocking lockstep client the tests, benches, and
//! CI smoke all share.

pub mod breaker;
pub mod protocol;
pub mod quota;
pub mod server;

pub use breaker::{shape_hash, BreakerOpen, Breakers};
pub use protocol::{
    parse_line, parse_response, wanted_outputs, ChaosDoc, FaultDoc, Inbound, Request, Response,
    STATUS_FAILED, STATUS_OK, STATUS_REJECTED, STATUS_SHED,
};
pub use quota::{OverQuota, TenantQuotas};
pub use server::{DrainOutcome, ServeConfig, Server, ServerStats};

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A blocking lockstep client: send one line, read one line.
///
/// Lockstep is the *deterministic* way to drive the server — with one
/// request outstanding at a time every admission decision (quota
/// debits, breaker transitions, queue occupancy) happens in a fixed
/// order, so a seeded workload replays to byte-identical
/// [`Response::deterministic_line`] transcripts.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connect to `addr` (e.g. the value of [`Server::addr`]) with a
    /// generous 60 s read timeout: a lockstep client that waits forever
    /// on a wedged server defeats the point of testing robustness.
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> std::io::Result<Client> {
        Client::connect_with_timeout(addr, Duration::from_secs(60))
    }

    /// Connect with an explicit read timeout; [`Client::read_line`]
    /// fails with [`std::io::ErrorKind::TimedOut`] once no response
    /// byte arrives within it.
    pub fn connect_with_timeout(
        addr: impl std::net::ToSocketAddrs,
        timeout: Duration,
    ) -> std::io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true).ok();
        writer.set_read_timeout(Some(timeout)).ok();
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { writer, reader })
    }

    /// Send one raw line and read one response line.
    pub fn roundtrip_line(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_line()
    }

    /// Read the next response line (blocking, up to the read timeout).
    pub fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        loop {
            match self.reader.read_line(&mut line) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    ))
                }
                Ok(_) => {
                    let trimmed = line.trim_end();
                    if !trimmed.is_empty() {
                        return Ok(trimmed.to_string());
                    }
                    line.clear();
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                // A socket read timeout surfaces as `WouldBlock` on
                // Unix and `TimedOut` on Windows; both mean the read
                // timeout fired. Retrying here would loop forever on a
                // wedged server — exactly what the timeout exists to
                // prevent — so fail the read instead.
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "timed out waiting for a response line",
                    ))
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Send an execution [`Request`], await and parse its [`Response`].
    pub fn exec(&mut self, req: &Request) -> std::io::Result<Response> {
        let line = serde_json::to_string(req)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let resp = self.roundtrip_line(&line)?;
        parse_response(&resp).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Send a control verb, return the raw response line.
    pub fn control(&mut self, verb: &str) -> std::io::Result<String> {
        self.roundtrip_line(&format!(r#"{{"control":{:?}}}"#, verb))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    /// Regression: a socket read timeout surfaces as `WouldBlock` on
    /// Unix; the client must treat it as a fatal timeout, not a retry,
    /// or a wedged server hangs every caller forever.
    #[test]
    fn client_read_times_out_on_silent_server() {
        // Bind but never accept/respond: the TCP handshake completes in
        // the kernel, then the server side stays silent.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("listener binds");
        let addr = listener.local_addr().expect("listener addr");
        let mut c = Client::connect_with_timeout(addr, Duration::from_millis(100))
            .expect("client connects");
        let t0 = Instant::now();
        let err = c
            .read_line()
            .expect_err("silent server must time the read out");
        assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "timeout must fire promptly, not after the 60s default"
        );
        drop(listener);
    }
}
