//! Metrics registry: counters, gauges, and histograms.
//!
//! **Superseded for run-level telemetry by the `fblas-metrics` crate**,
//! which owns the labelled counters/gauges/histograms, the Prometheus
//! and JSON exposition, and the flight recorder. This registry is
//! retained for *tracer-scoped* data only: the per-run counters the
//! audit pipeline reads (`fault.injected`, `recovery.retries`,
//! `recovery.failures`) and the snapshots bench outputs embed. New
//! instrumentation should go to `fblas-metrics`, not here.

use std::collections::BTreeMap;

use parking_lot::Mutex;
use serde::Serialize;

/// Log₂-bucketed histogram: bucket `i` counts values in `[2^(i-1), 2^i)`
/// (bucket 0 counts values `< 1`). Enough resolution to distinguish a
/// 2 µs stall from a 2 ms one without storing samples.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Histogram {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Log₂ bucket counts.
    pub buckets: Vec<u64>,
}

const BUCKETS: usize = 32;

impl Histogram {
    fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: vec![0; BUCKETS],
        }
    }

    fn observe(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let ix = if value < 1.0 {
            0
        } else {
            ((value.log2() as usize) + 1).min(BUCKETS - 1)
        };
        self.buckets[ix] += 1;
    }

    /// Mean of all observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Point-in-time copy of the registry contents.
#[derive(Debug, Clone, Serialize)]
pub struct MetricsSnapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
}

/// Thread-safe registry of named counters, gauges, and histograms.
///
/// Deprecated in favour of `fblas-metrics` for anything that is not
/// tied to a single [`Tracer`](crate::Tracer)'s lifetime — see the
/// module docs for what still legitimately lives here.
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, f64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }
    }

    /// Add `delta` to a counter, creating it at zero if absent.
    pub fn counter_add(&self, name: &str, delta: u64) {
        *self.counters.lock().entry(name.to_string()).or_insert(0) += delta;
    }

    /// Set a gauge to `value`.
    pub fn gauge_set(&self, name: &str, value: f64) {
        self.gauges.lock().insert(name.to_string(), value);
    }

    /// Record one observation into a histogram.
    pub fn histogram_observe(&self, name: &str, value: f64) {
        self.histograms
            .lock()
            .entry(name.to_string())
            .or_insert_with(Histogram::new)
            .observe(value);
    }

    /// Copy out the current contents.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.lock().clone(),
            gauges: self.gauges.lock().clone(),
            histograms: self.histograms.lock().clone(),
        }
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let reg = MetricsRegistry::new();
        reg.counter_add("transfers", 3);
        reg.counter_add("transfers", 4);
        reg.gauge_set("depth", 8.0);
        reg.gauge_set("depth", 16.0);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["transfers"], 7);
        assert_eq!(snap.gauges["depth"], 16.0);
    }

    #[test]
    fn histogram_buckets_by_magnitude() {
        let reg = MetricsRegistry::new();
        for v in [0.5, 1.5, 2.0, 1000.0] {
            reg.histogram_observe("stall_us", v);
        }
        let snap = reg.snapshot();
        let h = &snap.histograms["stall_us"];
        assert_eq!(h.count, 4);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 1000.0);
        assert_eq!(h.buckets[0], 1); // 0.5
        assert!((h.mean() - 251.0).abs() < 1.0);
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let reg = MetricsRegistry::new();
        reg.counter_add("n", 1);
        reg.histogram_observe("h", 2.0);
        let text = serde_json::to_string(&reg.snapshot()).unwrap();
        assert!(text.contains("\"counters\""));
        assert!(text.contains("\"histograms\""));
    }
}
