//! Chrome/Perfetto `trace_event` JSON exporter.
//!
//! Produces the classic JSON object format (`{"traceEvents": [...]}`)
//! that both `chrome://tracing` and [ui.perfetto.dev](https://ui.perfetto.dev)
//! load directly. Layout: one process ("fblas simulation"), one thread
//! lane per module. Each lane opens with a `"B"`/`"E"` duration pair
//! spanning the module scope (entry to flush), carries the module's run
//! as a complete (`"X"`) span, stall spans colored by kind (full-FIFO
//! waits red, empty-FIFO waits orange), and push/pop instants.
//! Channel-occupancy time series sampled by the watchdog become counter
//! (`"C"`) tracks.

use serde_json::Value;

use crate::{EventKind, Tracer};

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn s(text: impl Into<String>) -> Value {
    Value::Str(text.into())
}

/// Build the `trace_event` document for everything `tracer` recorded.
pub fn trace_value(tracer: &Tracer) -> Value {
    let mut events: Vec<Value> = Vec::new();
    let pid = Value::U64(1);

    for (ix, lane) in tracer.lanes().iter().enumerate() {
        let tid = Value::U64(ix as u64 + 1);
        // Lane label.
        events.push(obj(vec![
            ("ph", s("M")),
            ("name", s("thread_name")),
            ("pid", pid.clone()),
            ("tid", tid.clone()),
            ("args", obj(vec![("name", s(&lane.module))])),
        ]));
        // Lane scope as a B/E pair: everything the module recorded nests
        // inside it, giving the UI a per-lane grouping row.
        events.push(obj(vec![
            ("ph", s("B")),
            ("name", s(format!("scope {}", lane.module))),
            ("cat", s("scope")),
            ("pid", pid.clone()),
            ("tid", tid.clone()),
            ("ts", Value::U64(lane.started_us)),
        ]));
        for ev in &lane.events {
            let chan = ev.channel.as_deref().unwrap_or("");
            match ev.kind {
                EventKind::ModuleRun => events.push(obj(vec![
                    ("ph", s("X")),
                    ("name", s(&lane.module)),
                    ("cat", s("module")),
                    ("pid", pid.clone()),
                    ("tid", tid.clone()),
                    ("ts", Value::U64(ev.start_us)),
                    ("dur", Value::U64(ev.dur_us.max(1))),
                ])),
                EventKind::FullStall | EventKind::EmptyStall => {
                    let (label, color) = match ev.kind {
                        EventKind::FullStall => ("full", "terrible"), // red
                        _ => ("empty", "bad"),                        // orange
                    };
                    events.push(obj(vec![
                        ("ph", s("X")),
                        ("name", s(format!("stall[{label}] {chan}"))),
                        ("cat", s("stall")),
                        ("cname", s(color)),
                        ("pid", pid.clone()),
                        ("tid", tid.clone()),
                        ("ts", Value::U64(ev.start_us)),
                        ("dur", Value::U64(ev.dur_us.max(1))),
                        ("args", obj(vec![("channel", s(chan))])),
                    ]));
                }
                EventKind::Push | EventKind::Pop => {
                    let verb = match ev.kind {
                        EventKind::Push => "push",
                        _ => "pop",
                    };
                    if ev.count > 1 {
                        // A batched transfer: one complete span covering
                        // the whole chunk operation.
                        events.push(obj(vec![
                            ("ph", s("X")),
                            ("name", s(format!("{verb}\u{00d7}{} {chan}", ev.count))),
                            ("cat", s("channel")),
                            ("pid", pid.clone()),
                            ("tid", tid.clone()),
                            ("ts", Value::U64(ev.start_us)),
                            ("dur", Value::U64(ev.dur_us.max(1))),
                            (
                                "args",
                                obj(vec![
                                    ("channel", s(chan)),
                                    ("elements", Value::U64(ev.count)),
                                ]),
                            ),
                        ]));
                    } else {
                        events.push(obj(vec![
                            ("ph", s("i")),
                            ("name", s(format!("{verb} {chan}"))),
                            ("cat", s("channel")),
                            ("s", s("t")),
                            ("pid", pid.clone()),
                            ("tid", tid.clone()),
                            ("ts", Value::U64(ev.start_us)),
                        ]));
                    }
                }
            }
        }
        events.push(obj(vec![
            ("ph", s("E")),
            ("name", s(format!("scope {}", lane.module))),
            ("cat", s("scope")),
            ("pid", pid.clone()),
            ("tid", tid.clone()),
            ("ts", Value::U64(lane.ended_us.max(lane.started_us))),
        ]));
    }

    // Occupancy (and any other sampled) series as counter tracks.
    for (name, samples) in tracer.series() {
        for (t_us, value) in samples {
            events.push(obj(vec![
                ("ph", s("C")),
                ("name", s(&name)),
                ("pid", pid.clone()),
                ("ts", Value::U64(t_us)),
                ("args", obj(vec![("value", Value::F64(value))])),
            ]));
        }
    }

    let mut other = vec![
        ("producer", s("fblas-trace")),
        ("schema", s("chrome-trace-event")),
    ];
    if let Some(run_id) = tracer.run_id() {
        // Correlation key: the same 16-hex run ID that appears in the
        // metrics snapshot, the Prometheus dump, and the RecoveryReport.
        other.push(("run_id", s(run_id)));
    }
    if let Some(backend) = tracer.backend() {
        // Which execution path produced the trace: threaded hlssim,
        // fused single-loop kernels, or auto (fused where legal).
        other.push(("backend", s(backend)));
    }
    obj(vec![
        ("traceEvents", Value::Array(events)),
        ("displayTimeUnit", s("ms")),
        ("otherData", obj(other)),
    ])
}

/// The document as pretty-printed JSON text.
pub fn trace_json(tracer: &Tracer) -> String {
    serde_json::to_string_pretty(&trace_value(tracer)).expect("value tree always serializes")
}

/// Write the document to a file.
pub fn write_trace(tracer: &Tracer, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
    std::fs::write(path, trace_json(tracer))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{record_channel_op, ModuleScope};
    use std::sync::Arc;

    #[test]
    fn export_contains_one_complete_span_per_module() {
        let tracer = Tracer::new();
        for name in ["alpha", "beta"] {
            let _scope = ModuleScope::enter(name, Some(&tracer));
            let ch: Arc<str> = Arc::from("ch");
            record_channel_op(EventKind::Push, &ch, 0, true);
        }
        tracer.record_sample("occ:ch", 5, 2.0);

        let text = trace_json(&tracer);
        let doc: Value = serde_json::from_str(&text).expect("exporter emits valid JSON");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();

        for name in ["alpha", "beta"] {
            let spans: Vec<_> = events
                .iter()
                .filter(|e| {
                    e.get("ph").and_then(Value::as_str) == Some("X")
                        && e.get("cat").and_then(Value::as_str) == Some("module")
                        && e.get("name").and_then(Value::as_str) == Some(name)
                })
                .collect();
            assert_eq!(
                spans.len(),
                1,
                "module {name} must have exactly one run span"
            );
            assert!(spans[0].get("dur").and_then(Value::as_u64).unwrap() >= 1);
        }
        // Stall spans are colored.
        assert!(events.iter().any(|e| {
            e.get("cat").and_then(Value::as_str) == Some("stall")
                && e.get("cname").and_then(Value::as_str).is_some()
        }));
        // The counter series is present.
        assert!(events
            .iter()
            .any(|e| e.get("ph").and_then(Value::as_str) == Some("C")));
    }

    #[test]
    fn other_data_carries_the_backend_tag_when_set() {
        let tracer = Tracer::new();
        {
            let _scope = ModuleScope::enter("m", Some(&tracer));
        }
        // Untagged tracers omit the key entirely (old traces stay stable).
        let doc: Value = serde_json::from_str(&trace_json(&tracer)).unwrap();
        assert!(doc.get("otherData").unwrap().get("backend").is_none());

        tracer.set_backend("fused");
        let doc: Value = serde_json::from_str(&trace_json(&tracer)).unwrap();
        assert_eq!(
            doc.get("otherData")
                .unwrap()
                .get("backend")
                .and_then(Value::as_str),
            Some("fused"),
            "executor-tagged traces must expose the execution backend"
        );
    }

    #[test]
    fn chunked_transfers_export_one_span_not_per_element_instants() {
        let tracer = Tracer::new();
        {
            let _scope = ModuleScope::enter("bulk", Some(&tracer));
            let ch: Arc<str> = Arc::from("ch");
            crate::record_channel_chunk(EventKind::Push, &ch, 0, false, 16);
            record_channel_op(EventKind::Pop, &ch, 5, false);
        }
        let doc: Value = serde_json::from_str(&trace_json(&tracer)).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let chunk_spans: Vec<_> = events
            .iter()
            .filter(|e| {
                e.get("cat").and_then(Value::as_str) == Some("channel")
                    && e.get("ph").and_then(Value::as_str) == Some("X")
            })
            .collect();
        assert_eq!(chunk_spans.len(), 1, "one span per chunk, not 16 instants");
        let args = chunk_spans[0].get("args").unwrap();
        assert_eq!(args.get("elements").and_then(Value::as_u64), Some(16));
        // The single-element op stays an instant.
        assert!(events.iter().any(|e| {
            e.get("cat").and_then(Value::as_str) == Some("channel")
                && e.get("ph").and_then(Value::as_str) == Some("i")
        }));
    }
}
