//! # fblas-trace — observability for the streaming simulator
//!
//! The FBLAS paper reasons about compositions in terms of *module*
//! activity over time: circuits compute concurrently, FIFO channels
//! apply backpressure (Sec. IV), and an invalid composition "stalls
//! forever" (Sec. V-B). This crate makes those dynamics visible for the
//! software simulator:
//!
//! * an **event layer** ([`TraceEvent`], [`ModuleScope`]) — per-thread
//!   ring buffers recording module start/end, channel push/pop, and
//!   full/empty stall spans with monotonic timestamps. When no tracer is
//!   attached the instrumentation reduces to one thread-local read per
//!   channel operation;
//! * **exporters** — Chrome/Perfetto `trace_event` JSON
//!   ([`perfetto`]) with one lane per module and stall spans colored,
//!   plus a plain-text run summary ([`summary`]);
//! * a **metrics registry** ([`MetricsRegistry`]) of counters, gauges,
//!   and histograms — superseded by the `fblas-metrics` crate for
//!   run-level telemetry, retained for tracer-scoped counters the audit
//!   pipeline reads and for the channel-occupancy time series behind
//!   the Perfetto counter tracks.
//!
//! Stall forensics (the wait-for snapshot carried by
//! `SimError::Stall`) live in the simulator crate, which owns the
//! channel state; this crate supplies the module-identity thread-local
//! the snapshot draws names from ([`current_module`]).

#![warn(missing_docs)]

pub mod metrics;
pub mod perfetto;
pub mod summary;

pub use metrics::{Histogram, MetricsRegistry, MetricsSnapshot};

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use serde::Serialize;

/// What a single trace event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum EventKind {
    /// A module's whole execution, from thread start to completion.
    ModuleRun,
    /// Elements pushed into a channel (instant for a single element,
    /// span for a batched chunk — see [`TraceEvent::count`]).
    Push,
    /// Elements popped from a channel (instant for a single element,
    /// span for a batched chunk).
    Pop,
    /// The producer waited on a full FIFO for the span's duration.
    FullStall,
    /// The consumer waited on an empty FIFO for the span's duration.
    EmptyStall,
}

/// One recorded event: a span (`dur_us > 0` possible) or an instant
/// (`dur_us == 0`). Timestamps are microseconds from the owning
/// [`Tracer`]'s creation, so all lanes share one monotonic clock.
#[derive(Debug, Clone, Serialize)]
pub struct TraceEvent {
    /// Event class.
    pub kind: EventKind,
    /// Channel involved, if any (`None` for [`EventKind::ModuleRun`]).
    pub channel: Option<Arc<str>>,
    /// Start timestamp, µs since tracer creation.
    pub start_us: u64,
    /// Duration in µs; 0 for instants.
    pub dur_us: u64,
    /// Elements covered by this event: 1 for element-wise channel ops
    /// and non-channel events, the chunk length for batched transfers
    /// (which record one aggregated event per chunk, not one per
    /// element).
    pub count: u64,
}

/// Everything one module (thread) recorded, flushed when its
/// [`ModuleScope`] drops.
#[derive(Debug, Clone, Serialize)]
pub struct Lane {
    /// Module name.
    pub module: String,
    /// Scope entry timestamp (µs since tracer creation).
    pub started_us: u64,
    /// Scope exit timestamp.
    pub ended_us: u64,
    /// Recorded events, oldest first. The ring drops the *oldest*
    /// events on overflow — the tail of a run matters most when
    /// diagnosing a stall.
    pub events: Vec<TraceEvent>,
    /// Events discarded because the ring was full.
    pub dropped: u64,
    /// Total pushes performed by this module.
    pub pushes: u64,
    /// Total pops performed by this module.
    pub pops: u64,
    /// Cumulative µs spent blocked on full FIFOs.
    pub full_stall_us: u64,
    /// Cumulative µs spent blocked on empty FIFOs.
    pub empty_stall_us: u64,
    /// Per-channel µs blocked pushing into a full FIFO. Exact counters,
    /// maintained alongside the ring — unlike the ring they never drop,
    /// so downstream consumers (the audit layer) can attribute stall
    /// time even for runs far longer than the ring.
    pub full_stall_by_channel: Vec<(Arc<str>, u64)>,
    /// Per-channel µs blocked popping from an empty FIFO.
    pub empty_stall_by_channel: Vec<(Arc<str>, u64)>,
    /// Per-channel push counts.
    pub pushes_by_channel: Vec<(Arc<str>, u64)>,
    /// Per-channel pop counts.
    pub pops_by_channel: Vec<(Arc<str>, u64)>,
}

impl Lane {
    /// Length of the module's run span in µs.
    pub fn run_us(&self) -> u64 {
        self.ended_us.saturating_sub(self.started_us)
    }

    /// Time the module was not blocked on any FIFO, in µs (saturating:
    /// the stall ledgers can exceed the span by a few µs of bookkeeping
    /// skew).
    pub fn busy_us(&self) -> u64 {
        self.run_us()
            .saturating_sub(self.full_stall_us)
            .saturating_sub(self.empty_stall_us)
    }
}

/// Default per-lane event-ring capacity.
const DEFAULT_LANE_CAPACITY: usize = 4096;

struct TracerInner {
    origin: Instant,
    lane_capacity: usize,
    lanes: Mutex<Vec<Lane>>,
    /// Sampled time series, e.g. channel occupancy: name → (t_us, value).
    series: Mutex<BTreeMap<String, Vec<(u64, f64)>>>,
    metrics: MetricsRegistry,
    /// Correlation key of the logical request this trace belongs to
    /// (16-hex-digit run ID); exported as Perfetto metadata.
    run_id: Mutex<Option<String>>,
    /// Execution backend the traced run used (`threaded` / `fused` /
    /// `auto`); exported as Perfetto metadata.
    backend: Mutex<Option<String>>,
}

/// Collects lanes, series, and metrics for one (or several) simulation
/// runs. Cheap to clone; all clones share the same store and clock.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Tracer {
    /// A tracer with the default per-lane ring capacity.
    pub fn new() -> Self {
        Self::with_lane_capacity(DEFAULT_LANE_CAPACITY)
    }

    /// A tracer whose per-module event rings hold `capacity` events.
    pub fn with_lane_capacity(capacity: usize) -> Self {
        Tracer {
            inner: Arc::new(TracerInner {
                origin: Instant::now(),
                lane_capacity: capacity.max(16),
                lanes: Mutex::new(Vec::new()),
                series: Mutex::new(BTreeMap::new()),
                metrics: MetricsRegistry::new(),
                run_id: Mutex::new(None),
                backend: Mutex::new(None),
            }),
        }
    }

    /// Microseconds elapsed since this tracer was created.
    pub fn now_us(&self) -> u64 {
        self.inner.origin.elapsed().as_micros() as u64
    }

    /// Append one sample to a named time series (used by the simulator
    /// watchdog to record channel occupancy).
    pub fn record_sample(&self, series: &str, t_us: u64, value: f64) {
        let mut s = self.inner.series.lock();
        s.entry(series.to_string()).or_default().push((t_us, value));
    }

    /// Snapshot of all flushed lanes, in flush order.
    pub fn lanes(&self) -> Vec<Lane> {
        self.inner.lanes.lock().clone()
    }

    /// Snapshot of all sampled time series.
    pub fn series(&self) -> BTreeMap<String, Vec<(u64, f64)>> {
        self.inner.series.lock().clone()
    }

    /// The metrics registry shared by all clones of this tracer.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// Tag this trace with the run ID of the logical request it belongs
    /// to. The executor sets this automatically from the current
    /// `RunScope`; the Perfetto exporter emits it as metadata so traces
    /// correlate with metric snapshots and RecoveryReports.
    pub fn set_run_id(&self, run_id: impl Into<String>) {
        *self.inner.run_id.lock() = Some(run_id.into());
    }

    /// The tagged run ID, if any.
    pub fn run_id(&self) -> Option<String> {
        self.inner.run_id.lock().clone()
    }

    /// Tag this trace with the execution backend that produced it
    /// (`threaded`, `fused`, or `auto`); the Perfetto exporter emits it
    /// as metadata so a trace records which execution path it observed.
    pub fn set_backend(&self, backend: impl Into<String>) {
        *self.inner.backend.lock() = Some(backend.into());
    }

    /// The tagged backend name, if any.
    pub fn backend(&self) -> Option<String> {
        self.inner.backend.lock().clone()
    }

    fn flush_lane(&self, lane: Lane) {
        self.inner.lanes.lock().push(lane);
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

// ------------------------------------------------- thread-local scope

/// Per-thread recording state while a module body runs.
struct ScopeData {
    module: Arc<str>,
    /// Present only when a tracer is attached; module identity alone is
    /// enough for stall forensics.
    rec: Option<Recorder>,
}

struct Recorder {
    tracer: Tracer,
    started_us: u64,
    events: Vec<TraceEvent>,
    dropped: u64,
    pushes: u64,
    pops: u64,
    full_stall_us: u64,
    empty_stall_us: u64,
    full_stall_by_channel: Vec<(Arc<str>, u64)>,
    empty_stall_by_channel: Vec<(Arc<str>, u64)>,
    pushes_by_channel: Vec<(Arc<str>, u64)>,
    pops_by_channel: Vec<(Arc<str>, u64)>,
}

/// Add `amount` to `channel`'s entry in a per-channel ledger. Modules
/// touch a handful of channels, so a linear scan (pointer comparison
/// first — channel names are shared `Arc`s) beats a map and allocates
/// only on first sight of a channel.
fn bump(ledger: &mut Vec<(Arc<str>, u64)>, channel: &Arc<str>, amount: u64) {
    if let Some(entry) = ledger
        .iter_mut()
        .find(|(c, _)| Arc::ptr_eq(c, channel) || **c == **channel)
    {
        entry.1 += amount;
    } else {
        ledger.push((channel.clone(), amount));
    }
}

impl Recorder {
    fn record(&mut self, ev: TraceEvent) {
        let cap = self.tracer.inner.lane_capacity;
        if self.events.len() >= cap {
            // Drop-oldest: shift out the front half in one move so the
            // amortized cost stays O(1) per event.
            let keep = cap / 2;
            let excess = self.events.len() - keep;
            self.events.drain(..excess);
            self.dropped += excess as u64;
        }
        self.events.push(ev);
    }
}

thread_local! {
    static SCOPE: RefCell<Option<ScopeData>> = const { RefCell::new(None) };
}

/// RAII marker that the current thread is executing a named module.
///
/// Installs the module identity (always) and an event recorder (when a
/// tracer is given) in a thread-local; on drop, records the module's
/// run span and flushes the lane to the tracer. The previous scope, if
/// any, is restored — nested scopes (e.g. a composition component
/// around a host call) each get their own lane.
pub struct ModuleScope {
    prev: Option<ScopeData>,
}

impl ModuleScope {
    /// Enter a module scope on the current thread.
    pub fn enter(module: &str, tracer: Option<&Tracer>) -> ModuleScope {
        let rec = tracer.map(|t| Recorder {
            tracer: t.clone(),
            started_us: t.now_us(),
            events: Vec::new(),
            dropped: 0,
            pushes: 0,
            pops: 0,
            full_stall_us: 0,
            empty_stall_us: 0,
            full_stall_by_channel: Vec::new(),
            empty_stall_by_channel: Vec::new(),
            pushes_by_channel: Vec::new(),
            pops_by_channel: Vec::new(),
        });
        let data = ScopeData {
            module: Arc::from(module),
            rec,
        };
        let prev = SCOPE.with(|s| s.borrow_mut().replace(data));
        ModuleScope { prev }
    }
}

impl Drop for ModuleScope {
    fn drop(&mut self) {
        let data = SCOPE.with(|s| {
            let mut slot = s.borrow_mut();
            let cur = slot.take();
            *slot = self.prev.take();
            cur
        });
        let Some(data) = data else { return };
        let Some(mut rec) = data.rec else { return };
        let ended_us = rec.tracer.now_us();
        rec.record(TraceEvent {
            kind: EventKind::ModuleRun,
            channel: None,
            start_us: rec.started_us,
            dur_us: ended_us.saturating_sub(rec.started_us),
            count: 1,
        });
        let tracer = rec.tracer.clone();
        tracer.flush_lane(Lane {
            module: data.module.to_string(),
            started_us: rec.started_us,
            ended_us,
            events: rec.events,
            dropped: rec.dropped,
            pushes: rec.pushes,
            pops: rec.pops,
            full_stall_us: rec.full_stall_us,
            empty_stall_us: rec.empty_stall_us,
            full_stall_by_channel: rec.full_stall_by_channel,
            empty_stall_by_channel: rec.empty_stall_by_channel,
            pushes_by_channel: rec.pushes_by_channel,
            pops_by_channel: rec.pops_by_channel,
        });
    }
}

/// Name of the module the current thread is executing, if any. The
/// simulator's stall forensics use this to attribute blocked channel
/// waits to modules.
pub fn current_module() -> Option<Arc<str>> {
    SCOPE.with(|s| s.borrow().as_ref().map(|d| d.module.clone()))
}

/// Timestamp the start of a channel operation — `Some(now)` only when
/// the current thread is actively recording. The `None` path is the
/// tracing-disabled fast path: one thread-local read and a branch.
#[inline]
pub fn op_start() -> Option<u64> {
    SCOPE.with(|s| {
        s.borrow()
            .as_ref()
            .and_then(|d| d.rec.as_ref())
            .map(|r| r.tracer.now_us())
    })
}

/// Record a completed channel operation. `kind` must be
/// [`EventKind::Push`] or [`EventKind::Pop`]; `started_us` is the value
/// [`op_start`] returned before the operation; `waited` says whether
/// the operation blocked (producing a stall span from `started_us` to
/// now).
pub fn record_channel_op(kind: EventKind, channel: &Arc<str>, started_us: u64, waited: bool) {
    record_channel_chunk(kind, channel, started_us, waited, 1);
}

/// Record a completed *batched* channel operation covering `count`
/// elements moved by one `push_chunk`/`pop_chunk` call. Element
/// counters and per-channel ledgers advance by `count`; the ring gets
/// ONE aggregated event spanning the whole chunk operation (plus one
/// stall span when the operation blocked) instead of `count` per-element
/// instants — the trace stays proportional to chunk operations, not to
/// elements.
pub fn record_channel_chunk(
    kind: EventKind,
    channel: &Arc<str>,
    started_us: u64,
    waited: bool,
    count: u64,
) {
    if count == 0 {
        return;
    }
    SCOPE.with(|s| {
        let mut slot = s.borrow_mut();
        let Some(rec) = slot.as_mut().and_then(|d| d.rec.as_mut()) else {
            return;
        };
        let now = rec.tracer.now_us();
        if waited {
            let dur = now.saturating_sub(started_us);
            let stall_kind = match kind {
                EventKind::Push => EventKind::FullStall,
                _ => EventKind::EmptyStall,
            };
            match stall_kind {
                EventKind::FullStall => {
                    rec.full_stall_us += dur;
                    bump(&mut rec.full_stall_by_channel, channel, dur);
                }
                _ => {
                    rec.empty_stall_us += dur;
                    bump(&mut rec.empty_stall_by_channel, channel, dur);
                }
            }
            rec.record(TraceEvent {
                kind: stall_kind,
                channel: Some(channel.clone()),
                start_us: started_us,
                dur_us: dur,
                count: 1,
            });
        }
        match kind {
            EventKind::Push => {
                rec.pushes += count;
                bump(&mut rec.pushes_by_channel, channel, count);
            }
            _ => {
                rec.pops += count;
                bump(&mut rec.pops_by_channel, channel, count);
            }
        }
        // A single element is an instant at completion time; a chunk is
        // a span covering the whole operation.
        let (start, dur) = if count == 1 {
            (now, 0)
        } else {
            (started_us, now.saturating_sub(started_us))
        };
        rec.record(TraceEvent {
            kind,
            channel: Some(channel.clone()),
            start_us: start,
            dur_us: dur,
            count,
        });
    });
}

/// Record an injected fault against `target` (a channel or module name)
/// with a short action `label` ("corrupt", "drop", "crash", ...). Emits
/// a sample on the `fault:<target>` counter series (rendered by the
/// Perfetto exporter as a counter track) and bumps the `fault.injected`
/// and `fault.<label>` metrics. No-op when the current thread is not
/// recording — fault injection works with tracing disabled; only the
/// evidence trail needs a tracer.
pub fn record_fault(target: &str, label: &str) {
    SCOPE.with(|s| {
        let slot = s.borrow();
        let Some(rec) = slot.as_ref().and_then(|d| d.rec.as_ref()) else {
            return;
        };
        let t = rec.tracer.now_us();
        rec.tracer.record_sample(&format!("fault:{target}"), t, 1.0);
        rec.tracer.metrics().counter_add("fault.injected", 1);
        rec.tracer
            .metrics()
            .counter_add(&format!("fault.{label}"), 1);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_flushes_a_lane_with_run_span() {
        let tracer = Tracer::new();
        {
            let _scope = ModuleScope::enter("m0", Some(&tracer));
            assert_eq!(current_module().unwrap().as_ref(), "m0");
            let ch: Arc<str> = Arc::from("ch");
            let t0 = op_start().expect("recording active");
            record_channel_op(EventKind::Push, &ch, t0, false);
            record_channel_op(EventKind::Pop, &ch, t0, true);
        }
        let lanes = tracer.lanes();
        assert_eq!(lanes.len(), 1);
        let lane = &lanes[0];
        assert_eq!(lane.module, "m0");
        assert_eq!(lane.pushes, 1);
        assert_eq!(lane.pops, 1);
        let runs: Vec<_> = lane
            .events
            .iter()
            .filter(|e| e.kind == EventKind::ModuleRun)
            .collect();
        assert_eq!(runs.len(), 1);
        assert!(lane.events.iter().any(|e| e.kind == EventKind::EmptyStall));
    }

    #[test]
    fn no_tracer_means_no_recording_but_identity_is_kept() {
        let _scope = ModuleScope::enter("bare", None);
        assert_eq!(current_module().unwrap().as_ref(), "bare");
        assert!(op_start().is_none());
    }

    #[test]
    fn nested_scopes_restore_the_outer_module() {
        let tracer = Tracer::new();
        let _outer = ModuleScope::enter("outer", Some(&tracer));
        {
            let _inner = ModuleScope::enter("inner", Some(&tracer));
            assert_eq!(current_module().unwrap().as_ref(), "inner");
        }
        assert_eq!(current_module().unwrap().as_ref(), "outer");
        assert_eq!(tracer.lanes().len(), 1); // only the inner lane flushed so far
    }

    #[test]
    fn chunk_op_records_one_event_counting_all_elements() {
        let tracer = Tracer::new();
        {
            let _scope = ModuleScope::enter("bulk", Some(&tracer));
            let ch: Arc<str> = Arc::from("ch");
            let t0 = op_start().expect("recording active");
            record_channel_chunk(EventKind::Push, &ch, t0, false, 64);
            record_channel_chunk(EventKind::Pop, &ch, t0, true, 3);
            record_channel_chunk(EventKind::Push, &ch, t0, false, 0); // no-op
        }
        let lane = &tracer.lanes()[0];
        // Element counters advance by the chunk length...
        assert_eq!(lane.pushes, 64);
        assert_eq!(lane.pops, 3);
        assert_eq!(lane.pushes_by_channel[0].1, 64);
        assert_eq!(lane.pops_by_channel[0].1, 3);
        // ...but the ring holds one aggregated event per chunk (plus the
        // stall span for the waited pop and the ModuleRun span).
        let pushes: Vec<_> = lane
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Push)
            .collect();
        assert_eq!(pushes.len(), 1);
        assert_eq!(pushes[0].count, 64);
        let pops: Vec<_> = lane
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Pop)
            .collect();
        assert_eq!(pops.len(), 1);
        assert_eq!(pops[0].count, 3);
        assert!(lane.events.iter().any(|e| e.kind == EventKind::EmptyStall));
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let tracer = Tracer::with_lane_capacity(16);
        {
            let _scope = ModuleScope::enter("hot", Some(&tracer));
            let ch: Arc<str> = Arc::from("c");
            for _ in 0..100 {
                record_channel_op(EventKind::Push, &ch, 0, false);
            }
        }
        let lane = &tracer.lanes()[0];
        assert_eq!(lane.pushes, 100);
        assert!(lane.dropped > 0);
        assert!(lane.events.len() <= 17); // ring + the final ModuleRun span

        // The per-channel ledgers are exact counters: they survive the
        // ring's drop-oldest policy untouched.
        assert_eq!(lane.pushes_by_channel.len(), 1);
        assert_eq!(lane.pushes_by_channel[0].0.as_ref(), "c");
        assert_eq!(lane.pushes_by_channel[0].1, 100);
    }

    #[test]
    fn stall_ledgers_are_bucketed_by_channel() {
        let tracer = Tracer::new();
        {
            let _scope = ModuleScope::enter("m", Some(&tracer));
            let a: Arc<str> = Arc::from("a");
            let b: Arc<str> = Arc::from("b");
            record_channel_op(EventKind::Push, &a, 0, true);
            record_channel_op(EventKind::Push, &a, 0, true);
            record_channel_op(EventKind::Pop, &b, 0, true);
        }
        let lane = &tracer.lanes()[0];
        assert_eq!(lane.full_stall_by_channel.len(), 1);
        assert_eq!(lane.full_stall_by_channel[0].0.as_ref(), "a");
        assert_eq!(lane.empty_stall_by_channel.len(), 1);
        assert_eq!(lane.empty_stall_by_channel[0].0.as_ref(), "b");
        assert_eq!(lane.pops_by_channel[0].1, 1);
        assert!(lane.busy_us() <= lane.run_us());
    }

    #[test]
    fn series_accumulate_in_order() {
        let tracer = Tracer::new();
        tracer.record_sample("occ:ch", 1, 0.0);
        tracer.record_sample("occ:ch", 2, 3.0);
        let series = tracer.series();
        assert_eq!(series["occ:ch"], vec![(1, 0.0), (2, 3.0)]);
    }
}
