//! Plain-text run summary: the at-a-glance companion to the Perfetto
//! export, printable from examples and benchmark binaries.

use crate::Tracer;

/// Render a fixed-width table of per-module activity plus sampled
/// series extremes and registry metrics.
pub fn run_summary(tracer: &Tracer) -> String {
    let mut out = String::new();
    let lanes = tracer.lanes();

    out.push_str("== module lanes ==\n");
    out.push_str(&format!(
        "{:<24} {:>10} {:>8} {:>8} {:>12} {:>12} {:>8}\n",
        "module", "run(µs)", "pushes", "pops", "full-wait(µs)", "empty-wait(µs)", "dropped"
    ));
    for lane in &lanes {
        out.push_str(&format!(
            "{:<24} {:>10} {:>8} {:>8} {:>12} {:>12} {:>8}\n",
            lane.module,
            lane.ended_us.saturating_sub(lane.started_us),
            lane.pushes,
            lane.pops,
            lane.full_stall_us,
            lane.empty_stall_us,
            lane.dropped,
        ));
    }
    if lanes.is_empty() {
        out.push_str("(no lanes recorded)\n");
    }

    let series = tracer.series();
    if !series.is_empty() {
        out.push_str("\n== sampled series ==\n");
        out.push_str(&format!(
            "{:<32} {:>8} {:>10} {:>10}\n",
            "series", "samples", "max", "last"
        ));
        for (name, samples) in &series {
            let max = samples
                .iter()
                .map(|(_, v)| *v)
                .fold(f64::NEG_INFINITY, f64::max);
            let last = samples.last().map(|(_, v)| *v).unwrap_or(0.0);
            out.push_str(&format!(
                "{:<32} {:>8} {:>10.1} {:>10.1}\n",
                name,
                samples.len(),
                max,
                last
            ));
        }
    }

    let metrics = tracer.metrics().snapshot();
    if !metrics.counters.is_empty() || !metrics.gauges.is_empty() || !metrics.histograms.is_empty()
    {
        out.push_str("\n== metrics ==\n");
        for (name, v) in &metrics.counters {
            out.push_str(&format!("counter {name} = {v}\n"));
        }
        for (name, v) in &metrics.gauges {
            out.push_str(&format!("gauge   {name} = {v}\n"));
        }
        for (name, h) in &metrics.histograms {
            out.push_str(&format!(
                "hist    {name}: n={} mean={:.2} min={:.2} max={:.2}\n",
                h.count,
                h.mean(),
                h.min,
                h.max
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModuleScope;

    #[test]
    fn summary_lists_lanes_series_and_metrics() {
        let tracer = Tracer::new();
        {
            let _scope = ModuleScope::enter("reader", Some(&tracer));
        }
        tracer.record_sample("occ:x", 10, 4.0);
        tracer.metrics().counter_add("runs", 1);
        tracer.metrics().histogram_observe("stall_us", 12.0);

        let text = run_summary(&tracer);
        assert!(text.contains("reader"));
        assert!(text.contains("occ:x"));
        assert!(text.contains("counter runs = 1"));
        assert!(text.contains("hist    stall_us"));
    }
}
