#!/usr/bin/env bash
# CI gate: build, tests, lints, formatting, and the bench-output schema.
# Run from the repository root. Fails fast on the first broken step.

set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n=== %s ===\n' "$*"; }

step "cargo build --release"
cargo build --release

step "cargo test -q"
cargo test -q

step "cargo clippy -- -D warnings"
# crates/lint/clippy.toml and crates/core/clippy.toml additionally
# disallow unwrap/expect in those crates' library code (analyzer
# discipline: diagnostics, not panics); clippy discovers them per crate.
cargo clippy --workspace --all-targets -- -D warnings

step "cargo fmt --check"
cargo fmt --check

step "BENCH_*.json schema"
# table1 is the cheapest bin (pure model, no CPU measurement); its output
# must match the stable schema every bench binary shares.
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
FBLAS_BENCH_DIR="$tmpdir" cargo run --release -q -p fblas-bench --bin table1 >/dev/null
python3 - "$tmpdir/BENCH_table1.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema_version"] == 1, "schema_version must be 1"
assert isinstance(doc["bench"], str)
assert isinstance(doc["rows"], list) and doc["rows"], "rows must be a non-empty list"
for i, row in enumerate(doc["rows"]):
    assert isinstance(row, dict), f"row {i} must be an object"
    for k, v in row.items():
        assert isinstance(v, (int, float, str)), f"row {i} field {k} must be number or string"
print(f"BENCH_table1.json ok: {len(doc['rows'])} rows")
EOF

step "fblas-lint self-check (static analysis examples)"
# Lints every fixture under examples/lint: clean fixtures must produce
# zero errors AND zero warnings (--deny-warnings), *.rejected.json
# fixtures must produce at least one error, --validate round-trips
# every report and every fusion plan byte-stably, and --fusion-plan
# dumps the fblas-fusion-plan-v1 artifacts the dataflow analysis
# derived. Emits BENCH_lint.json for the bench-diff gate below.
FBLAS_BENCH_DIR="$tmpdir" cargo run --release -q -p fblas-lint -- \
    --validate --deny-warnings --fusion-plan "$tmpdir/fusion_plans.json" examples/lint
cargo run --release -q -p fblas-lint -- --format json examples/lint >/dev/null
python3 - "$tmpdir/fusion_plans.json" <<'EOF'
import json, sys
plans = json.load(open(sys.argv[1]))
assert isinstance(plans, list) and plans, "fusion plan dump must be a non-empty array"
fused = sum(p["stats"]["fused"] for p in plans)
rejected = sum(sum(p["stats"]["rejected"].values()) for p in plans)
for p in plans:
    assert p["schema"] == "fblas-fusion-plan-v1", f"bad schema {p['schema']}"
assert fused >= 1, "fixtures must produce at least one fused region"
assert rejected >= 1, "fixtures must produce at least one witnessed rejection"
print(f"fusion plans ok: {len(plans)} plans, {fused} fused regions, {rejected} rejections")
EOF

step "chaos smoke (seeded fault injection + recovery)"
# bench_chaos sweeps seeded faults (bit flips incl. bit 0, element
# drop/duplication, latency spikes, module crashes and hangs) over
# DOT/GEMV/GER and asserts in-bin that every value-corrupting fault is
# detected, recovered within the retry budget, and that recovered
# outputs are bit-identical to fault-free runs. Two runs with the same
# FBLAS_CHAOS_SEED must dump byte-identical fault/recovery reports —
# the determinism contract of the chaos harness.
FBLAS_BENCH_DIR="$tmpdir" FBLAS_CHAOS_SEED=12345 cargo run --release -q -p fblas-bench --bin bench_chaos -- \
    --dump-reports "$tmpdir/chaos_run_a.json" >/dev/null
FBLAS_BENCH_DIR="$tmpdir" FBLAS_CHAOS_SEED=12345 cargo run --release -q -p fblas-bench --bin bench_chaos -- \
    --dump-reports "$tmpdir/chaos_run_b.json" >/dev/null
cmp "$tmpdir/chaos_run_a.json" "$tmpdir/chaos_run_b.json"
echo "seeded chaos fault/recovery reports are byte-identical across runs"
# The same seeded sweep pinned to each execution backend: hook-armed
# attempts degrade fused regions to threaded (the recovery-guards
# obligation), and fault-free reference runs exercise the fused staged
# write-back, so the dumped fault/recovery reports must match byte for
# byte across FBLAS_BACKEND=threaded and FBLAS_BACKEND=fused.
FBLAS_BENCH_DIR="$tmpdir" FBLAS_CHAOS_SEED=12345 FBLAS_BACKEND=threaded \
    cargo run --release -q -p fblas-bench --bin bench_chaos -- \
    --dump-reports "$tmpdir/chaos_run_threaded.json" >/dev/null
FBLAS_BENCH_DIR="$tmpdir" FBLAS_CHAOS_SEED=12345 FBLAS_BACKEND=fused \
    cargo run --release -q -p fblas-bench --bin bench_chaos -- \
    --dump-reports "$tmpdir/chaos_run_fused.json" >/dev/null
cmp "$tmpdir/chaos_run_threaded.json" "$tmpdir/chaos_run_fused.json"
echo "seeded chaos recovery reports are byte-identical across backends"

step "bench-diff against committed baselines"
# Regenerate every bench artifact and gate it against
# benchmarks/baselines/. Model columns are deterministic, so any drift
# is a model change: intentional ones are refreshed with
# `bench-diff --bless` (see README).
for bin in table3 table4 table5 table6 fig10 fig11 hbm_scaling bench_throughput bench_chaos bench_observe bench_flight bench_fused; do
    FBLAS_BENCH_DIR="$tmpdir" cargo run --release -q -p fblas-bench --bin "$bin" >/dev/null
done
# bench_serve lives in fblas-serve (the server crate), not fblas-bench:
# its deterministic columns (workers/chaos/requests/ok/failed) gate the
# serving layer's admission arithmetic the same way.
FBLAS_BENCH_DIR="$tmpdir" cargo run --release -q -p fblas-serve --bin bench_serve >/dev/null
cargo run --release -q -p fblas-bench --bin bench-diff -- \
    --baselines benchmarks/baselines --current "$tmpdir"

step "throughput perf smoke (batched transport vs element-wise)"
# bench_throughput (regenerated above) sweeps FBLAS_CHUNK; the batched
# channel layer must keep at least a 5x elements/sec advantage on the
# lock-bound DOT stream, or the chunked transport has regressed.
python3 - "$tmpdir/BENCH_throughput.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
rows = {(r["routine"], r["chunk"]): r for r in doc["rows"]}
slow = rows[("dot", 1)]["cpu_elems_per_sec"]
fast = rows[("dot", 256)]["cpu_elems_per_sec"]
ratio = fast / slow
assert ratio >= 5.0, f"dot chunk=256 must be >= 5x chunk=1 (got {ratio:.1f}x)"
print(f"dot chunk=256 vs chunk=1: {ratio:.1f}x elements/sec")
EOF

step "fused backend perf smoke (compiled loop vs threaded modules)"
# bench_fused (regenerated above) runs the same planner programs under
# both backends with in-bin bit-identity asserts; the compiled
# single-loop execution of the fusable elementwise chain must keep at
# least a 5x elements/sec advantage over the threaded simulator at
# chunk size 1, or region compilation has regressed.
python3 - "$tmpdir/BENCH_fused.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
rows = {(r["routine"], r["backend"], r["chunk"]): r for r in doc["rows"]}
slow = rows[("axpy_chain", "threaded", 1)]["cpu_elems_per_sec"]
fast = rows[("axpy_chain", "fused", 1)]["cpu_elems_per_sec"]
ratio = fast / slow
assert ratio >= 5.0, f"fused axpy_chain must be >= 5x threaded (got {ratio:.1f}x)"
regions = rows[("axpy_chain", "fused", 1)]["fused_regions"]
assert regions >= 1, "axpy_chain must actually fuse"
print(f"axpy_chain fused vs threaded at chunk=1: {ratio:.1f}x elements/sec")
EOF

step "telemetry overhead gate (armed vs disarmed)"
# bench_observe (regenerated above) interleaves armed and disarmed runs
# and aborts in-bin past the 3% budget; this re-checks the committed
# report so the gate also fires on a stale artifact.
python3 - "$tmpdir/BENCH_observe.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
budget = doc["meta"]["budget_pct"]
for row in doc["rows"]:
    if row["routine"] == "dot" and row["mode"] == "on":
        pct = row["cpu_overhead_pct"]
        assert pct <= budget, f"dot telemetry overhead {pct:.2f}% > {budget:.0f}% budget"
        print(f"dot telemetry overhead: {pct:.2f}% (budget {budget:.0f}%)")
        break
else:
    raise AssertionError("BENCH_observe.json has no armed dot row")
EOF

step "flight-recorder overhead gate (recorder armed vs off)"
# bench_flight (regenerated above) interleaves recorder-armed and
# recorder-off runs on the armed metrics runtime and aborts in-bin past
# the 3% budget; this re-checks the committed report so the gate also
# fires on a stale artifact.
python3 - "$tmpdir/BENCH_flight.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
budget = doc["meta"]["budget_pct"]
for row in doc["rows"]:
    if row["routine"] == "dot" and row["mode"] == "on":
        pct = row["cpu_overhead_pct"]
        assert pct <= budget, f"dot flight overhead {pct:.2f}% > {budget:.0f}% budget"
        print(f"dot flight-recorder overhead: {pct:.2f}% (budget {budget:.0f}%)")
        break
else:
    raise AssertionError("BENCH_flight.json has no recorder-armed dot row")
EOF

step "fblas-doctor self-check (postmortem bundle forensics)"
# The example kills a seeded chaos run by exhausting its retry budget;
# the flight recorder must emit a schema-v1 bundle whose deterministic
# view is byte-identical across two runs, and fblas-doctor must render
# it and verify the full document round-trips byte-stably.
bundle_a="$(FBLAS_FLIGHT_DIR="$tmpdir/flight_a" \
    cargo run --release -q -p fblas-bench --example flight_postmortem | tail -n 1)"
bundle_b="$(FBLAS_FLIGHT_DIR="$tmpdir/flight_b" \
    cargo run --release -q -p fblas-bench --example flight_postmortem | tail -n 1)"
cmp "${bundle_a%.json}.det.json" "${bundle_b%.json}.det.json"
echo "seeded postmortem deterministic views are byte-identical across runs"
cargo run --release -q -p fblas-bench --bin fblas-doctor -- "$bundle_a"
cargo run --release -q -p fblas-bench --bin fblas-doctor -- "$bundle_a" --check

step "telemetry snapshot schema + run-ID correlation"
# The example executes a seeded GEMVER run and asserts one run ID across
# the recovery report, Prometheus dump, JSON snapshot (byte-stable
# round trip: serialize -> deserialize -> re-serialize identical), and
# Perfetto trace; fblas-top must then render the persisted snapshot.
FBLAS_SNAPSHOT_OUT="$tmpdir/metrics_snapshot.json" \
    cargo run --release -q -p fblas-lint --example telemetry_gemver
cargo run --release -q -p fblas-bench --bin fblas-top -- \
    --snapshot "$tmpdir/metrics_snapshot.json" >/dev/null
echo "fblas-top renders the snapshot"

step "serve smoke (lockstep determinism + daemon drain)"
# The fixed lockstep smoke workload — success, lint rejection, quota
# shed, chaos exhaustion, breaker open/fast-fail/reset, stats, drain —
# must produce byte-identical response transcripts across two runs:
# lockstep serializes every admission decision and wall-clock material
# lives only in the stripped `wall` field.
cargo run --release -q -p fblas-serve --bin bench_serve -- \
    --smoke --dump-responses "$tmpdir/serve_smoke_a.txt"
cargo run --release -q -p fblas-serve --bin bench_serve -- \
    --smoke --dump-responses "$tmpdir/serve_smoke_b.txt"
cmp "$tmpdir/serve_smoke_a.txt" "$tmpdir/serve_smoke_b.txt"
echo "serve smoke transcripts are byte-identical across runs"
# The daemon must exit 0 on a clean client-driven drain.
cargo run --release -q -p fblas-serve --bin fblas-serve -- \
    --addr 127.0.0.1:0 --workers 2 --tenant-qps 0 2>"$tmpdir/serve_daemon.log" &
serve_pid=$!
for _ in $(seq 1 100); do
    grep -q "listening on" "$tmpdir/serve_daemon.log" && break
    sleep 0.1
done
serve_addr="$(sed -n 's/.*listening on \([0-9.:]*\) .*/\1/p' "$tmpdir/serve_daemon.log")"
python3 - "$serve_addr" <<'EOF'
import json, socket, sys
host, port = sys.argv[1].rsplit(":", 1)
s = socket.create_connection((host, int(port)), timeout=30)
f = s.makefile("rw")
req = {"id": 1, "tenant": "ci", "fill_seed": 3, "program": {
    "operands": [{"name": "x", "kind": "vector", "len": 16},
                 {"name": "o", "kind": "vector", "len": 16}],
    "ops": [{"op": "scal", "alpha": 2.0, "x": "x", "out": "o"}]}}
f.write(json.dumps(req) + "\n"); f.flush()
resp = json.loads(f.readline())
assert resp["status"] == "ok", resp
f.write('{"control":"drain"}\n'); f.flush()
drain = json.loads(f.readline())
assert drain["status"] == "ok", drain
assert drain["stats"]["admitted"] == drain["stats"]["ok"] == 1, drain
print("daemon served and drained:", drain["stats"]["ok"], "request")
EOF
wait "$serve_pid"
echo "fblas-serve exited 0 after graceful drain"

step "env knob table sync (fblas-env)"
# The documented FBLAS_* table must render; the sync test in
# fblas-hlssim already asserts it matches the reader functions.
cargo run --release -q -p fblas-hlssim --bin fblas-env -- --list

step "audit self-check (model vs traced simulation)"
# Runs the AXPYDOT fixture through the audited executor and fails on
# per-module drift beyond tolerance or a missing bottleneck verdict.
cargo run --release -q -p fblas-bench --example audit_report

printf '\nci.sh: all checks passed\n'
