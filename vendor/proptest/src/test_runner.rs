//! The case loop: deterministic RNG, config, and per-case error type.

use crate::strategy::Strategy;

/// Deterministic xorshift64* stream.
pub struct TestRng(u64);

impl TestRng {
    fn from_seed(seed: u64) -> Self {
        TestRng(seed | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Test-loop configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// RNG seed; fixed by default so runs are reproducible.
    pub seed: u64,
}

impl ProptestConfig {
    /// Run this many cases (the usual constructor).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            seed: 0x5eed_fb1a_51ab_cde5,
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property is false for this input.
    Fail(String),
    /// The input does not satisfy a `prop_assume!` precondition.
    Reject(String),
}

impl TestCaseError {
    /// A failed property.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A discarded input.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Drives the strategy/case loop for one `proptest!` test.
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
}

impl TestRunner {
    /// A runner with the given configuration.
    pub fn new(config: ProptestConfig) -> Self {
        let rng = TestRng::from_seed(config.seed);
        TestRunner { config, rng }
    }

    /// Run `test` until `config.cases` cases pass. Returns the failure
    /// message of the first failing case (no shrinking).
    pub fn run<S, F>(&mut self, strategy: &S, mut test: F) -> Result<(), String>
    where
        S: Strategy,
        F: FnMut(S::Value) -> Result<(), TestCaseError>,
    {
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let max_rejects = 10_000u32.max(self.config.cases * 16);
        while passed < self.config.cases {
            let value = strategy.sample(&mut self.rng);
            match test(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > max_rejects {
                        return Err(format!(
                            "too many rejected inputs ({rejected}) after {passed} passing cases"
                        ));
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    return Err(format!("case {} failed: {msg}", passed + 1));
                }
            }
        }
        Ok(())
    }
}
