//! Value-generation strategies: deterministic samplers over a domain.

use crate::test_runner::TestRng;
use core::ops::Range;

/// A source of random values of one type.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Draw one value from the deterministic stream.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of one value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among equally-typed strategies (`prop_oneof!`).
pub struct OneOf<S> {
    options: Vec<S>,
}

impl<S> OneOf<S> {
    /// Build from a non-empty list of alternatives.
    pub fn new(options: Vec<S>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        OneOf { options }
    }
}

impl<S: Strategy> Strategy for OneOf<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let ix = rng.usize_in(0, self.options.len());
        self.options[ix].sample(rng)
    }
}

// Integer ranges: uniform in [start, end).
macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}
signed_range_strategy!(i8, i16, i32, i64, isize);

// Float ranges: uniform in [start, end).
macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

// Tuples of strategies generate tuples of values.
macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
