//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Same surface syntax (`proptest! { #![proptest_config(...)] #[test]
//! fn t(x in strat, ...) { ... } }`, `prop_assert*!`, `prop_assume!`,
//! `prop_oneof!`, range / `any` / `Just` / collection / option / bool
//! strategies), but generation is a deterministic xorshift stream and
//! there is no shrinking: a failing case reports the message from the
//! `prop_assert*!` that tripped.

pub mod strategy;
pub mod test_runner;

/// `proptest::collection::vec(element, len_range)`.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Build a vector strategy.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.usize_in(self.len.start, self.len.end);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `proptest::option::of(inner)`.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>`, 50/50 `None`/`Some`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Build an option strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64() & 1 == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// `proptest::bool::ANY`.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The any-bool strategy.
    pub struct BoolStrategy;

    /// Uniformly random booleans.
    pub const ANY: BoolStrategy = BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = core::primitive::bool;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            rng.next_u64() & 1 == 1
        }
    }
}

/// `any::<T>()` for primitive `T`.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a full-domain uniform strategy.
    pub trait Arbitrary: Sized {
        /// Draw an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite, sign-symmetric, spanning several magnitudes.
            (rng.unit_f64() - 0.5) * 2.0e6
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Everything tests conventionally glob-import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` alias (`prop::collection::vec`, ...).
    pub use crate as prop;
}

// --------------------------------------------------------------- macros

/// Define deterministic property tests.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal recursion for [`proptest!`]: expands one `fn` at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __runner = $crate::test_runner::TestRunner::new(__config);
            let __strategy = ($($strat,)*);
            let __outcome = __runner.run(&__strategy, |($($arg,)*)| {
                $body
                ::core::result::Result::Ok(())
            });
            if let ::core::result::Result::Err(__msg) = __outcome {
                panic!("proptest `{}` failed: {}", stringify!($name), __msg);
            }
        }
        $crate::__proptest_tests!(($cfg) $($rest)*);
    };
}

/// Fail the current test case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fail the current test case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}` ({:?} vs {:?})",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
}

/// Fail the current test case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}` (both {:?})",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// Discard the current test case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!("assumption failed: {}", stringify!($cond)),
            ));
        }
    };
}

/// Choose uniformly among equally-typed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($strat),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs(n in 1usize..10, xs in prop::collection::vec(any::<u32>(), 0..8)) {
            prop_assert!((1..10).contains(&n));
            prop_assert!(xs.len() < 8);
        }

        #[test]
        fn oneof_and_option(
            pick in prop_oneof![Just(1u8), Just(2u8)],
            opt in crate::option::of(0usize..4),
            flag in crate::bool::ANY,
        ) {
            prop_assert!(pick == 1 || pick == 2);
            if let Some(v) = opt {
                prop_assert!(v < 4);
            }
            prop_assert_eq!(flag as u8 <= 1, true);
        }
    }

    #[test]
    fn failures_report_the_message() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(4));
        let err = runner
            .run(&(0usize..10,), |(n,)| {
                prop_assert!(n > 100, "n was {n}");
                Ok(())
            })
            .unwrap_err();
        assert!(err.contains("n was"));
    }

    #[test]
    fn rejects_are_retried() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(8));
        runner
            .run(&(0usize..10,), |(n,)| {
                prop_assume!(n % 2 == 0);
                prop_assert!(n % 2 == 0);
                Ok(())
            })
            .unwrap();
    }
}
