//! Offline stand-in for the subset of `serde_json` this workspace uses:
//! JSON text parsing/printing over the vendored `serde::Value` model.
//! The wire format is ordinary JSON, compatible with the real crate.

pub use serde::Value;

use serde::{Deserialize, Serialize};
use std::fmt;

/// Parse or print error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize a value to its in-memory tree.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Reconstruct a typed value from an in-memory tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::from_value(&value).map_err(Error::new)
}

/// Serialize to compact JSON text.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to pretty-printed JSON text (2-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse a typed value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_value(&value).map_err(Error::new)
}

// -------------------------------------------------------------- printer

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // Match serde_json: integral floats render with `.0`.
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&f.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// --------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!(
                                "bad escape {:?}",
                                other.map(|c| c as char)
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser::new(s);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let text = r#"{"name":"gemv","width":16,"ok":true,"tags":["a","b"],"none":null}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v.get("width").and_then(Value::as_u64), Some(16));
        assert_eq!(to_string(&v).unwrap(), text);
    }

    #[test]
    fn pretty_print_is_parseable() {
        let v = Value::Object(vec![
            (
                "a".to_string(),
                Value::Array(vec![Value::U64(1), Value::U64(2)]),
            ),
            ("b".to_string(), Value::Str("x\n\"y\"".to_string())),
        ]);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn numbers() {
        assert_eq!(parse("-3").unwrap(), Value::I64(-3));
        assert_eq!(parse("3").unwrap(), Value::U64(3));
        assert_eq!(parse("2.5").unwrap(), Value::F64(2.5));
        assert_eq!(parse("1e3").unwrap(), Value::F64(1000.0));
    }

    #[test]
    fn escapes() {
        let v: Value = from_str(r#""aA\n""#).unwrap();
        assert_eq!(v, Value::Str("aA\n".to_string()));
    }
}
