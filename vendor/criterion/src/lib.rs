//! Offline stand-in for the subset of `criterion` this workspace uses:
//! `criterion_group!`/`criterion_main!`, benchmark groups with
//! `sample_size`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! and `Bencher::iter`. Measurement is a plain wall-clock mean over a
//! small number of iterations, printed one line per benchmark — enough
//! to compare configurations, not a statistics engine.
//!
//! Under `cargo test` (Cargo passes `--test` to harness-less bench
//! targets) each benchmark body runs exactly once as a smoke test.

use std::fmt;
use std::time::Instant;

/// Re-export so `criterion::black_box` works; benches may also use
/// `std::hint::black_box` directly.
pub use std::hint::black_box;

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Times one benchmark body.
pub struct Bencher {
    iterations: u64,
    /// Mean seconds per iteration of the last `iter` call.
    last_mean: Option<f64>,
}

impl Bencher {
    /// Run `routine` `iterations` times and record the mean time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        let total = start.elapsed().as_secs_f64();
        self.last_mean = Some(total / self.iterations as f64);
    }
}

/// The top-level harness.
pub struct Criterion {
    test_mode: bool,
    default_samples: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: false,
            default_samples: 20,
        }
    }
}

impl Criterion {
    /// Read harness flags (only `--test` matters here).
    pub fn configure_from_args(mut self) -> Self {
        self.test_mode = std::env::args().any(|a| a == "--test");
        self
    }

    /// Override the default iteration count per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_samples = n as u64;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            samples: None,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        let samples = self.default_samples;
        run_one(self.test_mode, samples, &id.to_string(), f);
    }
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    samples: Option<u64>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-benchmark iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = Some(n as u64);
        self
    }

    fn effective_samples(&self) -> u64 {
        self.samples.unwrap_or(self.parent.default_samples)
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        let label = format!("{}/{}", self.name, id);
        run_one(self.parent.test_mode, self.effective_samples(), &label, f);
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let label = format!("{}/{}", self.name, id);
        run_one(
            self.parent.test_mode,
            self.effective_samples(),
            &label,
            |b| f(b, input),
        );
    }

    /// End the group (accepted for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(test_mode: bool, samples: u64, label: &str, mut f: F) {
    let iterations = if test_mode { 1 } else { samples.max(1) };
    let mut b = Bencher {
        iterations,
        last_mean: None,
    };
    f(&mut b);
    match b.last_mean {
        Some(mean) if !test_mode => {
            println!(
                "{label:<40} time: {}  ({iterations} iters)",
                format_secs(mean)
            );
        }
        _ => {
            println!("{label:<40} ok");
        }
    }
}

fn format_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Collect benchmark functions into a runner the `criterion_main!`
/// macro can call.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(3);
        let mut ran = 0;
        g.bench_function("count", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        g.bench_with_input(BenchmarkId::from_parameter(7), &7usize, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
        assert!(ran >= 3);
    }
}
