//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The build container has no crates.io access, so the workspace vendors
//! a minimal serialization framework with the same *surface* syntax as
//! serde (`#[derive(Serialize, Deserialize)]`, `#[serde(default)]`,
//! `#[serde(default = "path")]`) but a much simpler contract: values
//! serialize into an in-memory [`Value`] tree which `serde_json` renders
//! to / parses from JSON text. The externally visible JSON produced is
//! compatible with real serde's default representation (struct → object,
//! unit enum variant → string, struct variant → externally tagged
//! object), so swapping the real crates back in later changes no output.

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::Value;

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    /// Render `self` as a JSON-like value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Create an error from a message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Fallback for a struct field missing from the input: `Option` fields
/// become `None` (mirroring serde's special-casing); everything else is
/// a "missing field" error. Used by the derive macro.
pub fn missing_field<T: Deserialize>(field: &str) -> Result<T, DeError> {
    T::from_value(&Value::Null).map_err(|_| DeError::custom(format!("missing field `{field}`")))
}

// ---------------------------------------------------------------- impls

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| {
                    DeError::custom(format!("expected unsigned integer, got {v:?}"))
                })?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| {
                    DeError::custom(format!("expected integer, got {v:?}"))
                })?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

ser_de_uint!(u8, u16, u32, u64, usize);
ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .ok_or_else(|| DeError::custom(format!("expected number, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool()
            .ok_or_else(|| DeError::custom(format!("expected bool, got {v:?}")))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::custom(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

/// `&'static str` fields (e.g. model names baked into device tables)
/// deserialize by leaking the parsed string — acceptable for the
/// configuration-sized inputs this workspace reads.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = String::from_value(v)?;
        Ok(Box::leak(s.into_boxed_str()))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::custom(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let a = v
            .as_array()
            .ok_or_else(|| DeError::custom("expected 2-element array"))?;
        if a.len() != 2 {
            return Err(DeError::custom(format!(
                "expected 2 elements, got {}",
                a.len()
            )));
        }
        Ok((A::from_value(&a[0])?, B::from_value(&a[1])?))
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::custom("expected object"))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::custom("expected object"))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Deserialize for Arc<str> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        String::from_value(v).map(Arc::from)
    }
}

/// Matches real serde's `{ "secs": …, "nanos": … }` encoding.
impl Serialize for Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), Value::U64(self.as_secs())),
            ("nanos".to_string(), Value::U64(self.subsec_nanos() as u64)),
        ])
    }
}

impl Deserialize for Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::custom("expected duration object"))?;
        let secs = value::get(obj, "secs")
            .and_then(Value::as_u64)
            .ok_or_else(|| DeError::custom("duration missing `secs`"))?;
        let nanos = value::get(obj, "nanos")
            .and_then(Value::as_u64)
            .ok_or_else(|| DeError::custom("duration missing `nanos`"))?;
        Ok(Duration::new(secs, nanos as u32))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
