//! The in-memory data model shared by the vendored `serde` facade and
//! `serde_json`: a JSON value tree. Object entries preserve insertion
//! order (like serde_json's `preserve_order` feature) so generated
//! documents are stable and diffable.

/// A JSON-like value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array of values.
    Array(Vec<Value>),
    /// Object: ordered key → value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) if *n >= 0 => Some(*n as u64),
            Value::F64(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) if *n <= i64::MAX as u64 => Some(*n as i64),
            Value::F64(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(*f as i64),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(f) => Some(*f),
            Value::I64(n) => Some(*n as f64),
            Value::U64(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object's entry list, if it is one.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Look up a key in an object value (`None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| get(o, key))
    }

    /// Index into an array value (`None` for non-arrays).
    pub fn get_index(&self, idx: usize) -> Option<&Value> {
        self.as_array().and_then(|a| a.get(idx))
    }
}

/// Look up a key in an object entry list.
pub fn get<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}
