//! Offline stand-in for the subset of `parking_lot` this workspace uses.
//!
//! The build container has no access to crates.io, so the workspace
//! vendors minimal API-compatible implementations of its external
//! dependencies (see `vendor/README.md`). This crate wraps
//! `std::sync` primitives behind `parking_lot`'s non-poisoning API:
//! `lock()`/`read()`/`write()` return guards directly, and a poisoned
//! std lock (a panic while holding the guard) is transparently
//! recovered, matching `parking_lot`'s behavior of ignoring panics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual exclusion primitive (non-poisoning façade over `std::sync::Mutex`).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so a condvar wait can temporarily take the std guard out.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Try to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard taken during condvar wait")
    }
}

/// Result of a timed condition-variable wait.
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable compatible with [`Mutex`].
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block on the condvar until notified, releasing the guard's mutex
    /// while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard already taken");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard already taken");
        let (g, r) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: r.timed_out(),
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wake all waiters.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// Reader-writer lock (non-poisoning façade over `std::sync::RwLock`).
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-access RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let h = thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut g = m.lock();
            while !*g {
                cv.wait_for(&mut g, Duration::from_millis(50));
            }
        });
        thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_one();
        h.join().unwrap();
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
