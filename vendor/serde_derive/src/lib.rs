//! Derive macros for the vendored `serde` facade.
//!
//! Implemented from scratch on raw `proc_macro` token trees (the
//! container has no `syn`/`quote`). Supports the shapes this workspace
//! actually uses:
//!
//! * structs with named fields,
//! * enums with unit and struct (named-field) variants,
//! * field attributes `#[serde(default)]` and `#[serde(default = "path")]`.
//!
//! Anything else (generics, tuple structs/variants, other serde
//! attributes) produces a `compile_error!` so unsupported uses fail
//! loudly instead of misbehaving.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------- model

#[derive(Debug, Clone)]
enum DefaultAttr {
    /// `#[serde(default)]` → `Default::default()`.
    Std,
    /// `#[serde(default = "path")]` → `path()`.
    Path(String),
}

#[derive(Debug, Clone)]
struct Field {
    name: String,
    default: Option<DefaultAttr>,
}

#[derive(Debug, Clone)]
struct Variant {
    name: String,
    /// `None` for unit variants, `Some(fields)` for struct variants.
    fields: Option<Vec<Field>>,
}

enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// --------------------------------------------------------------- parser

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            tokens: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Consume leading attributes, returning any `#[serde(...)]` default
    /// directive found among them.
    fn skip_attrs(&mut self) -> Result<Option<DefaultAttr>, String> {
        let mut default = None;
        loop {
            match self.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    self.next();
                    let group = match self.next() {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                        _ => return Err("malformed attribute".into()),
                    };
                    if let Some(d) = parse_serde_attr(group.stream())? {
                        default = Some(d);
                    }
                }
                _ => return Ok(default),
            }
        }
    }

    /// Consume `pub`, `pub(crate)`, etc. if present.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(i)) = self.peek() {
            if i.to_string() == "pub" {
                self.next();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.next();
                    }
                }
            }
        }
    }
}

/// Interpret the inside of a `#[...]` attribute; only `serde(...)`
/// attributes matter, everything else (docs, cfgs) is ignored.
fn parse_serde_attr(ts: TokenStream) -> Result<Option<DefaultAttr>, String> {
    let mut c = Cursor::new(ts);
    match c.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return Ok(None),
    }
    let inner = match c.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return Ok(None),
    };
    let mut c = Cursor::new(inner);
    match c.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "default" => match c.next() {
            None => Ok(Some(DefaultAttr::Std)),
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => match c.next() {
                Some(TokenTree::Literal(l)) => {
                    let s = l.to_string();
                    let path = s.trim_matches('"').to_string();
                    Ok(Some(DefaultAttr::Path(path)))
                }
                _ => Err("expected string literal after `default =`".into()),
            },
            _ => Err("unsupported `serde(default ...)` form".into()),
        },
        Some(other) => Err(format!(
            "vendored serde_derive does not support `#[serde({other})]`"
        )),
        None => Ok(None),
    }
}

/// Parse the `name: Type,` list inside a brace group.
fn parse_fields(ts: TokenStream) -> Result<Vec<Field>, String> {
    let mut c = Cursor::new(ts);
    let mut fields = Vec::new();
    loop {
        let default = c.skip_attrs()?;
        if c.at_end() {
            break;
        }
        c.skip_visibility();
        let name = match c.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field `{name}`, got {other:?}")),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut angle_depth: i64 = 0;
        while let Some(t) = c.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    c.next();
                    break;
                }
                _ => {}
            }
            c.next();
        }
        fields.push(Field { name, default });
    }
    Ok(fields)
}

fn parse_variants(ts: TokenStream) -> Result<Vec<Variant>, String> {
    let mut c = Cursor::new(ts);
    let mut variants = Vec::new();
    loop {
        c.skip_attrs()?;
        if c.at_end() {
            break;
        }
        let name = match c.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner = g.stream();
                c.next();
                Some(parse_fields(inner)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "vendored serde_derive does not support tuple variant `{name}`"
                ));
            }
            _ => None,
        };
        if let Some(TokenTree::Punct(p)) = c.peek() {
            if p.as_char() == ',' {
                c.next();
            }
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut c = Cursor::new(input);
    c.skip_attrs()?;
    c.skip_visibility();
    let kind = match c.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    let name = match c.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "vendored serde_derive does not support generic item `{name}`"
            ));
        }
    }
    let body = match c.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => TokenStream::new(),
        other => return Err(format!("unsupported item body for `{name}`: {other:?}")),
    };
    match kind.as_str() {
        "struct" => Ok(Item::Struct {
            name,
            fields: parse_fields(body)?,
        }),
        "enum" => Ok(Item::Enum {
            name,
            variants: parse_variants(body)?,
        }),
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

// -------------------------------------------------------------- codegen

fn struct_ser_body(access_prefix: &str, fields: &[Field]) -> String {
    let mut s = String::from("::serde::Value::Object(::std::vec![");
    for f in fields {
        s.push_str(&format!(
            "(\"{n}\".to_string(), ::serde::Serialize::to_value({p}{n})),",
            n = f.name,
            p = access_prefix,
        ));
    }
    s.push_str("])");
    s
}

fn struct_de_body(type_path: &str, fields: &[Field], obj_expr: &str) -> String {
    let mut s = format!("{type_path} {{");
    for f in fields {
        let fallback = match &f.default {
            None => format!("::serde::missing_field(\"{}\")?", f.name),
            Some(DefaultAttr::Std) => "::core::default::Default::default()".to_string(),
            Some(DefaultAttr::Path(p)) => format!("{p}()"),
        };
        s.push_str(&format!(
            "{n}: match ::serde::value::get({obj}, \"{n}\") {{ \
               ::core::option::Option::Some(__f) => ::serde::Deserialize::from_value(__f)?, \
               ::core::option::Option::None => {fb}, \
             }},",
            n = f.name,
            obj = obj_expr,
            fb = fallback,
        ));
    }
    s.push('}');
    s
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => format!(
            "impl ::serde::Serialize for {name} {{ \
               fn to_value(&self) -> ::serde::Value {{ {body} }} \
             }}",
            body = struct_ser_body("&self.", fields),
        ),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                match &v.fields {
                    None => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),",
                        v = v.name,
                    )),
                    Some(fields) => {
                        let binders: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => \
                               ::serde::Value::Object(::std::vec![(\"{v}\".to_string(), {inner})]),",
                            v = v.name,
                            binds = binders.join(", "),
                            inner = struct_ser_body("", fields),
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{ \
                   fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }} \
                 }}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => format!(
            "impl ::serde::Deserialize for {name} {{ \
               fn from_value(__v: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{ \
                 let __obj = __v.as_object().ok_or_else(|| \
                     ::serde::DeError::custom(\"expected object for {name}\"))?; \
                 ::core::result::Result::Ok({ctor}) \
               }} \
             }}",
            ctor = struct_de_body(name, fields, "__obj"),
        ),
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                match &v.fields {
                    None => unit_arms.push_str(&format!(
                        "\"{v}\" => ::core::result::Result::Ok({name}::{v}),",
                        v = v.name,
                    )),
                    Some(fields) => tagged_arms.push_str(&format!(
                        "\"{v}\" => {{ \
                           let __obj = __inner.as_object().ok_or_else(|| \
                               ::serde::DeError::custom(\"expected object for {name}::{v}\"))?; \
                           ::core::result::Result::Ok({ctor}) \
                         }},",
                        v = v.name,
                        ctor = struct_de_body(&format!("{name}::{}", v.name), fields, "__obj"),
                    )),
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{ \
                   fn from_value(__v: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{ \
                     match __v {{ \
                       ::serde::Value::Str(__s) => match __s.as_str() {{ \
                         {unit_arms} \
                         __other => ::core::result::Result::Err(::serde::DeError::custom( \
                             format!(\"unknown variant `{{__other}}` of {name}\"))), \
                       }}, \
                       ::serde::Value::Object(__o) if __o.len() == 1 => {{ \
                         let (__tag, __inner) = &__o[0]; \
                         match __tag.as_str() {{ \
                           {tagged_arms} \
                           __other => ::core::result::Result::Err(::serde::DeError::custom( \
                               format!(\"unknown variant `{{__other}}` of {name}\"))), \
                         }} \
                       }}, \
                       __other => ::core::result::Result::Err(::serde::DeError::custom( \
                           format!(\"expected {name} variant, got {{__other:?}}\"))), \
                     }} \
                   }} \
                 }}"
            )
        }
    }
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item).parse().expect("generated impl must parse"),
        Err(msg) => {
            let msg = msg.replace('"', "\\\"");
            format!("compile_error!(\"{msg}\");").parse().unwrap()
        }
    }
}

/// Derive `serde::Serialize` (vendored facade: renders to a `Value` tree).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derive `serde::Deserialize` (vendored facade: parses from a `Value` tree).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}
