//! Quickstart: the FBLAS host API on a simulated Stratix 10.
//!
//! Mirrors the classical OpenCL flow of the paper (Sec. II-B): open a
//! device context, allocate buffers in FPGA DRAM, invoke BLAS routines,
//! read results back. Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fblas_arch::Device;
use fblas_core::host::{blas, enqueue, Fpga, GemvTuning};
use fblas_core::routines::Trans;

fn main() {
    // 1. Open a context on the simulated board.
    let fpga = Fpga::new(Device::Stratix10Gx2800);
    println!("device: {}", fpga.device());
    println!(
        "DDR: {} banks x {:.1} GB/s\n",
        fpga.memory().bank_count(),
        fpga.memory().bank_bandwidth() / 1e9
    );

    // 2. Allocate device buffers and transfer data (f32 = the `s`
    //    routines; use f64 buffers for the `d` variants).
    let n = 4096usize;
    let x = fpga.alloc_from("x", (0..n).map(|i| (i % 7) as f32).collect::<Vec<_>>());
    let y = fpga.alloc_from("y", vec![1.0f32; n]);

    // 3. Level 1: SCAL, AXPY, DOT.
    let t = blas::scal(&fpga, 0.5, &x, 16).expect("scal");
    println!(
        "sscal : {:>10.2} us  ({:.0} MHz, {} DSPs)",
        t.micros(),
        t.freq_hz / 1e6,
        t.resources.dsps
    );

    let t = blas::axpy(&fpga, 2.0, &x, &y, 16).expect("axpy");
    println!(
        "saxpy : {:>10.2} us  (memory bound: {})",
        t.micros(),
        t.memory_bound
    );

    let (d, t) = blas::dot(&fpga, &x, &y, 32).expect("dot");
    println!("sdot  : {:>10.2} us  -> {:.3}", t.micros(), d);

    // 4. Level 2: GEMV with the paper's default tuning (1024x1024
    //    tiles, width 16), clamped to the problem.
    let m = 512usize;
    let a = fpga.alloc_from(
        "A",
        (0..m * m)
            .map(|i| ((i % 13) as f32) * 0.1)
            .collect::<Vec<_>>(),
    );
    let xv = fpga.alloc_from("xv", vec![1.0f32; m]);
    let yv = fpga.alloc_from("yv", vec![0.0f32; m]);
    let t = blas::gemv(
        &fpga,
        Trans::No,
        m,
        m,
        1.0,
        &a,
        &xv,
        0.0,
        &yv,
        &GemvTuning::default(),
    )
    .expect("gemv");
    println!(
        "sgemv : {:>10.2} us  (power {:.1} W)",
        t.micros(),
        t.power_w
    );
    println!("y[0..4] = {:?}", &yv.to_host()[..4]);

    // 5. Asynchronous call: enqueue NRM2 and wait on the event.
    let fpga2 = fpga.clone();
    let x2 = x.clone();
    let ev = enqueue(move || blas::nrm2(&fpga2, &x2, 16));
    let (norm, t) = ev.wait().expect("nrm2");
    println!("snrm2 : {:>10.2} us  -> {:.3} (async)", t.micros(), norm);
}
