//! Systolic GEMM: the paper's Level-3 flagship (Sec. III-C, Fig. 3).
//!
//! Builds systolic arrays of several shapes, runs them functionally
//! against the CPU reference, and sweeps the compute/memory tile ratio
//! to show the efficiency behaviour behind Fig. 10 (right).
//!
//! ```text
//! cargo run --release --example systolic_gemm
//! ```

use fblas_arch::{Device, FrequencyModel, RoutineClass};
use fblas_core::host::{blas, Fpga};
use fblas_core::routines::gemm::{Gemm, SystolicShape};
use fblas_refblas::level3;
use fblas_refblas::types::Trans;

fn main() {
    let fpga = Fpga::new(Device::Stratix10Gx2800);

    // Functional check against the CPU reference.
    let (n, m, k) = (48usize, 40usize, 32usize);
    let a: Vec<f32> = (0..n * k).map(|i| ((i % 17) as f32) * 0.25 - 1.0).collect();
    let b: Vec<f32> = (0..k * m).map(|i| ((i % 11) as f32) * 0.5 - 2.0).collect();
    let c0: Vec<f32> = vec![1.0; n * m];

    let a_buf = fpga.alloc_from("A", a.clone());
    let b_buf = fpga.alloc_from("B", b.clone());
    let c_buf = fpga.alloc_from("C", c0.clone());
    let shape = SystolicShape::new(4, 4);
    let t = blas::gemm(
        &fpga, n, m, k, 1.5, &a_buf, &b_buf, 0.5, &c_buf, shape, 8, 8,
    )
    .expect("gemm");

    let mut c_ref = c0;
    level3::gemm(
        Trans::No,
        Trans::No,
        n,
        m,
        k,
        1.5f32,
        &a,
        &b,
        0.5,
        &mut c_ref,
    );
    let got = c_buf.to_host();
    let max_err = got
        .iter()
        .zip(&c_ref)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max);
    println!("functional check vs CPU reference: max |err| = {max_err:.2e}");
    println!(
        "estimated time {:.1} us at {:.0} MHz\n",
        t.micros(),
        t.freq_hz / 1e6
    );

    // Tile-ratio sweep: the Fig. 10 (right) effect.
    println!("compute/memory tile ratio sweep (40x80 array, f32, Stratix):");
    println!(
        "{:>6} {:>12} {:>12} {:>10}",
        "ratio", "efficiency", "Gflop/s", "of peak"
    );
    let shape = SystolicShape::new(40, 80);
    let fm = FrequencyModel::new(Device::Stratix10Gx2800);
    for ratio in [1usize, 2, 3, 4, 6, 8, 12] {
        let (tr, tc) = (40 * ratio, 80 * ratio);
        let size = 5 * tr.max(tc); // paper: matrices 5x the memory tile
        let g = Gemm::new(size, size, size, shape, tr, tc);
        let est = g.estimate::<f32>();
        let util = est
            .resources
            .max_utilization(&Device::Stratix10Gx2800.model().available);
        let (freq, _) = fm.achieved_hz(RoutineClass::Systolic, false, util);
        let secs = g.cost::<f32>().cycles() as f64 / freq;
        let gflops = g.flops() as f64 / secs / 1e9;
        let peak = 2.0 * shape.pes() as f64 * freq / 1e9;
        println!(
            "{:>6} {:>11.1}% {:>12.1} {:>9.1}%",
            ratio,
            100.0 * g.efficiency(),
            gflops,
            100.0 * gflops / peak
        );
    }
    println!("\n(the paper reports 1.28 Tflop/s peak single precision on this array)");
}
