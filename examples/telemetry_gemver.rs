//! End-to-end telemetry correlation: one seeded GEMVER run, one run ID,
//! four observability surfaces.
//!
//! The example arms the metrics runtime, opens a seeded
//! [`fblas_metrics::RunScope`], and drives the full stack — lint the
//! `examples/lint/gemver.json` program document, build the plan, and
//! execute it with recovery under a tracer. It then asserts the *same*
//! 16-hex run ID appears in:
//!
//! 1. the Prometheus text dump (`fblas_run_info{run_id="..."} 1`),
//! 2. the JSON snapshot (`"run_id": "..."`, byte-stable round trip),
//! 3. the Perfetto trace (`otherData.run_id`),
//! 4. the `RecoveryReport` (`run_id` field).
//!
//! ci.sh runs this as the snapshot-schema / run-ID correlation
//! self-check.
//!
//! ```text
//! cargo run --release -p fblas-bench --example telemetry_gemver
//! ```

// Test/example code may unwrap; the clippy.toml discipline targets
// library code.
#![allow(clippy::disallowed_methods)]

use std::collections::HashMap;
use std::path::Path;

use fblas_core::composition::{execute_plan_with_recovery, plan, RetryPolicy};
use fblas_core::host::DeviceBuffer;
use fblas_lint::{classify, lint_json, Document};
use fblas_metrics::expo;
use fblas_trace::{perfetto, Tracer};
use serde::Value;

fn seq(n: usize, phase: f64) -> Vec<f64> {
    (0..n)
        .map(|i| ((i as f64 + phase) * 0.7311).cos())
        .collect()
}

fn main() {
    // Arm the runtime and pin the run identity: seeded, so a rerun of
    // this example correlates under the same ID.
    fblas_metrics::install(fblas_hlssim::env::metrics_shards());
    let scope = fblas_metrics::RunScope::seeded(0xF_B1A5);
    let run_id = scope.id().to_string();
    println!("run id: {run_id}");

    // Lint the program document (counts into fblas_lint_runs_total).
    let doc_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/lint/gemver.json");
    let json = std::fs::read_to_string(&doc_path).expect("read examples/lint/gemver.json");
    let lint = lint_json(&json, "gemver.json");
    assert_eq!(
        lint.errors(),
        0,
        "the shipped GEMVER document must lint clean:\n{}",
        lint.to_json()
    );

    // Plan and execute with recovery, traced.
    let (program, cfg) = match classify(&json).expect("document classifies") {
        Document::Program(doc) => (
            doc.to_program().expect("document builds a Program"),
            doc.config.planner_config(),
        ),
        other => panic!("expected a program document, got {other:?}"),
    };
    let planned = plan(&program, &cfg).expect("GEMVER plans");
    let n = 32usize;
    let buffers: HashMap<String, DeviceBuffer<f64>> = [
        ("A", n * n),
        ("B1", n * n),
        ("B", n * n),
        ("u1", n),
        ("v1", n),
        ("u2", n),
        ("v2", n),
        ("y", n),
        ("z", n),
        ("x", n),
        ("w", n),
    ]
    .iter()
    .enumerate()
    .map(|(i, (name, len))| {
        (
            name.to_string(),
            DeviceBuffer::from_vec(*name, seq(*len, i as f64), 0),
        )
    })
    .collect();
    let tracer = Tracer::new();
    let (_, report) = execute_plan_with_recovery::<f64>(
        &program,
        &planned,
        &cfg,
        &buffers,
        &RetryPolicy::default(),
        None,
        Some(&tracer),
    )
    .expect("GEMVER executes");

    // Surface 1: the recovery report.
    assert_eq!(
        report.run_id.as_deref(),
        Some(run_id.as_str()),
        "RecoveryReport must carry the scope's run ID"
    );

    // Surface 2: the Prometheus dump.
    let reg = fblas_metrics::registry().expect("runtime is armed");
    let collected = reg.collect();
    let prom = expo::prometheus_text(&collected);
    assert!(
        prom.contains(&format!("fblas_run_info{{run_id=\"{run_id}\"}} 1")),
        "Prometheus dump must carry fblas_run_info"
    );
    assert!(prom.contains("fblas_exec_attempts_total"));
    assert!(prom.contains("fblas_lint_runs_total 1"));
    assert!(prom.contains("fblas_channel_push_elements_total"));

    // Surface 3: the JSON snapshot — correct ID, byte-stable round trip.
    let snap = expo::snapshot_json(&collected);
    assert!(
        expo::snapshot_round_trips(&snap),
        "snapshot must re-serialize byte-identically"
    );
    let doc: Value = serde_json::from_str(&snap).expect("snapshot parses");
    assert_eq!(
        doc.get("run_id").and_then(Value::as_str),
        Some(run_id.as_str()),
        "snapshot must carry the scope's run ID"
    );
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some("fblas-metrics-snapshot-v1")
    );

    // Surface 4: the Perfetto trace.
    let trace: Value = serde_json::from_str(&perfetto::trace_json(&tracer)).expect("trace parses");
    assert_eq!(
        trace
            .get("otherData")
            .and_then(|o| o.get("run_id"))
            .and_then(Value::as_str),
        Some(run_id.as_str()),
        "Perfetto trace must carry the scope's run ID"
    );

    // With FBLAS_SNAPSHOT_OUT set, persist the snapshot so downstream
    // tooling (fblas-top --snapshot, ci.sh) can render and re-check it.
    if let Ok(path) = std::env::var("FBLAS_SNAPSHOT_OUT") {
        std::fs::write(&path, &snap).expect("write snapshot file");
        println!("snapshot written: {path}");
    }

    println!(
        "one run, four surfaces: recovery report, Prometheus dump, \
         JSON snapshot, Perfetto trace all carry run {run_id}"
    );
    println!(
        "attempts {}  components {}  snapshot bytes {}",
        report.attempts.len(),
        report.components,
        snap.len()
    );
}
