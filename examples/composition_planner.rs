//! Automatic composition planning — the paper's future work
//! ("a full general case analysis of MDAGs, deriving valid FBLAS
//! compositions", Sec. VIII) implemented.
//!
//! Describe a linear-algebra program over named operands; the planner
//! chooses GEMV streaming variants, validates the MDAG, and either
//! derives the required channel depths or splits the program into
//! sequential multitree components communicating through DRAM.
//!
//! ```text
//! cargo run --release --example composition_planner
//! ```

use std::collections::HashMap;

use fblas_core::composition::{execute_plan, plan, Op, PlannerConfig, Program};
use fblas_core::host::DeviceBuffer;

fn main() {
    let n = 4096usize;

    // ---------------- ATAX: y = A^T (A x) ----------------
    let mut atax = Program::new();
    atax.matrix("A", n, n)
        .vector("x", n)
        .vector("t", n)
        .vector("y", n);
    atax.op(Op::Gemv {
        alpha: 1.0,
        beta: 0.0,
        a: "A".into(),
        transposed: false,
        x: "x".into(),
        y: None,
        out: "t".into(),
    });
    atax.op(Op::Gemv {
        alpha: 1.0,
        beta: 0.0,
        a: "A".into(),
        transposed: true,
        x: "t".into(),
        y: None,
        out: "y".into(),
    });

    println!("=== ATAX, deep channels forbidden (paper fix b) ===");
    let p = plan(&atax, &PlannerConfig::default()).unwrap();
    print!("{}", p.describe(&atax));
    println!("total off-chip I/O: {} elements\n", p.io_elements());

    println!("=== ATAX, deep channels allowed (paper fix a) ===");
    let cfg = PlannerConfig {
        allow_deep_channels: true,
        ..Default::default()
    };
    let p = plan(&atax, &cfg).unwrap();
    print!("{}", p.describe(&atax));
    println!("total off-chip I/O: {} elements\n", p.io_elements());

    // ---------------- GEMVER (paper Fig. 9) ----------------
    let mut gemver = Program::new();
    gemver
        .matrix("A", n, n)
        .matrix("B1", n, n)
        .matrix("B", n, n);
    for v in ["u1", "v1", "u2", "v2", "y", "z", "x", "w"] {
        gemver.vector(v, n);
    }
    gemver.op(Op::Ger {
        alpha: 1.0,
        a: "A".into(),
        x: "u1".into(),
        y: "v1".into(),
        out: "B1".into(),
    });
    gemver.op(Op::Ger {
        alpha: 1.0,
        a: "B1".into(),
        x: "u2".into(),
        y: "v2".into(),
        out: "B".into(),
    });
    gemver.op(Op::Gemv {
        alpha: 0.9,
        beta: 1.0,
        a: "B".into(),
        transposed: true,
        x: "y".into(),
        y: Some("z".into()),
        out: "x".into(),
    });
    gemver.op(Op::Gemv {
        alpha: 1.1,
        beta: 0.0,
        a: "B".into(),
        transposed: false,
        x: "x".into(),
        y: None,
        out: "w".into(),
    });

    println!("=== GEMVER: the planner rediscovers the paper's Fig. 9 schedule ===");
    let p = plan(&gemver, &PlannerConfig::default()).unwrap();
    print!("{}", p.describe(&gemver));
    println!(
        "total off-chip I/O: {} elements (host layer: {} = 8N^2 + 10N)\n",
        p.io_elements(),
        8 * (n as u64) * (n as u64) + 10 * n as u64
    );

    // ---------------- Derive AND run ----------------
    // The executor instantiates each planned component on the dataflow
    // simulator — deriving a valid composition is not just analysis.
    println!("=== Executing the derived AXPYDOT plan on the simulator ===");
    let en = 512usize;
    let mut prog = Program::new();
    prog.vector("w", en)
        .vector("v", en)
        .vector("u", en)
        .vector("z", en)
        .scalar("beta");
    prog.op(Op::Axpy {
        alpha: -0.5,
        x: "v".into(),
        y: "w".into(),
        out: "z".into(),
    });
    prog.op(Op::Dot {
        x: "z".into(),
        y: "u".into(),
        out: "beta".into(),
    });
    let cfg = PlannerConfig {
        tn: 64,
        tm: 64,
        ..Default::default()
    };
    let the_plan = plan(&prog, &cfg).unwrap();

    let mut bufs: HashMap<String, DeviceBuffer<f32>> = HashMap::new();
    bufs.insert("w".into(), DeviceBuffer::from_vec("w", vec![2.0; en], 0));
    bufs.insert("v".into(), DeviceBuffer::from_vec("v", vec![1.0; en], 1));
    bufs.insert("u".into(), DeviceBuffer::from_vec("u", vec![3.0; en], 2));
    bufs.insert("z".into(), DeviceBuffer::from_vec("z", vec![0.0; en], 3));

    let out = execute_plan::<f32>(&prog, &the_plan, &cfg, &bufs).unwrap();
    // z = 2 - 0.5*1 = 1.5 everywhere; beta = 1.5 * 3 * 512.
    println!("z[0] = {} (expected 1.5)", bufs["z"].get(0));
    println!(
        "beta = {} (expected {})",
        out.scalars["beta"],
        1.5 * 3.0 * en as f32
    );
}
