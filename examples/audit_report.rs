//! Audit self-check: run the AXPYDOT paper fixture through the traced
//! composition executor, print the per-component audit reports, and exit
//! nonzero if the measured behavior drifts from the `C = L + I·M` model
//! beyond tolerance. `ci.sh` runs this as the audit gate.
//!
//! ```text
//! cargo run --release -p fblas-bench --example audit_report
//! ```
//!
//! The gate tolerance is deliberately loose (0.5 relative drift unless
//! `FBLAS_AUDIT_TOLERANCE` overrides it): the simulator measures wall
//! clock on whatever host CI lands on, so this is a sanity check that
//! the audit plumbing attributes time to the right modules — the tight
//! model-vs-model comparisons live in `cargo test` and `bench-diff`.

use std::collections::HashMap;
use std::process::ExitCode;

use fblas_core::composition::{execute_plan_audited, plan, Op, PlannerConfig, Program};
use fblas_core::host::DeviceBuffer;
use fblas_refblas as refblas;

/// CI hosts are noisy and often single-core: gate only on gross
/// misattribution, not scheduling jitter.
const GATE_TOLERANCE: f64 = 0.5;

fn main() -> ExitCode {
    // Drift attribution compares modeled busy share against measured
    // wall time, which only tracks the element-at-a-time hardware model
    // when the transport actually moves one element per lock round.
    // Pin the chunked transport to element-wise for the audited run.
    std::env::set_var("FBLAS_CHUNK", "1");

    let tolerance = std::env::var("FBLAS_AUDIT_TOLERANCE")
        .ok()
        .and_then(|v| v.trim().parse::<f64>().ok())
        .filter(|t| t.is_finite() && *t > 0.0 && *t <= 1.0)
        .unwrap_or(GATE_TOLERANCE);

    let n = 40_000usize;
    let mut p = Program::new();
    p.vector("w", n)
        .vector("v", n)
        .vector("u", n)
        .vector("z", n)
        .scalar("beta");
    p.op(Op::Axpy {
        alpha: -0.8,
        x: "v".into(),
        y: "w".into(),
        out: "z".into(),
    });
    p.op(Op::Dot {
        x: "z".into(),
        y: "u".into(),
        out: "beta".into(),
    });
    let cfg = PlannerConfig {
        tn: 64,
        tm: 64,
        ..Default::default()
    };
    let thep = plan(&p, &cfg).expect("axpydot plans");

    let seq =
        |seed: f64| -> Vec<f64> { (0..n).map(|i| ((i as f64 + seed) * 0.357).sin()).collect() };
    let (wv, vv, uv) = (seq(0.0), seq(1.0), seq(2.0));
    let buffers: HashMap<String, DeviceBuffer<f64>> = [
        ("w", wv.clone()),
        ("v", vv.clone()),
        ("u", uv.clone()),
        ("z", vec![0.0; n]),
    ]
    .into_iter()
    .enumerate()
    .map(|(i, (name, data))| (name.to_string(), DeviceBuffer::from_vec(name, data, i % 4)))
    .collect();

    println!("=== Audit self-check: AXPYDOT, N = {n}, tolerance {tolerance:.2} ===");
    let (out, reports) = execute_plan_audited::<f64>(&p, &thep, &cfg, &buffers, 200.0e6, tolerance)
        .expect("audited execution succeeds");

    // The audited path must still compute the right answer.
    let (_, beta_ref) = refblas::apps::axpydot(&wv, &vv, &uv, 0.8);
    if (out.scalars["beta"] - beta_ref).abs() > 1e-9 {
        eprintln!(
            "audit_report: wrong result: beta {} vs {}",
            out.scalars["beta"], beta_ref
        );
        return ExitCode::FAILURE;
    }

    let mut failed = false;
    for (i, report) in reports.iter().enumerate() {
        println!("\n--- component {i} ---");
        println!("{}", report.render());
        if report.bottleneck.is_none() {
            eprintln!("audit_report: component {i} named no bottleneck");
            failed = true;
        }
        for m in report.flagged() {
            eprintln!(
                "audit_report: component {i}: `{}` drifted {:+.0}% from the model ({})",
                m.module,
                m.drift.unwrap_or(0.0) * 100.0,
                m.attribution.describe()
            );
            failed = true;
        }
    }

    if failed {
        println!("\naudit self-check: FAILED (drift above tolerance {tolerance:.2})");
        ExitCode::FAILURE
    } else {
        println!("\naudit self-check: all modules within tolerance {tolerance:.2}");
        ExitCode::SUCCESS
    }
}
