//! Flight-recorder postmortem walkthrough: kill a seeded chaos run and
//! inspect the bundle it leaves behind.
//!
//! ```text
//! cargo run --release -p fblas-bench --example flight_postmortem
//! fblas-doctor <the path printed on the last line>
//! ```
//!
//! The example arms the metrics runtime and the flight recorder
//! (`FBLAS_FLIGHT=1` at 500 Hz so even a short run samples several
//! frames), then drives a GEMV composition through the recovery
//! executor with a seeded fault plan that corrupts the output stream on
//! *every* attempt — three stacked one-shot corrupt rules at the same
//! element index, one spent per retry. The retry budget exhausts, the
//! executor captures the authoritative postmortem bundle, and this
//! example verifies the forensics before printing where the bundle
//! landed (the last stdout line, which `ci.sh` feeds to
//! `fblas-doctor`).
//!
//! A `.det.json` sibling holding the deterministic view (wall-clock
//! section nulled) is written next to the bundle; two runs with the
//! same seed produce byte-identical deterministic documents.

use std::collections::HashMap;
use std::sync::Arc;

use fblas_chaos::{FaultAction, FaultPlan, FaultSite};
use fblas_core::composition::{
    execute_plan_with_recovery, plan, ExecError, Op, PlannerConfig, Program, RetryPolicy,
};
use fblas_core::host::DeviceBuffer;
use fblas_metrics::flight::{self, AnomalyKind};

const SEED: u64 = 4242;
const N: usize = 32;
/// Element index on the write-back stream every attempt corrupts.
const FAULT_INDEX: u64 = 5;
const MAX_ATTEMPTS: u32 = 3;

fn seq(n: usize, phase: f64) -> Vec<f64> {
    (0..n)
        .map(|i| ((i as f64 + phase) * 0.7311).cos())
        .collect()
}

fn main() {
    // Arm via the knobs so the example doubles as a walkthrough of the
    // FBLAS_FLIGHT_* surface. 500 Hz: a ~ms-scale run still samples
    // several frames. The output directory is respected when the caller
    // (ci.sh) set one; otherwise bundles land under the temp dir.
    std::env::set_var("FBLAS_FLIGHT", "1");
    std::env::set_var("FBLAS_FLIGHT_HZ", "500");
    std::env::set_var("FBLAS_FLIGHT_WINDOW", "2");
    if std::env::var_os("FBLAS_FLIGHT_DIR").is_none() {
        let dir = std::env::temp_dir().join("fblas-flight-demo");
        std::env::set_var("FBLAS_FLIGHT_DIR", &dir);
    }
    assert!(
        fblas_hlssim::env::arm_flight(),
        "FBLAS_FLIGHT=1 arms the recorder"
    );
    let _run = fblas_metrics::RunScope::seeded(SEED);
    flight::clear_last_bundle();

    let mut program = Program::new();
    program
        .matrix("A", N, N)
        .vector("x", N)
        .vector("y", N)
        .vector("o", N);
    program.op(Op::Gemv {
        alpha: 1.5,
        beta: -0.25,
        a: "A".into(),
        transposed: false,
        x: "x".into(),
        y: Some("y".into()),
        out: "o".into(),
    });
    let cfg = PlannerConfig {
        tn: N,
        tm: N,
        ..Default::default()
    };
    let planned = plan(&program, &cfg).expect("gemv plans");
    let buffers: HashMap<String, DeviceBuffer<f64>> = [
        ("A", seq(N * N, 0.0)),
        ("x", seq(N, 1.0)),
        ("y", seq(N, 2.0)),
        ("o", vec![0.0; N]),
    ]
    .into_iter()
    .map(|(name, data)| (name.to_string(), DeviceBuffer::from_vec(name, data, 0)))
    .collect();

    // One-shot rules are spent per attempt and channels restart their
    // element sequence on retry (fresh FIFOs), so stacking one rule per
    // attempt at the same index makes every attempt fail: guaranteed
    // budget exhaustion with MAX_ATTEMPTS-1 retries on the books.
    let mut hook = FaultPlan::new(Some(SEED));
    for _ in 0..MAX_ATTEMPTS {
        hook = hook.channel_fault(
            FaultSite::Push,
            "write_o",
            FAULT_INDEX,
            FaultAction::Corrupt { bit: 7 },
        );
    }
    let err = execute_plan_with_recovery::<f64>(
        &program,
        &planned,
        &cfg,
        &buffers,
        &RetryPolicy {
            max_attempts: MAX_ATTEMPTS,
            ..RetryPolicy::default()
        },
        Some(Arc::new(hook)),
        None,
    )
    .expect_err("every attempt is corrupted; the budget must exhaust");
    assert!(
        matches!(err.error, ExecError::Corrupt { .. }),
        "unexpected terminal error: {}",
        err.error
    );

    let bundle = flight::last_bundle().expect("exhaustion captured a bundle");
    assert_eq!(bundle.trigger.kind, "corruption");
    assert!(bundle.recovery.is_some(), "recovery report attached");
    assert!(
        bundle
            .anomalies
            .iter()
            .any(|a| a.kind == AnomalyKind::RetrySpike),
        "retry spike detected in the window: {:?}",
        bundle.anomalies
    );
    let run_id = bundle.run_id.clone().expect("run scope stamps the bundle");

    println!(
        "trigger : {} — {}",
        bundle.trigger.kind, bundle.trigger.detail
    );
    println!("retries : {} before exhaustion", err.report.retries);
    for a in &bundle.anomalies {
        println!(
            "anomaly : {} `{}` — {}",
            a.kind.label(),
            a.culprit,
            a.detail
        );
    }

    let dir = fblas_hlssim::env::flight_dir().expect("FBLAS_FLIGHT_DIR is set above");
    let det_path = dir.join(format!("postmortem-{run_id}.det.json"));
    std::fs::write(&det_path, bundle.deterministic_json() + "\n")
        .expect("write deterministic view");
    println!("deterministic view: {}", det_path.display());
    // Last line: the full bundle path, for piping into fblas-doctor.
    println!(
        "{}",
        dir.join(format!("postmortem-{run_id}.json")).display()
    );
}
