//! Streaming composition: chaining FBLAS modules through on-chip FIFOs
//! (paper Sec. V).
//!
//! Runs the paper's three composed applications in both the host-layer
//! (routine-by-routine through DRAM) and streaming variants, prints the
//! I/O and time comparison, validates the MDAGs, and demonstrates the
//! deterministic detection of the invalid ATAX composition.
//!
//! ```text
//! cargo run --release --example streaming_composition
//! ```

use fblas_arch::Device;
use fblas_core::apps::{
    atax_invalid_streaming, atax_mdag, atax_streaming, axpydot_host_layer, axpydot_mdag,
    axpydot_streaming, bicg_host_layer, bicg_streaming,
};
use fblas_core::host::{Fpga, GemvTuning};

fn main() {
    let fpga = Fpga::new(Device::Stratix10Gx2800);

    // ---------------- AXPYDOT (Fig. 6) ----------------
    let n = 1 << 14;
    let w = fpga.alloc_from("w", vec![2.0f32; n]);
    let v = fpga.alloc_from("v", vec![1.0f32; n]);
    let u = fpga.alloc_from("u", vec![0.5f32; n]);

    let (beta_s, rep_s) = axpydot_streaming(&fpga, &w, &v, &u, 1.0, 16).expect("streaming");
    let (_z, beta_h, rep_h) = axpydot_host_layer(&fpga, &w, &v, &u, 1.0, 16).expect("host layer");
    assert_eq!(beta_s, beta_h);
    println!("AXPYDOT (N = {n}):");
    println!(
        "  host layer : {:>9.1} us, {:>8} I/O elements",
        rep_h.micros(),
        rep_h.io_elements
    );
    println!(
        "  streaming  : {:>9.1} us, {:>8} I/O elements",
        rep_s.micros(),
        rep_s.io_elements
    );
    println!(
        "  speedup    : {:.2}x (paper Fig. 11: ~4x)",
        rep_h.seconds / rep_s.seconds
    );
    let g = axpydot_mdag(n as u64);
    println!(
        "  MDAG: {:?}, multitree: {:?}\n",
        g.validate(),
        g.is_multitree()
    );

    // ---------------- BICG (Fig. 7) ----------------
    let nn = 256usize;
    let a = fpga.alloc_from("A", vec![0.25f32; nn * nn]);
    let p = fpga.alloc_from("p", vec![1.0f32; nn]);
    let r = fpga.alloc_from("r", vec![1.0f32; nn]);
    let q = fpga.alloc_from("q", vec![0.0f32; nn]);
    let s = fpga.alloc_from("s", vec![0.0f32; nn]);
    let tuning = GemvTuning::new(64, 64, 16);
    let rep_s = bicg_streaming(&fpga, nn, nn, &a, &p, &r, &q, &s, &tuning).expect("bicg");
    let rep_h = bicg_host_layer(&fpga, nn, nn, &a, &p, &r, &q, &s, &tuning).expect("bicg host");
    println!("BICG ({nn}x{nn}): A read once instead of twice");
    println!(
        "  host layer : {:>9.1} us, {:>8} I/O elements",
        rep_h.micros(),
        rep_h.io_elements
    );
    println!(
        "  streaming  : {:>9.1} us, {:>8} I/O elements",
        rep_s.micros(),
        rep_s.io_elements
    );
    println!(
        "  speedup    : {:.2}x (paper: expected 1.7x, measured <= 1.45x)\n",
        rep_h.seconds / rep_s.seconds
    );

    // ---------------- ATAX (Fig. 8): validity matters ----------------
    let (an, am) = (96usize, 64usize);
    let a = fpga.alloc_from("A2", vec![0.5f32; an * am]);
    let x = fpga.alloc_from("x2", vec![1.0f32; am]);
    let y = fpga.alloc_from("y2", vec![0.0f32; am]);
    let tuning = GemvTuning::new(32, 32, 8);

    println!("ATAX ({an}x{am}): non-multitree composition");
    let g = atax_mdag(an as u64, am as u64, 32, 16);
    println!("  analysis with small FIFO: {:?}", g.validate());
    match atax_invalid_streaming(&fpga, an, am, &a, &x, &y, &tuning) {
        Err(e) => println!("  runtime with small FIFO : stalled as predicted ({e})"),
        Ok(_) => println!("  runtime with small FIFO : unexpectedly completed"),
    }
    let rep = atax_streaming(&fpga, an, am, &a, &x, &y, &tuning).expect("sized atax");
    println!(
        "  with FIFO sized to T_N*M: completes in {:.1} us ({} modules)",
        rep.micros(),
        rep.modules
    );
}
