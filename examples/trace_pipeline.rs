//! Trace a three-stage streaming pipeline and export the timeline.
//!
//! Runs `source -> scale -> sink` on the dataflow simulator with a
//! tracer attached, prints the plain-text run summary, and writes a
//! Chrome/Perfetto `trace_event` JSON file — open it at
//! <https://ui.perfetto.dev> (or `chrome://tracing`) to see one lane per
//! module with stall spans colored red (FIFO full) and orange (FIFO
//! empty), plus channel-occupancy counter tracks.
//!
//! ```text
//! cargo run --release -p fblas-bench --example trace_pipeline [out.json]
//! ```

use fblas_hlssim::{channel, ModuleKind, Simulation};
use fblas_trace::{perfetto, summary, Tracer};

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "trace_pipeline.json".to_string());
    let n = 50_000u64;

    let tracer = Tracer::new();
    let mut sim = Simulation::new();
    sim.set_tracer(tracer.clone());

    // Deliberately narrow FIFOs so the timeline shows backpressure.
    let (tx_a, rx_a) = channel::<f64>(sim.ctx(), 4, "src_to_scale");
    let (tx_b, rx_b) = channel::<f64>(sim.ctx(), 4, "scale_to_sink");

    sim.add_module("source", ModuleKind::Interface, move || {
        tx_a.push_iter((0..n).map(|i| i as f64))
    });
    sim.add_module("scale", ModuleKind::Compute, move || {
        for _ in 0..n {
            tx_b.push(rx_a.pop()? * 2.0)?;
        }
        Ok(())
    });
    sim.add_module("sink", ModuleKind::Interface, move || {
        let mut sum = 0.0;
        for _ in 0..n {
            sum += rx_b.pop()?;
        }
        // Checksum of 2 * sum(0..n).
        assert_eq!(sum, (n * (n - 1)) as f64);
        Ok(())
    });

    let report = sim.run().expect("pipeline completes");
    println!(
        "pipeline done: {} transfers in {:.1} ms\n",
        report.transfers,
        report.wall_time.as_secs_f64() * 1e3
    );

    print!("{}", summary::run_summary(&tracer));

    perfetto::write_trace(&tracer, &out).expect("write trace file");
    println!("\nPerfetto trace written to {out} — load it at https://ui.perfetto.dev");
}
