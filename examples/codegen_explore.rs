//! Code generator exploration: JSON routine specs to kernels and
//! space/time trade-offs (paper Sec. II-C and IV).
//!
//! Parses a routines-specification file, prints the generated
//! pseudo-OpenCL and resource estimates, checks which configurations
//! place-and-route on each device, and applies the optimal-width
//! formulas of Sec. IV-B.
//!
//! ```text
//! cargo run --release --example codegen_explore
//! ```

use fblas_arch::{design_overhead, optimal_width, optimal_width_tiled, Device, Precision};
use fblas_core::codegen::{generate_spec_file, RoutineKind};

const SPEC: &str = r#"{
  "routines": [
    { "blas_name": "sdot",  "user_name": "stream_dot", "width": 64 },
    { "blas_name": "ddot",  "width": 128 },
    { "blas_name": "sgemv", "width": 16, "tile_n": 1024, "tile_m": 1024,
      "tiles_by": "rows" },
    { "blas_name": "strsv", "uplo": "lower", "width": 8 },
    { "blas_name": "sgemm", "systolic_rows": 40, "systolic_cols": 80,
      "tile_n": 240, "tile_m": 480 },
    { "blas_name": "dgemm", "systolic_rows": 16, "systolic_cols": 16,
      "tile_n": 96, "tile_m": 96 }
  ]
}"#;

fn main() {
    let kernels = generate_spec_file(SPEC).expect("spec must be valid");

    println!("generated {} kernels\n", kernels.len());
    for k in &kernels {
        println!(
            "== {} ({:?}, {} precision, W = {}{}{})",
            k.name,
            k.kind,
            k.precision,
            k.width,
            k.tiles
                .map(|(a, b)| format!(", tiles {a}x{b}"))
                .unwrap_or_default(),
            k.systolic
                .map(|(a, b)| format!(", systolic {a}x{b}"))
                .unwrap_or_default(),
        );
        println!(
            "   estimate: {} | latency {} cycles",
            k.estimate.resources, k.estimate.latency
        );
        for dev in Device::ALL {
            let total = k.estimate.resources + design_overhead(dev, true);
            let fits = dev.model().fits(&total);
            println!(
                "   {:<8}: {} (max util {:.1}%)",
                dev.short_name(),
                if fits { "fits" } else { "DOES NOT FIT" },
                100.0 * total.max_utilization(&dev.model().available).min(9.99)
            );
        }
        if k.kind == RoutineKind::Dot {
            println!("--- kernel source ---\n{}", k.source);
        }
        println!();
    }

    // Sec. IV-B: dimension the circuit for the available bandwidth.
    let stratix = Device::Stratix10Gx2800.model();
    let f = 350.0e6;
    println!("optimal widths at {:.0} MHz:", f / 1e6);
    let w = optimal_width(stratix.dram_bank_bandwidth, f, Precision::Single, 2);
    println!(
        "  DOT from one bank ({:.1} GB/s): W = {w}",
        stratix.dram_bank_bandwidth / 1e9
    );
    let w = optimal_width(stratix.total_dram_bandwidth(), f, Precision::Single, 2);
    println!(
        "  DOT from all banks ({:.1} GB/s): W = {w}",
        stratix.total_dram_bandwidth() / 1e9
    );
    let w = optimal_width_tiled(
        stratix.dram_bank_bandwidth,
        f,
        Precision::Single,
        1024 * 1024,
    );
    println!("  tiled GEMV from one bank: W = {w} (tiling doubles the width)");
}
