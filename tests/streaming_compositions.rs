//! Integration: the composed applications against the CPU reference,
//! plus the Sec.-V validity analysis agreeing with runtime behaviour.

#![allow(clippy::needless_range_loop)] // explicit indices mirror the math

use fblas_arch::Device;
use fblas_core::apps::{
    atax_host_layer, atax_invalid_streaming, atax_mdag, atax_streaming, axpydot_host_layer,
    axpydot_mdag, axpydot_streaming, bicg_host_layer, bicg_mdag, bicg_streaming, gemver_host_layer,
    gemver_mdag, gemver_streaming,
};
use fblas_core::composition::Validity;
use fblas_core::host::{Fpga, GemvTuning};
use fblas_hlssim::SimError;
use fblas_refblas::apps as refapps;

fn seq(n: usize, seed: f64) -> Vec<f64> {
    (0..n).map(|i| ((i as f64 + seed) * 0.277).sin()).collect()
}

#[test]
fn axpydot_streaming_and_host_agree_with_reference() {
    let fpga = Fpga::new(Device::Stratix10Gx2800);
    let n = 513;
    let wv = seq(n, 0.0);
    let vv = seq(n, 1.0);
    let uv = seq(n, 2.0);
    let alpha = 1.25;
    let (z_ref, beta_ref) = refapps::axpydot(&wv, &vv, &uv, alpha);

    let w = fpga.alloc_from("w", wv);
    let v = fpga.alloc_from("v", vv);
    let u = fpga.alloc_from("u", uv);
    let (beta_s, rep_s) = axpydot_streaming(&fpga, &w, &v, &u, alpha, 8).unwrap();
    let (z_h, beta_h, rep_h) = axpydot_host_layer(&fpga, &w, &v, &u, alpha, 8).unwrap();

    assert!((beta_s - beta_ref).abs() < 1e-9);
    assert!((beta_h - beta_ref).abs() < 1e-9);
    for i in 0..n {
        assert!((z_h[i] - z_ref[i]).abs() < 1e-12);
    }
    assert!(rep_s.io_elements < rep_h.io_elements);
    assert!(rep_s.seconds < rep_h.seconds);
}

#[test]
fn bicg_matches_reference() {
    let fpga = Fpga::new(Device::Stratix10Gx2800);
    let (n, m) = (33, 21);
    let av = seq(n * m, 0.0);
    let pv = seq(m, 1.0);
    let rv = seq(n, 2.0);
    let (q_ref, s_ref) = refapps::bicg(n, m, &av, &pv, &rv);

    let a = fpga.alloc_from("a", av);
    let p = fpga.alloc_from("p", pv);
    let r = fpga.alloc_from("r", rv);
    let q = fpga.alloc::<f64>("q", n);
    let s = fpga.alloc::<f64>("s", m);
    let tuning = GemvTuning::new(8, 8, 4);
    bicg_streaming(&fpga, n, m, &a, &p, &r, &q, &s, &tuning).unwrap();
    let (qg, sg) = (q.to_host(), s.to_host());
    for i in 0..n {
        assert!((qg[i] - q_ref[i]).abs() < 1e-9, "q[{i}]");
    }
    for j in 0..m {
        assert!((sg[j] - s_ref[j]).abs() < 1e-9, "s[{j}]");
    }

    // Host layer produces the same values.
    let q2 = fpga.alloc::<f64>("q2", n);
    let s2 = fpga.alloc::<f64>("s2", m);
    bicg_host_layer(&fpga, n, m, &a, &p, &r, &q2, &s2, &tuning).unwrap();
    for i in 0..n {
        assert!((q2.get(i) - q_ref[i]).abs() < 1e-9);
    }
    for j in 0..m {
        assert!((s2.get(j) - s_ref[j]).abs() < 1e-9);
    }
}

#[test]
fn atax_variants_match_reference_and_analysis() {
    let fpga = Fpga::new(Device::Stratix10Gx2800);
    let (n, m) = (30, 20);
    let av = seq(n * m, 3.0);
    let xv = seq(m, 4.0);
    let y_ref = refapps::atax(n, m, &av, &xv);

    let a = fpga.alloc_from("a", av);
    let x = fpga.alloc_from("x", xv);
    let y = fpga.alloc::<f64>("y", m);
    let tuning = GemvTuning::new(10, 10, 2);

    atax_streaming(&fpga, n, m, &a, &x, &y, &tuning).unwrap();
    let got = y.to_host();
    for j in 0..m {
        assert!((got[j] - y_ref[j]).abs() < 1e-9, "streaming y[{j}]");
    }

    let y2 = fpga.alloc::<f64>("y2", m);
    atax_host_layer(&fpga, n, m, &a, &x, &y2, &tuning).unwrap();
    for j in 0..m {
        assert!((y2.get(j) - y_ref[j]).abs() < 1e-9, "host y[{j}]");
    }

    // The undersized composition stalls; the analysis predicts it.
    match atax_invalid_streaming(&fpga, n, m, &a, &x, &y, &tuning) {
        Err(SimError::Stall { .. }) => {}
        other => panic!("expected stall, got {other:?}"),
    }
    match atax_mdag(n as u64, m as u64, 10, 16).validate() {
        Validity::RequiresChannelDepth { min_depth, .. } => {
            assert_eq!(min_depth, 10 * m as u64);
        }
        other => panic!("analysis disagrees: {other:?}"),
    }
}

#[test]
fn gemver_matches_reference() {
    let fpga = Fpga::new(Device::Stratix10Gx2800);
    let n = 16;
    let av = seq(n * n, 0.0);
    let u1v = seq(n, 1.0);
    let v1v = seq(n, 2.0);
    let u2v = seq(n, 3.0);
    let v2v = seq(n, 4.0);
    let yv = seq(n, 5.0);
    let zv = seq(n, 6.0);
    let (alpha, beta) = (0.9, 1.1);
    let r = refapps::gemver(n, alpha, beta, &av, &u1v, &v1v, &u2v, &v2v, &yv, &zv);

    let a = fpga.alloc_from("a", av);
    let u1 = fpga.alloc_from("u1", u1v);
    let v1 = fpga.alloc_from("v1", v1v);
    let u2 = fpga.alloc_from("u2", u2v);
    let v2 = fpga.alloc_from("v2", v2v);
    let y = fpga.alloc_from("y", yv);
    let z = fpga.alloc_from("z", zv);
    let b = fpga.alloc::<f64>("b", n * n);
    let x = fpga.alloc::<f64>("x", n);
    let w = fpga.alloc::<f64>("w", n);
    let tuning = GemvTuning::new(4, 4, 2);

    for streaming in [true, false] {
        let rep = if streaming {
            gemver_streaming(
                &fpga, n, alpha, beta, &a, &u1, &v1, &u2, &v2, &y, &z, &b, &x, &w, &tuning,
            )
            .unwrap()
        } else {
            gemver_host_layer(
                &fpga, n, alpha, beta, &a, &u1, &v1, &u2, &v2, &y, &z, &b, &x, &w, &tuning,
            )
            .unwrap()
        };
        let (bg, xg, wg) = (b.to_host(), x.to_host(), w.to_host());
        for i in 0..n * n {
            assert!(
                (bg[i] - r.b[i]).abs() < 1e-9,
                "streaming={streaming} B[{i}]"
            );
        }
        for i in 0..n {
            assert!(
                (xg[i] - r.x[i]).abs() < 1e-9,
                "streaming={streaming} x[{i}]"
            );
            assert!(
                (wg[i] - r.w[i]).abs() < 1e-9,
                "streaming={streaming} w[{i}]"
            );
        }
        assert!(rep.seconds > 0.0);
    }
}

#[test]
fn all_app_mdags_validate_as_documented() {
    assert_eq!(axpydot_mdag(1000).validate(), Validity::Valid);
    assert_eq!(bicg_mdag(100, 50).validate(), Validity::Valid);
    assert_eq!(gemver_mdag(64).validate(), Validity::Valid);
    // ATAX needs the sized channel.
    assert!(matches!(
        atax_mdag(100, 50, 10, 16).validate(),
        Validity::RequiresChannelDepth { .. }
    ));
    assert_eq!(
        atax_mdag(100, 50, 10, 10 * 50 + 64).validate(),
        Validity::Valid
    );
}

#[test]
fn io_reductions_match_paper_formulas() {
    // AXPYDOT: 7N → 3N + 1.
    let n = 4096u64;
    assert_eq!(axpydot_mdag(n).interface_io_elements(), 3 * n + 1);
    // BICG: A contributes NM once in the streamed graph.
    let g = bicg_mdag(256, 128);
    assert_eq!(g.interface_io_elements(), 256 * 128 + 2 * (256 + 128));
    // GEMVER component 1: A in, B out, 4 rank-1 vectors, y in, x out.
    let g = gemver_mdag(128);
    let n = 128u64;
    assert_eq!(g.interface_io_elements(), 2 * n * n + 6 * n);
}
