//! Flight recorder + postmortem forensics, end to end: a watchdog stall
//! and an exhausted recovery budget must each leave a schema-v1 bundle
//! whose anomaly list names the true culprit, and seeded chaos bundles
//! must render byte-identical deterministic documents.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use fblas_chaos::{FaultAction, FaultPlan, FaultSite};
use fblas_core::composition::{
    execute_plan_with_recovery, plan, ExecError, Op, PlannerConfig, Program, RetryPolicy,
};
use fblas_core::host::DeviceBuffer;
use fblas_hlssim::{channel, ModuleKind, SimError, Simulation};
use fblas_metrics::flight::{self, AnomalyKind, FlightConfig, PostmortemBundle};
use serde::Value;

/// The recorder, registry, and last-bundle slot are process-global;
/// every test takes this lock.
static LOCK: parking_lot::Mutex<()> = parking_lot::Mutex::new(());

/// Arm metrics + a fast recorder and clear the last-bundle slot.
fn arm(hz: u32) {
    fblas_metrics::install(fblas_hlssim::env::metrics_shards());
    flight::install(FlightConfig { hz, window_s: 2 });
    flight::clear_last_bundle();
}

fn seq(n: usize, phase: f64) -> Vec<f64> {
    (0..n)
        .map(|i| ((i as f64 + phase) * 0.7311).cos())
        .collect()
}

/// Cross-blocked two-channel deadlock: `src` fills the depth-4 `hot`
/// FIFO before it ever feeds `side`, while `sink` pops `side` first —
/// the classic under-depth composition of the paper's Sec. V-B.
fn deadlocked_sim() -> Simulation {
    let mut sim = Simulation::new();
    sim.set_grace(Duration::from_millis(80));
    let (hot_tx, hot_rx) = channel::<u64>(sim.ctx(), 4, "hot");
    let (side_tx, side_rx) = channel::<u64>(sim.ctx(), 1, "side");
    sim.add_module("src", ModuleKind::Interface, move || {
        hot_tx.push_iter(0..64)?;
        side_tx.push(99)
    });
    sim.add_module("sink", ModuleKind::Compute, move || {
        side_rx.pop()?;
        hot_rx.pop_n(64).map(|_| ())
    });
    sim
}

#[test]
fn watchdog_stall_captures_bundle_naming_the_pinned_channel() {
    let _g = LOCK.lock();
    arm(200);
    let err = deadlocked_sim().run().expect_err("composition deadlocks");
    let report = match err {
        SimError::Stall { report } => report,
        other => panic!("expected a stall, got {other:?}"),
    };
    assert!(report.blocked_on("src").is_some());

    let bundle = flight::last_bundle().expect("stall captured a bundle");
    assert_eq!(bundle.trigger.kind, "stall");
    assert!(bundle.trigger.detail.contains("80 ms grace"));
    let stall = bundle.stall.as_ref().expect("wait-for graph attached");
    let blocked = stall
        .get("blocked")
        .and_then(Value::as_array)
        .expect("blocked list serialized");
    assert_eq!(blocked.len(), report.blocked.len());

    // The anomaly list names the true culprit: `hot` sat pinned at
    // capacity 4 through the grace window; `side` (empty) stays clean.
    let pinned: Vec<&str> = bundle
        .anomalies
        .iter()
        .filter(|a| a.kind == AnomalyKind::OccupancyPinned)
        .map(|a| a.culprit.as_str())
        .collect();
    assert_eq!(pinned, ["hot"], "anomalies: {:?}", bundle.anomalies);

    // The full document is schema-stamped, byte-stable, and parseable.
    let text = bundle.to_json();
    assert_eq!(text, bundle.to_json());
    let doc: Value = serde_json::from_str(&text).expect("bundle parses");
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some(flight::BUNDLE_SCHEMA)
    );
    assert!(
        doc.get("wall")
            .and_then(|w| w.get("frames"))
            .and_then(Value::as_array)
            .is_some_and(|f| f.len() >= 2),
        "watchdog polls sampled at least two frames"
    );
}

fn gemv_exhaustion_case() -> (
    Program,
    PlannerConfig,
    HashMap<String, DeviceBuffer<f64>>,
    FaultPlan,
) {
    const N: usize = 32;
    let mut program = Program::new();
    program
        .matrix("A", N, N)
        .vector("x", N)
        .vector("y", N)
        .vector("o", N);
    program.op(Op::Gemv {
        alpha: 1.5,
        beta: -0.25,
        a: "A".into(),
        transposed: false,
        x: "x".into(),
        y: Some("y".into()),
        out: "o".into(),
    });
    let cfg = PlannerConfig {
        tn: N,
        tm: N,
        ..Default::default()
    };
    let buffers = [
        ("A", seq(N * N, 0.0)),
        ("x", seq(N, 1.0)),
        ("y", seq(N, 2.0)),
        ("o", vec![0.0; N]),
    ]
    .into_iter()
    .map(|(name, data)| (name.to_string(), DeviceBuffer::from_vec(name, data, 0)))
    .collect();
    // One-shot rules are spent per attempt, so three stacked rules at
    // the same element index fail all three attempts of the budget.
    let mut hook = FaultPlan::new(Some(4242));
    for _ in 0..3 {
        hook = hook.channel_fault(
            FaultSite::Push,
            "write_o",
            5,
            FaultAction::Corrupt { bit: 7 },
        );
    }
    (program, cfg, buffers, hook)
}

/// Run the seeded exhaustion scenario once and return its bundle.
fn run_exhaustion() -> Arc<PostmortemBundle> {
    arm(500);
    let _run = fblas_metrics::RunScope::seeded(0xF11A);
    let (program, cfg, buffers, hook) = gemv_exhaustion_case();
    let planned = plan(&program, &cfg).expect("gemv plans");
    let err = execute_plan_with_recovery::<f64>(
        &program,
        &planned,
        &cfg,
        &buffers,
        &RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        },
        Some(Arc::new(hook)),
        None,
    )
    .expect_err("every attempt is corrupted");
    assert!(matches!(err.error, ExecError::Corrupt { .. }));
    assert_eq!(err.report.retries, 2);
    flight::last_bundle().expect("exhaustion captured a bundle")
}

#[test]
fn recovery_exhaustion_captures_bundle_with_retry_spike() {
    let _g = LOCK.lock();
    let bundle = run_exhaustion();
    assert_eq!(bundle.trigger.kind, "corruption");
    let run_id = bundle
        .run_id
        .as_deref()
        .expect("run scope stamps the bundle");
    assert_eq!(run_id.len(), 16);
    assert!(run_id.chars().all(|c| c.is_ascii_hexdigit()));

    let recovery = bundle.recovery.as_ref().expect("recovery report attached");
    assert_eq!(recovery.get("retries").and_then(Value::as_u64), Some(2));
    assert_eq!(
        recovery
            .get("attempts")
            .and_then(Value::as_array)
            .map(Vec::len),
        Some(3)
    );
    // The attempts completed their simulations, so the per-channel
    // integrity guards rode along and the dirty write-back is visible.
    let guards = bundle.guards.as_ref().expect("guard reports attached");
    assert!(
        guards.as_array().is_some_and(|g| g.iter().any(|r| {
            r.get("channel").and_then(Value::as_str) == Some("write_o")
                && r.get("digests_match").and_then(Value::as_bool) == Some(false)
        })),
        "guards: {guards:?}"
    );
    assert!(
        bundle
            .anomalies
            .iter()
            .any(|a| a.kind == AnomalyKind::RetrySpike && a.culprit == "executor"),
        "anomalies: {:?}",
        bundle.anomalies
    );
}

/// Two *simultaneous* failing runs on different threads — the serving
/// layer's steady state — must each get their own run ID and their own
/// `postmortem-<runid>.json` in `FBLAS_FLIGHT_DIR`. This is the
/// regression test for the old process-global `RunScope`, under which
/// concurrent workers clobbered each other's IDs and one bundle file
/// overwrote the other.
#[test]
fn concurrent_failing_runs_write_distinct_postmortems() {
    let _g = LOCK.lock();
    let dir = std::env::temp_dir().join(format!("fblas-flight-conc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::env::set_var("FBLAS_FLIGHT_DIR", &dir);
    arm(500);

    let barrier = Arc::new(std::sync::Barrier::new(2));
    let run_ids: Vec<String> = [0xAAAA_u64, 0xBBBB_u64]
        .into_iter()
        .map(|seed| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let run = fblas_metrics::RunScope::seeded(seed);
                let (program, cfg, buffers, hook) = gemv_exhaustion_case();
                let planned = plan(&program, &cfg).expect("gemv plans");
                barrier.wait();
                execute_plan_with_recovery::<f64>(
                    &program,
                    &planned,
                    &cfg,
                    &buffers,
                    &RetryPolicy {
                        max_attempts: 3,
                        ..RetryPolicy::default()
                    },
                    Some(Arc::new(hook)),
                    None,
                )
                .expect_err("every attempt is corrupted");
                run.id().to_string()
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().expect("worker thread survives"))
        .collect();
    std::env::remove_var("FBLAS_FLIGHT_DIR");

    assert_ne!(run_ids[0], run_ids[1], "concurrent runs shared a run ID");
    for id in &run_ids {
        let path = dir.join(format!("postmortem-{id}.json"));
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing bundle {}: {e}", path.display()));
        let doc: Value = serde_json::from_str(&text).expect("bundle parses");
        assert_eq!(
            doc.get("run_id").and_then(Value::as_str),
            Some(id.as_str()),
            "bundle {} stamped with the wrong run",
            path.display()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Two runs of the same seeded chaos scenario must render byte-identical
/// deterministic documents — the invariant ci.sh compares across two
/// full executions of the flight_postmortem example.
#[test]
fn seeded_bundles_render_identical_deterministic_documents() {
    let _g = LOCK.lock();
    let det_a = run_exhaustion().deterministic_json();
    flight::clear_last_bundle();
    let det_b = run_exhaustion().deterministic_json();
    assert_eq!(det_a, det_b, "seeded deterministic bundles diverged");
    assert!(det_a.contains("\"wall\": null"));
    assert!(!det_a.contains("FBLAS_FLIGHT_DIR"));
}
