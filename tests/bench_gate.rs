//! End-to-end test of the `bench-diff` regression gate: a matched run
//! passes, an injected >N% throughput regression fails the gate with a
//! nonzero exit (the CI contract), volatile CPU columns never gate, and
//! `--bless` refreshes the baselines.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use fblas_bench::audit::stamp_audit;
use fblas_bench::metrics::{BenchReport, Cell};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fblas-bench-gate-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Write a minimal bench document with one gated and one volatile cell.
fn write_doc(dir: &Path, bench: &str, gops: f64, cpu_s: f64) {
    let mut r = BenchReport::new(bench);
    stamp_audit(&mut r, &[]);
    r.meta("device", "test");
    r.add_row([
        ("w", Cell::U(16)),
        ("gops", Cell::F(gops)),
        ("cpu_s", Cell::F(cpu_s)),
    ]);
    std::fs::write(dir.join(format!("BENCH_{bench}.json")), r.json()).unwrap();
}

fn bench_diff(baselines: &Path, current: &Path, extra: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_bench-diff"))
        .arg("--baselines")
        .arg(baselines)
        .arg("--current")
        .arg(current)
        .args(extra)
        .output()
        .expect("spawn bench-diff")
}

#[test]
fn matched_run_passes_the_gate() {
    let (base, cur) = (scratch("match-base"), scratch("match-cur"));
    write_doc(&base, "fig10", 120.0, 1.0);
    // Volatile CPU wall-clock may drift arbitrarily without gating.
    write_doc(&cur, "fig10", 120.0, 3.7);
    let out = bench_diff(&base, &cur, &[]);
    assert!(
        out.status.success(),
        "gate failed on a matched run: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn injected_regression_fails_the_gate() {
    let (base, cur) = (scratch("reg-base"), scratch("reg-cur"));
    write_doc(&base, "fig10", 120.0, 1.0);
    // 10% throughput drop: well beyond the 2% default tolerance.
    write_doc(&cur, "fig10", 108.0, 1.0);
    let out = bench_diff(&base, &cur, &[]);
    assert_eq!(out.status.code(), Some(1), "regression must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("gops"),
        "gate must name the column: {stdout}"
    );

    // The same drop passes when the tolerance is loosened past it.
    let out = bench_diff(&base, &cur, &["--tolerance", "0.2"]);
    assert!(out.status.success());
}

#[test]
fn missing_current_document_fails_the_gate() {
    let (base, cur) = (scratch("miss-base"), scratch("miss-cur"));
    write_doc(&base, "fig10", 120.0, 1.0);
    let out = bench_diff(&base, &cur, &[]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("no current run"));
}

#[test]
fn bless_refreshes_baselines_in_place() {
    let (base, cur) = (scratch("bless-base"), scratch("bless-cur"));
    write_doc(&cur, "fig10", 200.0, 1.0);

    let out = bench_diff(&base, &cur, &["--bless"]);
    assert!(
        out.status.success(),
        "bless failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(base.join("BENCH_fig10.json").exists());

    // The blessed baseline gates the run it was taken from cleanly.
    let out = bench_diff(&base, &cur, &[]);
    assert!(out.status.success());
}
