//! Chaos + recovery integration: seeded fault plans driven through the
//! full planner → executor → hlssim stack must be detected, recovered,
//! and reported deterministically.
//!
//! Covers the robustness contract end to end: mid-chunk panic teardown
//! (poison names the culprit, peers never stall), watchdog deadline
//! expiry of a hung injected module, byte-identical seeded recovery
//! reports across runs, transactional write-back leaving buffers
//! untouched on exhaustion, and 100% detection of single bit flips
//! across the mantissa/exponent/sign range for DOT, GEMV and GER.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use fblas_chaos::{FaultAction, FaultPlan, FaultSite, ModuleFault};
use fblas_core::composition::{
    execute_plan_with_recovery, plan, ExecError, Op, PlannerConfig, Program, RecoveryErrorKind,
    RetryPolicy,
};
use fblas_core::host::DeviceBuffer;
use fblas_hlssim::{channel, ChunkWriter, ModuleKind, SimError, Simulation};

fn seq(n: usize, phase: f64) -> Vec<f64> {
    (0..n)
        .map(|i| ((i as f64 + phase) * 0.7311).cos())
        .collect()
}

fn bufs(entries: &[(&str, Vec<f64>)]) -> HashMap<String, DeviceBuffer<f64>> {
    entries
        .iter()
        .map(|(name, data)| {
            (
                name.to_string(),
                DeviceBuffer::from_vec(*name, data.clone(), 0),
            )
        })
        .collect()
}

/// A module that panics in the middle of a buffered chunk must not
/// strand its peer: the `ChunkWriter` drop salvage flushes what it can,
/// panic poisoning propagates, the panicking module's error surfaces,
/// and the blocked peer unwinds with `Poisoned { by }` naming the
/// culprit — not a stall, not a silent hang.
#[test]
fn mid_chunk_panic_tears_down_with_culprit_named() {
    let mut sim = Simulation::new();
    let ctx = sim.ctx().clone();
    let (tx, rx) = channel::<u64>(sim.ctx(), 64, "chunked");
    sim.add_module("chunky", ModuleKind::Compute, move || {
        let mut w = ChunkWriter::with_chunk(&tx, 16);
        for i in 0..24u64 {
            w.push(i)?;
            if i == 19 {
                panic!("injected mid-chunk failure");
            }
        }
        w.flush()
    });
    sim.add_module("sink", ModuleKind::Compute, move || {
        rx.pop_n(24).map(|_| ())
    });
    match sim.run() {
        Err(SimError::Module { module, detail }) => {
            assert_eq!(module, "chunky");
            assert!(detail.contains("panicked"), "{detail}");
        }
        other => panic!("expected the panicking module's error, got {other:?}"),
    }
    assert_eq!(ctx.poison_cause(), Some("chunky".to_string()));
}

/// An injected hang (live thread, zero progress) is invisible to stall
/// detection — only the wall-clock deadline can catch it, and the
/// forensics must survive into the error.
#[test]
fn hung_injected_module_expires_on_deadline_with_forensics() {
    let mut sim = Simulation::new();
    sim.set_deadline(Duration::from_millis(300));
    sim.ctx().arm_faults(Arc::new(
        FaultPlan::new(None).module_fault("sink", ModuleFault::Hang),
    ));
    let (tx, rx) = channel::<u32>(sim.ctx(), 4, "starved");
    sim.add_module("src", ModuleKind::Interface, move || tx.push_iter(0..64));
    sim.add_module("sink", ModuleKind::Compute, move || {
        rx.pop_n(64).map(|_| ())
    });
    match sim.run() {
        Err(SimError::Deadline { report }) => {
            // The hung sink never pops, so the producer fills the FIFO
            // and must appear channel-blocked in the snapshot.
            let b = report.blocked_on("src").expect("src in wait-for graph");
            assert_eq!(b.channel, "starved");
        }
        other => panic!("expected deadline, got {other:?}"),
    }
}

fn gemv_program() -> (Program, PlannerConfig, Vec<(&'static str, Vec<f64>)>) {
    const N: usize = 32;
    let mut p = Program::new();
    p.matrix("A", N, N)
        .vector("x", N)
        .vector("y", N)
        .vector("o", N);
    p.op(Op::Gemv {
        alpha: 1.5,
        beta: -0.25,
        a: "A".into(),
        transposed: false,
        x: "x".into(),
        y: Some("y".into()),
        out: "o".into(),
    });
    let cfg = PlannerConfig {
        tn: N,
        tm: N,
        ..Default::default()
    };
    let bindings = vec![
        ("A", seq(N * N, 0.0)),
        ("x", seq(N, 1.0)),
        ("y", seq(N, 2.0)),
        ("o", vec![0.0; N]),
    ];
    (p, cfg, bindings)
}

/// Two runs of the same seeded fault plan must serialize to
/// byte-identical `FaultReport` and `RecoveryReport` JSON — the
/// determinism guarantee `ci.sh` leans on.
#[test]
fn seeded_recovery_runs_are_byte_identical() {
    let (program, cfg, bindings) = gemv_program();
    let planned = plan(&program, &cfg).unwrap();
    let run = || {
        let hook = Arc::new(
            FaultPlan::new(Some(77))
                .channel_fault(
                    FaultSite::Push,
                    "write_o",
                    9,
                    FaultAction::Corrupt { bit: 3 },
                )
                .module_fault("gemv", ModuleFault::Crash),
        );
        let b = bufs(&bindings);
        let (_, report) = execute_plan_with_recovery::<f64>(
            &program,
            &planned,
            &cfg,
            &b,
            &RetryPolicy {
                max_attempts: 4,
                ..RetryPolicy::default()
            },
            Some(hook.clone()),
            None,
        )
        .expect("recovers within budget");
        (
            serde_json::to_string(&hook.report()).unwrap(),
            serde_json::to_string(&report).unwrap(),
            b["o"].to_host(),
        )
    };
    let (fault_a, rec_a, out_a) = run();
    let (fault_b, rec_b, out_b) = run();
    assert_eq!(
        fault_a, fault_b,
        "fault reports diverged across seeded runs"
    );
    assert_eq!(rec_a, rec_b, "recovery reports diverged across seeded runs");
    assert_eq!(
        out_a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        out_b.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "recovered outputs diverged across seeded runs"
    );
}

/// With the retry budget exhausted, the transactional write-back must
/// leave the real buffers exactly as they were — corrupt results never
/// leak out of the staged scratch copies.
#[test]
fn exhausted_retries_do_not_leak_corrupt_writes() {
    let (program, cfg, bindings) = gemv_program();
    let planned = plan(&program, &cfg).unwrap();
    let b = bufs(&bindings);
    let o_before = b["o"].to_host();
    let hook = Arc::new(FaultPlan::new(None).channel_fault(
        FaultSite::Push,
        "write_o",
        5,
        FaultAction::Corrupt { bit: 61 },
    ));
    let err = execute_plan_with_recovery::<f64>(
        &program,
        &planned,
        &cfg,
        &b,
        &RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        },
        Some(hook),
        None,
    )
    .expect_err("single attempt cannot absorb the fault");
    assert!(
        matches!(err.error, ExecError::Corrupt { component: 0, .. }),
        "unexpected error: {}",
        err.error
    );
    let rec = &err.report;
    assert_eq!(rec.attempts.len(), 1);
    assert_eq!(rec.attempts[0].error, Some(RecoveryErrorKind::Corruption));
    assert_eq!(
        b["o"].to_host(),
        o_before,
        "failed component leaked staged writes into the real buffer"
    );
}

/// Every single-bit flip on an output stream — from bit 0 (far below
/// any numeric tolerance) through sign bit 63 — must be detected and
/// recovered for DOT, GEMV and GER, with the recovered result
/// bit-identical to a fault-free run.
#[test]
fn single_bit_flips_are_always_detected_across_routines() {
    const N: usize = 16;
    /// (name, program, bindings, write-back channel, elements crossing it).
    type RoutineCase = (
        &'static str,
        Program,
        Vec<(&'static str, Vec<f64>)>,
        &'static str,
        usize,
    );
    let routines: Vec<RoutineCase> = vec![
        {
            let mut p = Program::new();
            p.vector("x", N).vector("y", N).scalar("r");
            p.op(Op::Dot {
                x: "x".into(),
                y: "y".into(),
                out: "r".into(),
            });
            (
                "dot",
                p,
                vec![("x", seq(N, 1.0)), ("y", seq(N, 2.0))],
                "r_res",
                1,
            )
        },
        {
            let (p, _, bindings) = gemv_program();
            ("gemv", p, bindings, "write_o", 32)
        },
        {
            let mut p = Program::new();
            p.matrix("A", N, N)
                .vector("x", N)
                .vector("y", N)
                .matrix("B", N, N);
            p.op(Op::Ger {
                alpha: 0.8,
                a: "A".into(),
                x: "x".into(),
                y: "y".into(),
                out: "B".into(),
            });
            (
                "ger",
                p,
                vec![
                    ("A", seq(N * N, 0.0)),
                    ("x", seq(N, 1.0)),
                    ("y", seq(N, 2.0)),
                    ("B", vec![0.0; N * N]),
                ],
                "write_B",
                N * N,
            )
        },
    ];
    for (name, program, bindings, out_channel, out_len) in routines {
        let cfg = PlannerConfig {
            tn: 32,
            tm: 32,
            ..Default::default()
        };
        let planned = plan(&program, &cfg).unwrap();
        // Fault-free reference.
        let clean = bufs(&bindings);
        let (clean_out, _) = execute_plan_with_recovery::<f64>(
            &program,
            &planned,
            &cfg,
            &clean,
            &RetryPolicy::default(),
            None,
            None,
        )
        .unwrap();
        for bit in [0u32, 1, 26, 51, 62, 63] {
            let index = (bit as u64 * 7) % out_len as u64;
            let hook = Arc::new(FaultPlan::new(Some(bit as u64)).channel_fault(
                FaultSite::Push,
                out_channel,
                index,
                FaultAction::Corrupt { bit },
            ));
            let b = bufs(&bindings);
            let (out, rec) = execute_plan_with_recovery::<f64>(
                &program,
                &planned,
                &cfg,
                &b,
                &RetryPolicy {
                    max_attempts: 3,
                    ..RetryPolicy::default()
                },
                Some(hook),
                None,
            )
            .unwrap_or_else(|e| panic!("{name} bit {bit}: not recovered: {e}"));
            assert_eq!(
                rec.attempts[0].error,
                Some(RecoveryErrorKind::Corruption),
                "{name} bit {bit}: flip escaped detection"
            );
            assert_eq!(rec.recovered, 1, "{name} bit {bit}");
            // Recovered result is bit-identical to the clean run.
            for (k, buf) in clean.iter() {
                let want: Vec<u64> = buf.to_host().iter().map(|v| v.to_bits()).collect();
                let got: Vec<u64> = b[k].to_host().iter().map(|v| v.to_bits()).collect();
                assert_eq!(want, got, "{name} bit {bit}: buffer `{k}` diverged");
            }
            for (k, v) in &clean_out.scalars {
                assert_eq!(
                    v.to_bits(),
                    out.scalars[k].to_bits(),
                    "{name} bit {bit}: scalar `{k}` diverged"
                );
            }
        }
    }
}
