//! Integration tests for the live telemetry runtime: element-accurate
//! channel counters against `ChannelStats`, one chunk event per chunk
//! call even when the chunk splits at capacity, and run-ID correlation
//! across the recovery report, the Prometheus dump, and the JSON
//! snapshot.
//!
//! The metrics runtime is process-global, so every test takes
//! `telemetry_lock()` and isolates its counters with unique channel
//! names.

use std::collections::HashMap;
use std::sync::Arc;

use fblas_core::composition::{execute_plan_with_recovery, plan, Op, PlannerConfig, Program};
use fblas_core::host::DeviceBuffer;
use fblas_hlssim::{channel, ChannelStats, ModuleKind, Simulation};
use fblas_metrics::expo;
use fblas_trace::{EventKind, Tracer};
use parking_lot::{Mutex, MutexGuard};
use serde::Value;

fn telemetry_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
}

/// Satellite (b): a chunk push that splits at channel capacity must
/// record exactly one chunk trace event, and the element counters must
/// match `ChannelStats::transferred` exactly.
#[test]
fn split_chunk_records_one_event_and_exact_element_counts() {
    let _guard = telemetry_lock();
    let reg = fblas_metrics::install(4);

    const CAP: usize = 64;
    const N: usize = 96; // > CAP: the chunk must split into two sections
    let tracer = Tracer::new();
    let mut sim = Simulation::new();
    sim.set_tracer(tracer.clone());
    let (tx, rx) = channel::<u64>(sim.ctx(), CAP, "telem_split");
    let tx_stats: Arc<Mutex<Option<ChannelStats>>> = Arc::new(Mutex::new(None));
    let slot = tx_stats.clone();
    sim.add_module("src", ModuleKind::Interface, move || {
        let mut buf: Vec<u64> = (0..N as u64).collect();
        tx.push_chunk(&mut buf)?;
        *slot.lock() = Some(tx.stats());
        Ok(())
    });
    sim.add_module("sink", ModuleKind::Compute, move || {
        let got = rx.pop_n(N)?;
        assert_eq!(got.len(), N);
        Ok(())
    });
    sim.run().expect("split-chunk pipeline runs");

    let tx_st = tx_stats.lock().clone().expect("producer recorded stats");
    assert_eq!(tx_st.transferred, N as u64, "stats see every element");

    // Element counters are section-accurate and must agree with the
    // channel's own ledger.
    let labels: &[(&str, &str)] = &[("channel", "telem_split")];
    let pushed = reg
        .counter("fblas_channel_push_elements_total", labels)
        .value();
    let popped = reg
        .counter("fblas_channel_pop_elements_total", labels)
        .value();
    assert_eq!(pushed, tx_st.transferred, "push counter matches stats");
    assert_eq!(popped, N as u64, "pop counter sees every element");

    // One chunk *call*, even though it split at capacity: exactly one
    // chunk-op counter increment and exactly one chunk trace event.
    let chunk_pushes = reg
        .counter(
            "fblas_channel_chunk_ops_total",
            &[("channel", "telem_split"), ("op", "push")],
        )
        .value();
    assert_eq!(chunk_pushes, 1, "one chunk op for one push_chunk call");
    let chunk_events: Vec<u64> = tracer
        .lanes()
        .iter()
        .flat_map(|lane| lane.events.iter())
        .filter(|ev| {
            ev.kind == EventKind::Push
                && ev.count > 1
                && ev.channel.as_deref() == Some("telem_split")
        })
        .map(|ev| ev.count)
        .collect();
    assert_eq!(
        chunk_events,
        vec![N as u64],
        "exactly one chunk trace event carrying the full element count"
    );
}

fn gemv_program() -> (Program, PlannerConfig, HashMap<String, DeviceBuffer<f64>>) {
    const N: usize = 32;
    let mut p = Program::new();
    p.matrix("A", N, N)
        .vector("x", N)
        .vector("y", N)
        .vector("o", N);
    p.op(Op::Gemv {
        alpha: 1.5,
        beta: -0.25,
        a: "A".into(),
        transposed: false,
        x: "x".into(),
        y: Some("y".into()),
        out: "o".into(),
    });
    let cfg = PlannerConfig {
        tn: N,
        tm: N,
        ..Default::default()
    };
    let seq = |n: usize, s: f64| -> Vec<f64> {
        (0..n).map(|i| ((i as f64 + s) * 0.7311).cos()).collect()
    };
    let buffers = [
        ("A", seq(N * N, 0.0)),
        ("x", seq(N, 1.0)),
        ("y", seq(N, 2.0)),
        ("o", vec![0.0; N]),
    ]
    .into_iter()
    .map(|(name, data)| (name.to_string(), DeviceBuffer::from_vec(name, data, 0)))
    .collect();
    (p, cfg, buffers)
}

/// One recovery run inside a seeded scope: the run ID must surface in
/// the `RecoveryReport`, the Prometheus dump, and the JSON snapshot
/// (which must round-trip byte-identically), and the executor counters
/// must have moved.
#[test]
fn recovery_run_id_correlates_across_exposition_surfaces() {
    let _guard = telemetry_lock();
    let reg = fblas_metrics::install(4);
    let attempts_before = reg.counter("fblas_exec_attempts_total", &[]).value();
    let components_before = reg.counter("fblas_exec_components_total", &[]).value();

    let (program, cfg, buffers) = gemv_program();
    let planned = plan(&program, &cfg).unwrap();
    let scope = fblas_metrics::RunScope::seeded(2024);
    let run_id = scope.id().to_string();
    let (_, report) = execute_plan_with_recovery::<f64>(
        &program,
        &planned,
        &cfg,
        &buffers,
        &Default::default(),
        None,
        None,
    )
    .expect("clean gemv recovers trivially");

    assert_eq!(
        report.run_id.as_deref(),
        Some(run_id.as_str()),
        "RecoveryReport carries the scope's run ID"
    );
    assert!(
        reg.counter("fblas_exec_attempts_total", &[]).value() > attempts_before,
        "attempt counter moved"
    );
    assert!(
        reg.counter("fblas_exec_components_total", &[]).value() > components_before,
        "component counter moved"
    );

    let collected = reg.collect();
    let prom = expo::prometheus_text(&collected);
    assert!(
        prom.contains(&format!("fblas_run_info{{run_id=\"{run_id}\"}} 1")),
        "Prometheus dump carries fblas_run_info:\n{prom}"
    );
    assert!(prom.contains("# TYPE fblas_exec_attempts_total counter"));

    let snap = expo::snapshot_json(&collected);
    assert!(expo::snapshot_round_trips(&snap), "snapshot round-trips");
    let doc: Value = serde_json::from_str(&snap).unwrap();
    assert_eq!(
        doc.get("run_id").and_then(Value::as_str),
        Some(run_id.as_str()),
        "snapshot carries the scope's run ID"
    );
}

/// Outside any scope, the ID surfaces stay silent: no `fblas_run_info`
/// series, a null snapshot `run_id`, and `RecoveryReport.run_id: None` —
/// which keeps unseeded chaos byte-identity intact.
#[test]
fn without_a_scope_no_run_id_leaks_into_any_surface() {
    let _guard = telemetry_lock();
    let reg = fblas_metrics::install(4);

    let (program, cfg, buffers) = gemv_program();
    let planned = plan(&program, &cfg).unwrap();
    let (_, report) = execute_plan_with_recovery::<f64>(
        &program,
        &planned,
        &cfg,
        &buffers,
        &Default::default(),
        None,
        None,
    )
    .unwrap();
    assert_eq!(report.run_id, None);

    let collected = reg.collect();
    assert!(!expo::prometheus_text(&collected).contains("fblas_run_info"));
    let doc: Value = serde_json::from_str(&expo::snapshot_json(&collected)).unwrap();
    assert!(matches!(doc.get("run_id"), Some(Value::Null)));
}
