//! Chunked-transport semantics: the batched channel primitives must be
//! observationally identical to element-wise transfers — same element
//! sequences, same `ChannelStats`, and the same stall forensics when a
//! composition deadlocks mid-chunk.

use fblas_hlssim::{channel, ChannelStats, ModuleKind, SimError, Simulation, WaitDirection};
use std::time::Duration;

/// A chunk larger than the FIFO splits at capacity and blocks; with no
/// consumer making progress the watchdog must observe it as a stall,
/// with the producer registered in the wait-for graph as blocked on the
/// full channel.
#[test]
fn chunk_split_at_capacity_is_seen_by_watchdog_as_stall() {
    let mut sim = Simulation::new();
    sim.set_grace(Duration::from_millis(100));
    let (tx, rx) = channel::<u32>(sim.ctx(), 4, "narrow");
    let (never_tx, never_rx) = channel::<u8>(sim.ctx(), 1, "never");

    sim.add_module("bulk_producer", ModuleKind::Compute, move || {
        let mut buf: Vec<u32> = (0..64).collect();
        tx.push_chunk(&mut buf)?; // 4 transfer, 60 wait forever
        never_tx.push(1)?; // unreachable; keeps `never`'s sender alive
        Ok(())
    });
    // The consumer drains a little, then blocks on a channel nobody
    // feeds — progress stops with the producer mid-chunk.
    sim.add_module("stuck_consumer", ModuleKind::Compute, move || {
        let mut out = Vec::new();
        while out.len() < 2 {
            rx.pop_chunk(&mut out, 2)?;
        }
        never_rx.pop()?; // never arrives
        Ok(())
    });

    match sim.run() {
        Err(SimError::Stall { report }) => {
            let b = report
                .blocked_on("bulk_producer")
                .expect("producer must appear in the wait-for graph");
            assert_eq!(b.channel, "narrow");
            assert_eq!(b.direction, WaitDirection::Full);
            assert_eq!(b.occupancy, b.capacity, "blocked on a full FIFO");
            assert!(report.blocked_on("stuck_consumer").is_some());
        }
        other => panic!("expected stall, got {other:?}"),
    }
}

/// Element-wise and chunked transfers of the same seeded stream must
/// produce identical `ChannelStats` — including the stall counters —
/// when the transfer schedule is deterministic (single thread, bursts
/// bounded by capacity, drained between bursts).
#[test]
fn elementwise_and_chunked_stats_are_identical_on_seeded_streams() {
    const CAP: usize = 16;
    let data: Vec<u64> = (0..4096u64).map(|i| i.wrapping_mul(0x9e3779b9)).collect();
    // Deterministic burst sizes seeded from the data itself.
    let bursts: Vec<usize> = data.iter().map(|v| (*v as usize % CAP) + 1).collect();

    let run = |chunked: bool| -> (ChannelStats, Vec<u64>) {
        let ctx = fblas_hlssim::SimContext::new();
        let (tx, rx) = channel::<u64>(&ctx, CAP, "seeded");
        let mut got = Vec::with_capacity(data.len());
        let mut it = data.iter().copied();
        'outer: for &burst in &bursts {
            let mut chunk: Vec<u64> = Vec::with_capacity(burst);
            for _ in 0..burst {
                match it.next() {
                    Some(v) => chunk.push(v),
                    None => break,
                }
            }
            if chunk.is_empty() {
                break 'outer;
            }
            let want = chunk.len();
            if chunked {
                tx.push_chunk(&mut chunk).unwrap();
                let n0 = got.len();
                while got.len() - n0 < want {
                    let need = want - (got.len() - n0);
                    rx.pop_chunk(&mut got, need).unwrap();
                }
            } else {
                for v in chunk {
                    tx.push(v).unwrap();
                }
                for _ in 0..want {
                    got.push(rx.pop().unwrap());
                }
            }
        }
        (rx.stats(), got)
    };

    let (st_elem, got_elem) = run(false);
    let (st_chunk, got_chunk) = run(true);
    assert_eq!(got_elem, got_chunk, "same element sequence");
    assert_eq!(got_elem.len(), data.len());
    assert_eq!(st_elem, st_chunk, "all four stat counters identical");
    assert_eq!(st_elem.transferred, data.len() as u64);
    assert_eq!(st_elem.full_stalls, 0, "bursts never exceed capacity");
    assert_eq!(st_elem.empty_stalls, 0, "pops only after pushes");
    assert!(st_elem.max_occupancy <= CAP);
}

/// The watchdog's progress epoch counts elements, not lock rounds: a
/// full composition moved through chunked helpers reports the same
/// transfer totals as the element-wise implementation would.
#[test]
fn simulation_report_transfer_totals_count_elements_not_chunks() {
    let n = 10_000u64;
    let mut sim = Simulation::new();
    let (tx, rx) = channel::<u64>(sim.ctx(), 64, "bulk");
    sim.add_module("src", ModuleKind::Interface, move || tx.push_iter(0..n));
    sim.add_module("sink", ModuleKind::Interface, move || {
        let got = rx.pop_n(n as usize)?;
        assert_eq!(got.len(), n as usize);
        Ok(())
    });
    let report = sim.run().unwrap();
    // One push + one pop per element.
    assert_eq!(report.transfers, 2 * n);
}
