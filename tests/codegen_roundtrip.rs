//! Integration: the code generator across the full routine matrix, and
//! generated configurations that actually run on the simulator.

use fblas_arch::{Device, Precision};
use fblas_core::codegen::{
    generate, generate_spec_file, CodegenError, RoutineKind, RoutineSpec, SpecFile,
};

fn spec_for(kind: RoutineKind, prefix: char) -> RoutineSpec {
    let name = match kind {
        RoutineKind::Sdsdot => "sdsdot".to_string(),
        RoutineKind::Iamax => format!("i{prefix}amax"),
        _ => format!("{prefix}{}", kind.base_name()),
    };
    let mut s = RoutineSpec::named(name);
    if matches!(
        kind,
        RoutineKind::Trsv
            | RoutineKind::Syr
            | RoutineKind::Syr2
            | RoutineKind::Syrk
            | RoutineKind::Syr2k
            | RoutineKind::Trsm
    ) {
        s.uplo = Some("lower".into());
    }
    if kind.level() >= 2 {
        s.tile_n = Some(64);
        s.tile_m = Some(64);
    }
    if matches!(
        kind,
        RoutineKind::Gemm | RoutineKind::Syrk | RoutineKind::Syr2k
    ) {
        s.systolic_rows = Some(8);
        s.systolic_cols = Some(8);
    }
    s
}

#[test]
fn all_22_routines_generate_in_both_precisions() {
    let mut count = 0;
    for kind in RoutineKind::ALL {
        for prefix in ['s', 'd'] {
            if kind == RoutineKind::Sdsdot && prefix == 'd' {
                continue; // single precision only, per BLAS
            }
            let spec = spec_for(kind, prefix);
            let k = generate(&spec).unwrap_or_else(|e| panic!("{}: {e}", spec.blas_name));
            assert_eq!(k.kind, kind);
            assert_eq!(
                k.precision,
                if prefix == 's' || kind == RoutineKind::Sdsdot {
                    Precision::Single
                } else {
                    Precision::Double
                }
            );
            assert!(!k.source.is_empty());
            assert!(k.estimate.latency > 0);
            count += 1;
        }
    }
    assert_eq!(count, 43, "22 routines x 2 precisions - sdsdot");
}

#[test]
fn generated_estimates_fit_or_fail_placement_like_the_paper() {
    // DOT at W=256 f32 fits both devices; DDOT at 256 is too large for
    // the Arria-class DSP budget once the design overhead is added —
    // the paper could only place DDOT up to W=128 on the Stratix.
    let mut s = RoutineSpec::named("sdot");
    s.width = 256;
    let k = generate(&s).unwrap();
    for dev in Device::PAPER {
        let total = k.estimate.resources + fblas_arch::design_overhead(dev, true);
        assert!(dev.model().fits(&total), "{dev:?} must fit SDOT W=256");
    }

    let mut d = RoutineSpec::named("ddot");
    d.width = 128;
    let k128 = generate(&d).unwrap();
    let stratix = Device::Stratix10Gx2800.model();
    let total =
        k128.estimate.resources + fblas_arch::design_overhead(Device::Stratix10Gx2800, true);
    assert!(
        stratix.fits(&total),
        "DDOT W=128 fits the Stratix (paper max)"
    );
}

#[test]
fn spec_file_json_round_trip_preserves_everything() {
    let file = SpecFile {
        routines: vec![
            spec_for(RoutineKind::Gemv, 's'),
            spec_for(RoutineKind::Gemm, 'd'),
        ],
    };
    let json = file.to_json();
    let kernels = generate_spec_file(&json).unwrap();
    assert_eq!(kernels.len(), 2);
    assert_eq!(kernels[0].kind, RoutineKind::Gemv);
    assert_eq!(kernels[1].kind, RoutineKind::Gemm);
    assert_eq!(kernels[1].precision, Precision::Double);
}

#[test]
fn invalid_specs_give_helpful_errors() {
    // Unknown routine.
    let bad = r#"{"routines":[{"blas_name":"sfoo"}]}"#;
    assert!(matches!(
        generate_spec_file(bad),
        Err(CodegenError::UnknownRoutine(n)) if n == "sfoo"
    ));
    // Half-specified tiles.
    let mut s = RoutineSpec::named("sgemv");
    s.tile_n = Some(64);
    assert!(matches!(generate(&s), Err(CodegenError::Invalid { .. })));
    // Bad uplo value.
    let mut s = spec_for(RoutineKind::Trsv, 's');
    s.uplo = Some("diagonal".into());
    match generate(&s) {
        Err(CodegenError::Invalid { reason, .. }) => assert!(reason.contains("upper/lower")),
        other => panic!("unexpected: {other:?}"),
    }
}

#[test]
fn generated_dot_config_runs_on_the_simulator() {
    // Use the generated width to configure and run an actual module.
    let mut s = RoutineSpec::named("sdot");
    s.width = 8;
    let k = generate(&s).unwrap();

    use fblas_core::routines::Dot;
    use fblas_hlssim::{channel, ModuleKind, Simulation};
    let mut sim = Simulation::new();
    let (tx, rx) = channel(sim.ctx(), 32, "x");
    let (ty, ry) = channel(sim.ctx(), 32, "y");
    let (tr, rr) = channel(sim.ctx(), 1, "r");
    sim.add_module("sx", ModuleKind::Interface, move || {
        tx.push_iter((0..64).map(|i| i as f32))
    });
    sim.add_module("sy", ModuleKind::Interface, move || {
        ty.push_iter(std::iter::repeat_n(2.0f32, 64))
    });
    Dot::new(64, k.width).attach(&mut sim, rx, ry, tr);
    sim.add_module("check", ModuleKind::Interface, move || {
        let r = rr.pop()?;
        assert_eq!(r, 2.0 * (63.0 * 64.0 / 2.0));
        Ok(())
    });
    sim.run().unwrap();
}
