//! Integration tests for the observability layer: stall forensics,
//! Perfetto export, bench metrics schema, and the tracing-disabled
//! overhead guard.

use fblas_bench::metrics::{validate_schema, BenchReport, Cell};
use fblas_hlssim::{channel, ModuleKind, SimError, Simulation, WaitDirection};
use fblas_trace::{perfetto, summary, Tracer};
use serde::Value;

/// A deadlocked two-module cycle must produce a stall report naming each
/// module, the channel it waits on, and the empty-FIFO direction.
#[test]
fn deadlock_forensics_name_channel_and_direction() {
    let mut sim = Simulation::new();
    let (tx_ab, rx_ab) = channel::<u8>(sim.ctx(), 1, "a_to_b");
    let (tx_ba, rx_ba) = channel::<u8>(sim.ctx(), 1, "b_to_a");
    sim.add_module("a", ModuleKind::Compute, move || {
        let v = rx_ba.pop()?;
        tx_ab.push(v)?;
        Ok(())
    });
    sim.add_module("b", ModuleKind::Compute, move || {
        let v = rx_ab.pop()?;
        tx_ba.push(v)?;
        Ok(())
    });

    let report = match sim.run() {
        Err(SimError::Stall { report }) => report,
        other => panic!("expected stall, got {other:?}"),
    };
    assert_eq!(report.blocked.len(), 2);
    let a = report.blocked_on("a").expect("a is in the wait-for graph");
    assert_eq!(
        (a.channel.as_str(), a.direction),
        ("b_to_a", WaitDirection::Empty)
    );
    assert_eq!((a.occupancy, a.capacity), (0, 1));
    let b = report.blocked_on("b").expect("b is in the wait-for graph");
    assert_eq!(
        (b.channel.as_str(), b.direction),
        ("a_to_b", WaitDirection::Empty)
    );

    // The report also serializes (for bug reports / CI artifacts).
    let text = serde_json::to_string(&report).unwrap();
    assert!(text.contains("\"b_to_a\""));
    assert!(text.contains("\"Empty\""));
}

/// An undersized FIFO between replaying modules must be identified as
/// such: the producer blocked pushing into the full small FIFO (at
/// capacity), the consumer blocked popping the starved one.
#[test]
fn undersized_fifo_forensics_show_full_versus_empty() {
    let n = 64usize;
    let mut sim = Simulation::new();
    let (tx, rx) = channel::<u32>(sim.ctx(), 4, "small");
    let (res_tx, res_rx) = channel::<u32>(sim.ctx(), 1, "res");
    sim.add_module("producer", ModuleKind::Interface, move || {
        tx.push_iter(0..(2 * n as u32))
    });
    sim.add_module("consumer", ModuleKind::Compute, move || {
        let _ = rx.pop_n(n)?;
        let _ = res_rx.pop()?;
        Ok(())
    });
    sim.add_module("never", ModuleKind::Compute, move || {
        std::mem::forget(res_tx);
        Ok(())
    });

    let report = match sim.run() {
        Err(SimError::Stall { report }) => report,
        other => panic!("expected stall, got {other:?}"),
    };
    let p = report.blocked_on("producer").expect("producer blocked");
    assert_eq!(p.channel, "small");
    assert_eq!(p.direction, WaitDirection::Full);
    assert_eq!(
        p.occupancy, p.capacity,
        "a full-stall is caught at capacity"
    );
    let c = report.blocked_on("consumer").expect("consumer blocked");
    assert_eq!(c.channel, "res");
    assert_eq!(c.direction, WaitDirection::Empty);
    assert_eq!(c.occupancy, 0);
}

/// The Perfetto export of a traced 3-stage pipeline is valid JSON with
/// exactly one complete span per module.
#[test]
fn perfetto_export_of_three_stage_pipeline_is_loadable() {
    let tracer = Tracer::new();
    let mut sim = Simulation::new();
    sim.set_tracer(tracer.clone());
    let (tx1, rx1) = channel::<f64>(sim.ctx(), 4, "a");
    let (tx2, rx2) = channel::<f64>(sim.ctx(), 4, "b");
    sim.add_module("src", ModuleKind::Interface, move || {
        tx1.push_iter((0..5000).map(f64::from))
    });
    sim.add_module("scale", ModuleKind::Compute, move || {
        for _ in 0..5000 {
            tx2.push(rx1.pop()? * 2.0)?;
        }
        Ok(())
    });
    sim.add_module("sink", ModuleKind::Interface, move || {
        rx2.pop_n(5000).map(|_| ())
    });
    sim.run().unwrap();

    let text = perfetto::trace_json(&tracer);
    let doc: Value = serde_json::from_str(&text).expect("export is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");

    for module in ["src", "scale", "sink"] {
        let spans: Vec<_> = events
            .iter()
            .filter(|e| {
                e.get("ph").and_then(Value::as_str) == Some("X")
                    && e.get("cat").and_then(Value::as_str) == Some("module")
                    && e.get("name").and_then(Value::as_str) == Some(module)
            })
            .collect();
        assert_eq!(spans.len(), 1, "exactly one complete span for {module}");
        let span = spans[0];
        assert!(span.get("ts").and_then(Value::as_u64).is_some());
        assert!(span.get("dur").and_then(Value::as_u64).unwrap() >= 1);
    }

    // The summary covers the same run.
    let text = summary::run_summary(&tracer);
    for module in ["src", "scale", "sink"] {
        assert!(text.contains(module), "summary lists {module}");
    }
}

/// Round-trip of the Perfetto exporter: parse the emitted trace_event
/// JSON back and check the structural invariants a trace viewer relies
/// on — every lane's `B`/`E` scope pair is matched and ordered, channel
/// and stall timestamps are monotonic within each lane and contained in
/// its scope, and counter samples are monotonic per series.
#[test]
fn perfetto_roundtrip_preserves_lane_and_counter_invariants() {
    let tracer = Tracer::new();
    let mut sim = Simulation::new();
    sim.set_tracer(tracer.clone());
    // An undersized middle FIFO guarantees stall spans in the export.
    let (tx1, rx1) = channel::<u32>(sim.ctx(), 2, "thin");
    let (tx2, rx2) = channel::<u32>(sim.ctx(), 64, "wide");
    sim.add_module("feeder", ModuleKind::Interface, move || {
        tx1.push_iter(0..2000)
    });
    sim.add_module("relay", ModuleKind::Compute, move || {
        for _ in 0..2000 {
            tx2.push(rx1.pop()?)?;
        }
        Ok(())
    });
    sim.add_module("drain", ModuleKind::Interface, move || {
        rx2.pop_n(2000).map(|_| ())
    });
    sim.run().unwrap();

    let doc: Value =
        serde_json::from_str(&perfetto::trace_json(&tracer)).expect("export is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");

    let field = |e: &Value, k: &str| e.get(k).and_then(Value::as_str).map(String::from);
    let tids: Vec<u64> = {
        let mut t: Vec<u64> = events
            .iter()
            .filter_map(|e| e.get("tid").and_then(Value::as_u64))
            .collect();
        t.sort();
        t.dedup();
        t
    };
    assert_eq!(tids.len(), 3, "one lane per module");

    for tid in tids {
        let lane: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("tid").and_then(Value::as_u64) == Some(tid))
            .collect();

        // Exactly one matched B/E scope pair, in order, bracketing the lane.
        let begins: Vec<&&Value> = lane
            .iter()
            .filter(|e| field(e, "ph").as_deref() == Some("B"))
            .collect();
        let ends: Vec<&&Value> = lane
            .iter()
            .filter(|e| field(e, "ph").as_deref() == Some("E"))
            .collect();
        assert_eq!(begins.len(), 1, "tid {tid}: one B");
        assert_eq!(ends.len(), 1, "tid {tid}: one matching E");
        assert_eq!(field(begins[0], "name"), field(ends[0], "name"));
        let b_ts = begins[0].get("ts").and_then(Value::as_u64).unwrap();
        let e_ts = ends[0].get("ts").and_then(Value::as_u64).unwrap();
        assert!(b_ts <= e_ts, "tid {tid}: scope B after E");

        // Channel/stall events: monotonic ts, contained in the scope.
        let mut prev = 0u64;
        let mut seen = 0usize;
        for e in &lane {
            let cat = field(e, "cat");
            if !matches!(cat.as_deref(), Some("channel") | Some("stall")) {
                continue;
            }
            let ts = e.get("ts").and_then(Value::as_u64).unwrap();
            assert!(ts >= prev, "tid {tid}: ts went backwards ({prev} -> {ts})");
            assert!((b_ts..=e_ts).contains(&ts), "tid {tid}: ts outside scope");
            prev = ts;
            seen += 1;
        }
        assert!(seen > 0, "tid {tid}: lane recorded no channel activity");
    }

    // At least one stall span survived, colored for the viewer.
    assert!(events
        .iter()
        .any(|e| { field(e, "cat").as_deref() == Some("stall") && field(e, "cname").is_some() }));

    // Counter tracks: the watchdog's occupancy series, monotonic per name.
    let mut last_ts: std::collections::HashMap<String, u64> = std::collections::HashMap::new();
    let mut counters = 0usize;
    for e in events {
        if field(e, "ph").as_deref() != Some("C") {
            continue;
        }
        let name = field(e, "name").unwrap();
        let ts = e.get("ts").and_then(Value::as_u64).unwrap();
        let prev = last_ts.entry(name.clone()).or_insert(0);
        assert!(ts >= *prev, "counter {name}: ts went backwards");
        *prev = ts;
        counters += 1;
    }
    assert!(counters > 0, "occupancy counters exported");
    assert!(last_ts.keys().any(|k| k.starts_with("occ:")));
}

/// `BENCH_*.json` written by the shared writer matches the stable schema.
#[test]
fn bench_metrics_writer_emits_stable_schema() {
    let mut report = BenchReport::new("schema_check");
    report.meta("device", "test");
    report.add_row([("n", Cell::from(1024usize)), ("seconds", Cell::from(0.5))]);

    let doc: Value = serde_json::from_str(&report.json()).unwrap();
    validate_schema(&doc).expect("writer output matches schema");
    assert_eq!(doc.get("schema_version").and_then(Value::as_u64), Some(1));
    assert_eq!(
        doc.get("bench").and_then(Value::as_str),
        Some("schema_check")
    );
    assert_eq!(
        doc.get("rows").and_then(Value::as_array).map(|r| r.len()),
        Some(1)
    );
}

fn timed_pipeline() -> std::time::Duration {
    let start = std::time::Instant::now();
    let mut sim = Simulation::new();
    let (tx, rx) = channel::<u64>(sim.ctx(), 8, "ch");
    sim.add_module("src", ModuleKind::Interface, move || tx.push_iter(0..1000));
    sim.add_module("sink", ModuleKind::Compute, move || {
        let v = rx.pop_n(1000)?;
        assert_eq!(v[999], 999);
        Ok(())
    });
    sim.run().unwrap();
    start.elapsed()
}

/// With no tracer attached, the instrumented hot path must not add
/// measurable overhead to the seed's `two_module_pipeline_completes`
/// workload. Wall-clock comparisons of a threaded pipeline are noisy, so
/// this is ignored by default; run it explicitly with
/// `cargo test -p fblas-bench --test observability -- --ignored`.
#[test]
#[ignore]
fn tracing_disabled_adds_no_measurable_overhead() {
    // Warm up, then compare the median of several runs against a
    // generous bound: the untraced path is a single thread-local read
    // per channel op, so anything beyond 2x the warm median indicates a
    // regression on the disabled path.
    let mut samples: Vec<_> = (0..9).map(|_| timed_pipeline()).collect();
    samples.sort();
    let median = samples[samples.len() / 2];
    let bound = median * 2 + std::time::Duration::from_millis(10);
    let check = timed_pipeline();
    assert!(
        check < bound,
        "untraced pipeline took {check:?}, bound {bound:?} (median {median:?})"
    );
}
