//! Failure injection: the simulation substrate and host API must
//! surface broken configurations as typed errors — never hangs, never
//! silent corruption.

use fblas_arch::Device;
use fblas_core::host::{blas, DeviceBuffer, Fpga};
use fblas_core::routines::{Dot, Scal};
use fblas_hlssim::{channel, ModuleKind, SimError, Simulation};
use std::time::{Duration, Instant};

#[test]
fn undercounting_producer_is_a_disconnect() {
    // Module expects 100 elements; producer sends 60.
    let mut sim = Simulation::new();
    let (tx, rx) = channel::<f32>(sim.ctx(), 16, "short_stream");
    let (tr, rr) = channel::<f32>(sim.ctx(), 1, "res");
    sim.add_module("src", ModuleKind::Interface, move || {
        tx.push_iter((0..60).map(|i| i as f32))
    });
    // Second operand: a generator that also stops early — the first
    // disconnect wins either way.
    let (ty, ry) = channel::<f32>(sim.ctx(), 16, "y");
    sim.add_module("src_y", ModuleKind::Interface, move || {
        ty.push_iter((0..60).map(|_| 1.0f32))
    });
    Dot::new(100, 4).attach(&mut sim, rx, ry, tr);
    drop(rr);
    match sim.run() {
        Err(SimError::Disconnected { channel }) => {
            assert!(channel == "short_stream" || channel == "y");
        }
        other => panic!("unexpected: {other:?}"),
    }
}

#[test]
fn overcounting_producer_blocks_then_disconnects() {
    // Producer sends 100; consumer takes 50 and exits: the producer
    // must observe the dropped receiver, not hang.
    let mut sim = Simulation::new();
    let (tx, rx) = channel::<f32>(sim.ctx(), 8, "over");
    sim.add_module("src", ModuleKind::Interface, move || {
        tx.push_iter((0..100).map(|i| i as f32))
    });
    sim.add_module("sink", ModuleKind::Compute, move || {
        let _ = rx.pop_n(50)?;
        Ok(())
    });
    match sim.run() {
        Err(SimError::Disconnected { channel }) => assert_eq!(channel, "over"),
        other => panic!("unexpected: {other:?}"),
    }
}

#[test]
fn module_panic_reported_and_never_hangs() {
    let start = Instant::now();
    let mut sim = Simulation::new();
    let (tx, rx) = channel::<f32>(sim.ctx(), 4, "ch");
    sim.add_module("panicker", ModuleKind::Compute, move || {
        let _ = &tx;
        panic!("injected failure");
    });
    sim.add_module("waiter", ModuleKind::Compute, move || {
        // Waits on the panicker's channel; the drop must wake it.
        match rx.pop() {
            Err(_) => Ok(()),
            Ok(_) => Err(SimError::module("waiter", "unexpected data")),
        }
    });
    match sim.run() {
        Err(SimError::Module { module, detail }) => {
            assert_eq!(module, "panicker");
            assert!(detail.contains("panicked"));
        }
        other => panic!("unexpected: {other:?}"),
    }
    assert!(start.elapsed() < Duration::from_secs(10), "must not hang");
}

#[test]
fn external_poison_cancels_a_running_simulation() {
    let mut sim = Simulation::new();
    let ctx = sim.ctx().clone();
    let (tx, rx) = channel::<u64>(sim.ctx(), 1, "slow");
    sim.add_module("src", ModuleKind::Interface, move || {
        // Pushes forever (capacity 1, consumer slower).
        let mut i = 0u64;
        loop {
            tx.push(i)?;
            i += 1;
        }
    });
    sim.add_module("sink", ModuleKind::Compute, move || loop {
        let _ = rx.pop()?;
    });
    // Cancel from outside after a moment.
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(50));
        ctx.poison();
    });
    match sim.run() {
        // Both modules exit with Poisoned, which the runner treats as a
        // cascade; with no primary failure the run errors with the first
        // non-poison error... here there is none, so the cascade itself
        // must not be reported as success.
        Ok(report) => panic!("poisoned run must not succeed: {report:?}"),
        Err(e) => {
            // Either a stall (if the watchdog saw the freeze first) or a
            // propagated poison-induced disconnect.
            let msg = e.to_string();
            assert!(!msg.is_empty());
        }
    }
    killer.join().unwrap();
}

#[test]
#[should_panic(expected = "gemv: A must be n*m")]
fn host_api_rejects_wrong_buffer_sizes_up_front() {
    let fpga = Fpga::new(Device::Stratix10Gx2800);
    // GEMV with an A buffer of the wrong size: the host layer checks
    // dimensions before building the module graph (API misuse is a
    // programming error, like passing a bad `lda` to classic BLAS).
    let a = fpga.alloc_from("a", vec![1.0f32; 9]); // claims 4x4 below
    let x = fpga.alloc_from("x", vec![1.0f32; 4]);
    let y = fpga.alloc_from("y", vec![0.0f32; 4]);
    let _ = blas::gemv(
        &fpga,
        fblas_core::routines::Trans::No,
        4,
        4,
        1.0,
        &a,
        &x,
        0.0,
        &y,
        &fblas_core::host::GemvTuning::new(2, 2, 2),
    );
}

#[test]
fn mid_graph_size_mismatch_is_a_module_error() {
    // When the mismatch is only visible inside the dataflow (a reader
    // asked to stream more than its buffer holds), it surfaces as a
    // typed module error rather than a panic or a hang.
    let mut sim = Simulation::new();
    let buf = DeviceBuffer::from_vec("a", vec![1.0f32; 9], 0);
    let (ta, ra) = channel::<f32>(sim.ctx(), 8, "a");
    fblas_core::helpers::read_matrix(
        &mut sim,
        &buf,
        4,
        4,
        fblas_core::tiling::Tiling::new(2, 2, fblas_core::tiling::TileOrder::RowTilesRowMajor),
        ta,
        1,
    );
    drop(ra);
    match sim.run() {
        Err(SimError::Module { detail, .. }) => assert!(detail.contains("expected 16")),
        other => panic!("unexpected: {other:?}"),
    }
}

#[test]
fn scal_on_empty_buffer_is_fine() {
    let fpga = Fpga::new(Device::Arria10Gx1150);
    let x = fpga.alloc_from("x", Vec::<f64>::new());
    let t = blas::scal(&fpga, 2.0, &x, 8).unwrap();
    assert!(t.seconds >= 0.0);
    assert!(x.to_host().is_empty());
}

#[test]
fn stall_detection_bounded_even_with_many_modules() {
    // A ring of N modules each waiting on the previous one: genuinely
    // deadlocked; the watchdog must report it within its grace window
    // regardless of module count.
    let n = 24usize;
    let start = Instant::now();
    let mut sim = Simulation::new();
    let mut senders = Vec::new();
    let mut receivers = Vec::new();
    for i in 0..n {
        let (t, r) = channel::<u8>(sim.ctx(), 1, format!("ring{i}"));
        senders.push(Some(t));
        receivers.push(Some(r));
    }
    for i in 0..n {
        let rx = receivers[i].take().unwrap();
        let tx = senders[(i + 1) % n].take().unwrap();
        sim.add_module(format!("node{i}"), ModuleKind::Compute, move || {
            let v = rx.pop()?; // nobody ever sends first
            tx.push(v)?;
            Ok(())
        });
    }
    match sim.run() {
        Err(SimError::Stall { .. }) => {}
        other => panic!("expected stall, got {other:?}"),
    }
    assert!(start.elapsed() < Duration::from_secs(10));
}

#[test]
fn disconnect_in_one_branch_fails_the_whole_composition() {
    // AXPY feeding DOT, but the DOT's second operand dies early: the
    // error must propagate through the composition, not deadlock it.
    let n = 64;
    let mut sim = Simulation::new();
    let (tw, rw) = channel::<f64>(sim.ctx(), 8, "w");
    let (tv, rv) = channel::<f64>(sim.ctx(), 8, "v");
    let (tz, rz) = channel::<f64>(sim.ctx(), 8, "z");
    let (tu, ru) = channel::<f64>(sim.ctx(), 8, "u_short");
    let (tb, rb) = channel::<f64>(sim.ctx(), 1, "beta");
    sim.add_module("read_w", ModuleKind::Interface, move || {
        tw.push_iter((0..n).map(|i| i as f64))
    });
    sim.add_module("read_v", ModuleKind::Interface, move || {
        tv.push_iter((0..n).map(|i| i as f64))
    });
    sim.add_module("read_u", ModuleKind::Interface, move || {
        tu.push_iter((0..n / 2).map(|i| i as f64)) // too short!
    });
    fblas_core::routines::Axpy::new(n, 4).attach(&mut sim, -1.0, rv, rw, tz);
    Dot::new(n, 4).attach(&mut sim, rz, ru, tb);
    drop(rb);
    match sim.run() {
        // The root cause is `u_short`, but the disconnect cascades
        // backwards through the pipeline (dot drops z, axpy drops w/v);
        // whichever module's error is collected first names its own
        // channel. Any of the cascade channels is a correct report.
        Err(SimError::Disconnected { channel }) => {
            assert!(
                ["u_short", "z", "w", "v"].contains(&channel.as_str()),
                "{channel}"
            );
        }
        other => panic!("unexpected: {other:?}"),
    }
}

#[test]
fn device_buffer_isolation_between_failed_runs() {
    // A failed run must not corrupt buffers it never wrote.
    let buf = DeviceBuffer::from_vec("keep", vec![1.0f32, 2.0, 3.0], 0);
    let mut sim = Simulation::new();
    let (tx, rx) = channel::<f32>(sim.ctx(), 2, "ch");
    let b2 = buf.clone();
    sim.add_module("would_write", ModuleKind::Interface, move || {
        let v = rx.pop_n(3)?; // producer dies after 1
        b2.from_host(&v);
        Ok(())
    });
    sim.add_module("dies", ModuleKind::Interface, move || {
        tx.push(9.0)?;
        Err(SimError::module("dies", "injected"))
    });
    assert!(sim.run().is_err());
    assert_eq!(buf.to_host(), vec![1.0, 2.0, 3.0], "buffer untouched");
}

#[test]
fn width_larger_than_problem_still_correct() {
    // Degenerate configuration: W far beyond N.
    let mut sim = Simulation::new();
    let (tx, rx) = channel::<f64>(sim.ctx(), 4, "x");
    let (to, ro) = channel::<f64>(sim.ctx(), 4, "o");
    sim.add_module("src", ModuleKind::Interface, move || {
        tx.push_slice(&[1.0, 2.0, 3.0])
    });
    Scal::new(3, 1024).attach(&mut sim, 2.0, rx, to);
    let out = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
    let out2 = out.clone();
    sim.add_module("sink", ModuleKind::Interface, move || {
        *out2.lock().unwrap() = ro.pop_n(3)?;
        Ok(())
    });
    sim.run().unwrap();
    assert_eq!(*out.lock().unwrap(), vec![2.0, 4.0, 6.0]);
}

#[test]
fn alveo_device_models_are_coherent() {
    // The future-work device obeys the same invariants as the paper's.
    let m = Device::AlveoU280.model();
    assert!(m.available.alms <= m.total.alms);
    assert!(m.dram_banks == 32, "HBM pseudo-channels");
    assert!(m.total_dram_bandwidth() > 4.0 * 19.2e9, "HBM beats 4xDDR");
    // Host API works on it end to end.
    let fpga = Fpga::new(Device::AlveoU280);
    let x = fpga.alloc_from("x", vec![2.0f32; 128]);
    let y = fpga.alloc_from("y", vec![3.0f32; 128]);
    let (d, t) = blas::dot(&fpga, &x, &y, 16).unwrap();
    assert_eq!(d, 768.0);
    assert!(t.freq_hz > 200.0e6);
}
