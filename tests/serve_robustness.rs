//! End-to-end robustness tests for fblas-serve.
//!
//! Every test starts a real server on an ephemeral port and drives it
//! over TCP with the lockstep [`Client`] — the same path production
//! traffic takes. Quotas are refill-free (`tenant_qps: 0`) so every
//! admission decision is exact and repeatable.
//!
//! The invariants under test are the tenancy story of the crate:
//! sheds are explicit (never silent drops), one tenant's chaos cannot
//! perturb a neighbor's *bits*, a worker panic kills one request and
//! nothing else, and drain finishes what it admitted.

use std::time::Duration;

use fblas_serve::{parse_response, Client, Response, ServeConfig, Server};

fn cfg(workers: usize, burst: u32, breaker: u32) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue: 32,
        tenant_qps: 0,
        tenant_burst: burst,
        breaker,
        drain: Duration::from_secs(20),
        write_timeout: Duration::from_secs(5),
    }
}

/// A seeded gemv request in the wire dialect; `n` picks the plan shape.
fn gemv_line(id: u64, tenant: &str, n: usize, fill_seed: u64, chaos_repeat: Option<u32>) -> String {
    let chaos = match chaos_repeat {
        Some(repeat) => format!(
            r#","retry_max":3,"chaos":{{"seed":4242,"repeat":{repeat},"faults":[{{"channel":"write_o","index":5,"bit":7}}]}}"#
        ),
        None => String::new(),
    };
    format!(
        r#"{{"id":{id},"tenant":"{tenant}","fill_seed":{fill_seed}{chaos},"program":{{"operands":[{{"name":"A","kind":"matrix","rows":{n},"cols":{n}}},{{"name":"x","kind":"vector","len":{n}}},{{"name":"y","kind":"vector","len":{n}}},{{"name":"o","kind":"vector","len":{n}}}],"ops":[{{"op":"gemv","alpha":1.5,"beta":-0.25,"a":"A","x":"x","y":"y","out":"o"}}],"config":{{"tn":{n},"tm":{n}}}}}}}"#
    )
}

fn exec(c: &mut Client, line: &str) -> Response {
    let raw = c.roundtrip_line(line).expect("roundtrip");
    parse_response(&raw).expect("response parses")
}

fn output_bits(r: &Response) -> Vec<u64> {
    r.outputs
        .get("o")
        .expect("response returns operand `o`")
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

/// Over-quota requests shed with an explicit 429, and the shed leaves
/// the admitted requests' results bit-identical to a solo run of the
/// same seeded request on a fresh server.
#[test]
fn quota_sheds_explicitly_and_results_match_solo_run() {
    let server = Server::start(cfg(2, 2, 1_000)).expect("server starts");
    let mut c = Client::connect(server.addr()).expect("client connects");

    let r1 = exec(&mut c, &gemv_line(1, "t", 16, 7, None));
    assert_eq!((r1.status.as_str(), r1.code), ("ok", 200));
    let r2 = exec(&mut c, &gemv_line(2, "t", 16, 7, None));
    assert_eq!(r2.status, "ok");
    // Same seeded request → same bits, even with quota pressure around.
    assert_eq!(output_bits(&r1), output_bits(&r2));

    let shed = exec(&mut c, &gemv_line(3, "t", 16, 7, None));
    assert_eq!((shed.status.as_str(), shed.code), ("shed", 429));
    assert_eq!(shed.kind.as_deref(), Some("quota"));
    assert_eq!(
        shed.retry_after_ms, None,
        "refill-free bucket has no retry ETA"
    );
    assert!(shed.scalars.is_empty() && shed.outputs.is_empty());

    // Other tenants have their own bucket.
    let other = exec(&mut c, &gemv_line(4, "u", 16, 7, None));
    assert_eq!(other.status, "ok");
    let busy_bits = output_bits(&r1);
    assert!(server.drain().clean);

    // Solo run on a fresh server: identical bits for the same request.
    let solo_srv = Server::start(cfg(1, 2, 1_000)).expect("solo server starts");
    let mut solo = Client::connect(solo_srv.addr()).expect("solo client connects");
    let solo_resp = exec(&mut solo, &gemv_line(1, "t", 16, 7, None));
    assert_eq!(solo_resp.status, "ok");
    assert_eq!(
        output_bits(&solo_resp),
        busy_bits,
        "multi-tenant execution changed result bits vs solo"
    );
    assert_eq!(
        solo_resp.run_id, r1.run_id,
        "run seed must be request-determined"
    );
    assert!(solo_srv.drain().clean);
}

/// A chaos tenant burning its whole retry budget on every request —
/// and eventually tripping its shape's breaker — must not perturb a
/// healthy neighbor: same bits as solo, no stalls, and the neighbor's
/// shape never fast-fails.
#[test]
fn chaos_tenant_cannot_perturb_healthy_neighbor() {
    // Solo baseline first.
    let solo_srv = Server::start(cfg(1, 1_000, 1_000)).expect("solo server starts");
    let mut solo = Client::connect(solo_srv.addr()).expect("solo client connects");
    let baseline = exec(&mut solo, &gemv_line(100, "healthy", 16, 9, None));
    assert_eq!(baseline.status, "ok");
    let baseline_bits = output_bits(&baseline);
    assert!(solo_srv.drain().clean);

    // Breaker threshold 3: the chaos tenant's own 24×24 shape opens.
    let server = Server::start(cfg(2, 1_000, 3)).expect("server starts");
    let mut chaos = Client::connect(server.addr()).expect("chaos client connects");
    let mut healthy = Client::connect(server.addr()).expect("healthy client connects");

    for round in 0..3u64 {
        let bad = exec(&mut chaos, &gemv_line(200 + round, "chaos", 24, 2, Some(5)));
        assert_eq!(
            (bad.status.as_str(), bad.code),
            ("failed", 500),
            "chaos request must fail terminally, round {round}"
        );
        assert_eq!(bad.kind.as_deref(), Some("corruption"));
        // The neighbor keeps getting bit-exact results between failures.
        let good = exec(&mut healthy, &gemv_line(100, "healthy", 16, 9, None));
        assert_eq!(good.status, "ok", "healthy request failed in round {round}");
        assert_eq!(
            output_bits(&good),
            baseline_bits,
            "chaos neighbor changed healthy tenant's bits, round {round}"
        );
    }

    // The chaos shape's breaker is now open: fast-fail at admission.
    let tripped = exec(&mut chaos, &gemv_line(300, "chaos", 24, 2, None));
    assert_eq!((tripped.status.as_str(), tripped.code), ("shed", 503));
    assert_eq!(tripped.kind.as_deref(), Some("breaker_open"));

    // The healthy shape is untouched by the neighbor's breaker.
    let still_good = exec(&mut healthy, &gemv_line(101, "healthy", 16, 9, None));
    assert_eq!(still_good.status, "ok");
    assert_eq!(output_bits(&still_good), baseline_bits);
    assert!(server.drain().clean);
}

/// Breakers are keyed by (tenant, shape): a tenant whose requests keep
/// failing on a shape opens only *its own* breaker — a neighbor
/// submitting the structurally identical program is never fast-failed
/// (no cross-tenant denial of service through a shared plan shape).
#[test]
fn breaker_is_tenant_scoped_for_identical_shapes() {
    let server = Server::start(cfg(2, 1_000, 2)).expect("server starts");
    let mut chaos = Client::connect(server.addr()).expect("chaos client connects");
    let mut healthy = Client::connect(server.addr()).expect("healthy client connects");

    // Both tenants use the same 16×16 gemv shape. The chaos tenant
    // burns its retry budget twice — threshold 2 opens its breaker.
    for round in 0..2u64 {
        let bad = exec(&mut chaos, &gemv_line(400 + round, "chaos", 16, 2, Some(5)));
        assert_eq!(
            (bad.status.as_str(), bad.code),
            ("failed", 500),
            "chaos request must fail terminally, round {round}"
        );
    }
    let tripped = exec(&mut chaos, &gemv_line(410, "chaos", 16, 2, None));
    assert_eq!((tripped.status.as_str(), tripped.code), ("shed", 503));
    assert_eq!(tripped.kind.as_deref(), Some("breaker_open"));

    // The neighbor's structurally identical request still executes.
    let good = exec(&mut healthy, &gemv_line(420, "healthy", 16, 2, None));
    assert_eq!(
        good.status, "ok",
        "neighbor must not inherit the chaos tenant's open breaker"
    );
    assert!(server.drain().clean);
}

/// A deliberately panicking request comes back as a structured `panic`
/// failure, and the worker that caught it keeps serving.
#[test]
fn worker_panic_is_contained_to_one_request() {
    // One worker: if the panic killed it, the follow-up would hang.
    let server = Server::start(cfg(1, 1_000, 1_000)).expect("server starts");
    let mut c = Client::connect(server.addr()).expect("client connects");

    let line = r#"{"id":1,"tenant":"t","chaos":{"panic_worker":true},"program":{"operands":[{"name":"x","kind":"vector","len":8},{"name":"o","kind":"vector","len":8}],"ops":[{"op":"scal","alpha":2.0,"x":"x","out":"o"}]}}"#;
    let boom = exec(&mut c, line);
    assert_eq!((boom.status.as_str(), boom.code), ("failed", 500));
    assert_eq!(boom.kind.as_deref(), Some("panic"));

    // The single worker survived and still executes real work.
    let after = exec(&mut c, &gemv_line(2, "t", 16, 3, None));
    assert_eq!(after.status, "ok");
    let outcome = server.drain();
    assert!(outcome.clean);
    assert_eq!(outcome.stats.panics, 1);
    assert_eq!(outcome.stats.ok, 1);
}

/// An already-expired deadline fails fast with a structured 408 before
/// burning a simulator run, and a generous deadline doesn't interfere.
#[test]
fn expired_deadline_fails_fast_with_408() {
    let server = Server::start(cfg(1, 1_000, 1_000)).expect("server starts");
    let mut c = Client::connect(server.addr()).expect("client connects");

    // deadline_ms: 0 is expired by the time a worker picks it up.
    let mut line = gemv_line(1, "t", 16, 5, None);
    line = line.replacen("\"tenant\"", "\"deadline_ms\":0,\"tenant\"", 1);
    let late = exec(&mut c, &line);
    assert_eq!((late.status.as_str(), late.code), ("failed", 408));
    assert_eq!(late.kind.as_deref(), Some("deadline"));
    assert!(late.outputs.is_empty(), "expired request must not execute");

    // A generous deadline still slices into per-attempt budgets and
    // completes normally.
    let mut ok_line = gemv_line(2, "t", 16, 5, None);
    ok_line = ok_line.replacen("\"tenant\"", "\"deadline_ms\":30000,\"tenant\"", 1);
    let fine = exec(&mut c, &ok_line);
    assert_eq!(fine.status, "ok");
    let outcome = server.drain();
    assert!(outcome.clean);
    assert_eq!(outcome.stats.deadline_expired, 1);
}

/// Drain finishes every admitted request (zero loss), refuses new work
/// with an explicit shed, and reports clean.
#[test]
fn graceful_drain_loses_nothing_and_sheds_latecomers() {
    let server = Server::start(cfg(2, 1_000, 1_000)).expect("server starts");
    let addr = server.addr();

    // Four tenants in flight on their own connections while the drain
    // fires from a fifth.
    let workers: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("tenant connects");
                let mut ok = 0u64;
                for i in 0..3u64 {
                    // After the drain completes the server closes the
                    // connection; a latecomer seeing EOF is fine — what
                    // is not fine is an admitted request vanishing.
                    let Ok(raw) =
                        c.roundtrip_line(&gemv_line(t * 10 + i, &format!("t{t}"), 16, i, None))
                    else {
                        break;
                    };
                    let r = parse_response(&raw).expect("response parses");
                    match r.status.as_str() {
                        "ok" => ok += 1,
                        "shed" => {
                            assert_eq!(r.kind.as_deref(), Some("draining"));
                            assert_eq!(r.code, 503);
                        }
                        other => panic!("unexpected status {other}: {:?}", r.detail),
                    }
                }
                ok
            })
        })
        .collect();
    // Let some requests get admitted before draining.
    std::thread::sleep(Duration::from_millis(50));
    let mut ctl = Client::connect(addr).expect("control client connects");
    let drain_raw = ctl.control("drain").expect("drain roundtrip");
    assert!(
        drain_raw.contains(r#""status":"ok""#),
        "drain must complete cleanly: {drain_raw}"
    );
    let completed: u64 = workers
        .into_iter()
        .map(|h| h.join().expect("tenant thread joins"))
        .sum();

    let outcome = server.wait();
    assert!(outcome.clean, "drain reported unclean");
    assert_eq!(
        outcome.stats.ok, completed,
        "admitted-and-executed count must equal responses the tenants saw"
    );
    assert_eq!(
        outcome.stats.admitted, outcome.stats.ok,
        "every admitted request must have executed (zero loss)"
    );
    assert_eq!(outcome.stats.failed, 0);
}
