//! Keystone differential for the fusion analysis.
//!
//! The dataflow engine's central promise is that **fusion is
//! semantics-preserving and bit-exact**: for every chain the analyzer
//! marks fusable, executing the region as one straight-line loop per
//! element (what a fused backend would instantiate) produces the same
//! f32 bit patterns as executing every module on its own thread with
//! real bounded FIFOs. And every chain it *rejects* must carry a
//! witness that exists in the graph.
//!
//! Three populations:
//!
//! * ~200 seeded random relay pipelines (copy/scal/axpy chains with
//!   extra reads, tee writes, reductions, stateful stages that stream
//!   through into the next chain, and fanout injected at random);
//! * the paper compositions — AXPYDOT, BiCG, GEMVER — routed through
//!   the real planner, with op-derived semantics;
//! * a scaled-AXPYDOT variant whose scal→axpy prefix actually fuses,
//!   so the planner path exercises a fused region with a boundary
//!   output, not only rejections.
//!
//! Every fusion plan is additionally re-verified (obligations,
//! witnesses) and round-tripped byte-stably through JSON.

// Test/example code may unwrap; the clippy.toml discipline targets
// library code.
#![allow(clippy::disallowed_methods)]

use std::collections::BTreeMap;

use fblas_core::composition::{plan, Mdag, Op, PlannerConfig, Program, RateGraph};
use fblas_lint::harness::{
    differential_grace, run_on_simulator, run_region_threaded, seeded_streams, SimVerdict,
};
use fblas_lint::{
    analyze_fusion, build_evaluator, check_obligations, infer_sems, sems_for_component,
    verify_witnesses, FusionPlan, ModuleSem,
};
use proptest::prelude::*;

// ------------------------------------------------------------------
// Deterministic xorshift64* generator (same idiom as the rate
// differential suite): every failure names its seed.
// ------------------------------------------------------------------

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9e3779b97f4a7c15).max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo + 1)
    }
    fn chance(&mut self, percent: u64) -> bool {
        self.next() % 100 < percent
    }
}

// ------------------------------------------------------------------
// Random relay pipelines over real MDAGs.
// ------------------------------------------------------------------

const ELEMS: u64 = 64;

/// A random pipeline: 2–6 compute stages chained head to tail, each a
/// relay (copy/scal/axpy), a W-way reduction, or a stateful module;
/// axpy stages pull a fresh read for their second operand; relays tee
/// to writes at random; stateful stages sometimes stream through into
/// the next chain (a boundary *input* for the region that follows);
/// chains sometimes end in a reduction (a boundary *output*); and an
/// extra consumer is sometimes attached to a middle relay (fanout — a
/// rejection the analyzer must witness).
fn random_fusion_graph(seed: u64) -> (Mdag, Vec<ModuleSem>) {
    let mut rng = Rng::new(seed);
    let mut g = Mdag::new();
    let mut overrides: Vec<(usize, ModuleSem)> = Vec::new();

    let read0 = g.add_interface("read_x0");
    let mut reads = 1;
    let mut live = read0; // head of the chain under construction
    let mut live_is_relay = false;
    let stages = rng.range(2, 6);
    let mut relay_nodes = Vec::new();

    for si in 0..stages {
        let roll = rng.range(0, 9);
        let (name, sem, arity) = match roll {
            0 | 1 => (format!("copy#{si}"), ModuleSem::Copy, 1),
            2..=4 => (
                format!("scal#{si}"),
                ModuleSem::Scal {
                    alpha: Some((rng.range(1, 9) as f64) / 2.0),
                },
                1,
            ),
            5..=7 => (
                format!("axpy#{si}"),
                ModuleSem::Axpy {
                    alpha: Some(-((rng.range(1, 9) as f64) / 4.0)),
                },
                2,
            ),
            8 => (format!("dot#{si}"), ModuleSem::Reduce { width: 16 }, 2),
            _ => (format!("gemv#{si}"), ModuleSem::Stateful, 2),
        };
        let node = g.add_compute(name);
        overrides.push((node.0, sem.clone()));
        g.add_edge(live, node, ELEMS, ELEMS, 16);
        if arity == 2 {
            let r = g.add_interface(format!("read_x{reads}"));
            reads += 1;
            g.add_edge(r, node, ELEMS, ELEMS, 16);
        }
        if sem.is_relay() {
            relay_nodes.push(node);
            if rng.chance(33) {
                let w = g.add_interface(format!("write_t{si}"));
                g.add_edge(node, w, ELEMS, ELEMS, 16);
            }
            live = node;
            live_is_relay = true;
        } else if matches!(sem, ModuleSem::Stateful) && rng.chance(50) {
            // A gemv-like tile streaming its result into the next
            // chain: whatever fuses downstream sees a boundary input.
            live = node;
            live_is_relay = false;
        } else {
            // Reduction (or drained stateful stage): sink it and
            // restart the chain from a fresh read.
            let w = g.add_interface(format!("write_r{si}"));
            g.add_edge(node, w, 1, 1, 16);
            let r = g.add_interface(format!("read_x{reads}"));
            reads += 1;
            live = r;
            live_is_relay = false;
        }
    }
    if live_is_relay && rng.chance(40) {
        // End in a reduction: the chain's tail keeps a boundary output.
        let dot = g.add_compute("dot#end");
        overrides.push((dot.0, ModuleSem::Reduce { width: 16 }));
        g.add_edge(live, dot, ELEMS, ELEMS, 16);
        let r = g.add_interface(format!("read_x{reads}"));
        g.add_edge(r, dot, ELEMS, ELEMS, 16);
        let w = g.add_interface("write_out");
        g.add_edge(dot, w, 1, 1, 16);
    } else if live_is_relay {
        let w = g.add_interface("write_out");
        g.add_edge(live, w, ELEMS, ELEMS, 16);
    } else {
        // Chain ended on a read or streaming stateful stage: close it
        // with a copy so the graph stays an analyzable pipeline.
        let c = g.add_compute("copy#tail");
        overrides.push((c.0, ModuleSem::Copy));
        relay_nodes.push(c);
        g.add_edge(live, c, ELEMS, ELEMS, 16);
        let w = g.add_interface("write_out");
        g.add_edge(c, w, ELEMS, ELEMS, 16);
    }

    // Random fanout: a second *compute* consumer on a middle relay.
    if !relay_nodes.is_empty() && rng.chance(25) {
        let victim = relay_nodes[(rng.next() % relay_nodes.len() as u64) as usize];
        let extra = g.add_compute("copy#fan");
        overrides.push((extra.0, ModuleSem::Copy));
        g.add_edge(victim, extra, ELEMS, ELEMS, 16);
        let w = g.add_interface("write_fan");
        g.add_edge(extra, w, ELEMS, ELEMS, 16);
    }

    let mut sems = infer_sems(&g, 16);
    for (i, sem) in overrides {
        sems[i] = sem;
    }
    (g, sems)
}

/// Bit-exact fused-vs-threaded comparison for every region of a plan,
/// plus witness and obligation re-verification and a byte-stable JSON
/// round-trip. Returns (regions, rejections) for non-vacuity counts.
fn verify_plan(g: &Mdag, sems: &[ModuleSem], fp: &FusionPlan, label: &str) -> (u64, u64) {
    let witness_errors = verify_witnesses(fp, g);
    assert!(witness_errors.is_empty(), "{label}: {witness_errors:?}");
    let obligation_errors = check_obligations(fp, g, sems, false);
    assert!(
        obligation_errors.is_empty(),
        "{label}: {obligation_errors:?}"
    );

    let json = fp.to_json();
    let back = FusionPlan::from_json(&json).unwrap_or_else(|e| panic!("{label}: {e}"));
    assert_eq!(&back, fp, "{label}: plan changed across round-trip");
    assert_eq!(
        back.to_json(),
        json,
        "{label}: serialization not byte-stable"
    );

    for region in &fp.regions {
        let ev = build_evaluator(g, sems, region)
            .unwrap_or_else(|e| panic!("{label} {}: {e}", region.name));
        let len = region.elements as usize;
        let streams = seeded_streams(&ev.inputs, 0xfb1a5 ^ region.elements, len);
        let fused = ev
            .run(&streams)
            .unwrap_or_else(|e| panic!("{label} {}: fused run: {e}", region.name));
        let threaded = run_region_threaded(g, sems, region, &streams, differential_grace(), None)
            .unwrap_or_else(|e| panic!("{label} {}: threaded run: {e}", region.name));
        let bits = |v: &Vec<f32>| v.iter().map(|x| x.to_bits()).collect::<Vec<u32>>();
        assert_eq!(
            fused.sinks.keys().collect::<Vec<_>>(),
            threaded.sinks.keys().collect::<Vec<_>>(),
            "{label} {}: sink sets differ",
            region.name
        );
        for (k, v) in &fused.sinks {
            assert_eq!(
                bits(v),
                bits(&threaded.sinks[k]),
                "{label} {}: sink `{k}` not bit-identical",
                region.name
            );
        }
        assert_eq!(
            bits(&fused.output),
            bits(&threaded.output),
            "{label} {}: output not bit-identical",
            region.name
        );
    }
    (fp.regions.len() as u64, fp.rejections.len() as u64)
}

fn run_fusion_seed_block(seeds: std::ops::Range<u64>, floor_regions: u64) {
    let (mut regions, mut rejections) = (0u64, 0u64);
    for seed in seeds {
        let (g, sems) = random_fusion_graph(seed);
        let fp = analyze_fusion(&g, &sems, &format!("seed{seed}"), false);
        let (r, x) = verify_plan(&g, &sems, &fp, &format!("seed {seed}"));
        regions += r;
        rejections += x;
    }
    // Non-vacuity: the population must exercise both outcomes broadly.
    assert!(
        regions >= floor_regions,
        "population too thin: {regions} fused regions (< {floor_regions})"
    );
    assert!(rejections > 0, "population never rejected a chain");
}

// 4 × 50 = 200 seeded pipelines, split across test threads. Each block
// must produce at least 10 fused regions (≥ 40 total — the keystone's
// non-vacuity floor).
#[test]
fn fused_regions_are_bit_identical_block0() {
    run_fusion_seed_block(0..50, 10);
}
#[test]
fn fused_regions_are_bit_identical_block1() {
    run_fusion_seed_block(50..100, 10);
}
#[test]
fn fused_regions_are_bit_identical_block2() {
    run_fusion_seed_block(100..150, 10);
}
#[test]
fn fused_regions_are_bit_identical_block3() {
    run_fusion_seed_block(150..200, 10);
}

// ------------------------------------------------------------------
// Paper compositions through the real planner.
// ------------------------------------------------------------------

fn axpydot_program(n: usize) -> Program {
    let mut p = Program::new();
    p.vector("w", n)
        .vector("v", n)
        .vector("u", n)
        .vector("z", n)
        .scalar("beta");
    p.op(Op::Axpy {
        alpha: -1.0,
        x: "v".into(),
        y: "w".into(),
        out: "z".into(),
    });
    p.op(Op::Dot {
        x: "z".into(),
        y: "u".into(),
        out: "beta".into(),
    });
    p
}

/// AXPYDOT with a scaled prefix: t = 2w, z = v − t, beta = z·u. The
/// scal→axpy prefix is a genuine fusable chain through the planner,
/// with its boundary output feeding the (unfusable) reduction.
fn scaled_axpydot_program(n: usize) -> Program {
    let mut p = Program::new();
    p.vector("w", n)
        .vector("v", n)
        .vector("u", n)
        .vector("t", n)
        .vector("z", n)
        .scalar("beta");
    p.op(Op::Scal {
        alpha: 2.0,
        x: "w".into(),
        out: "t".into(),
    });
    p.op(Op::Axpy {
        alpha: -1.0,
        x: "v".into(),
        y: "t".into(),
        out: "z".into(),
    });
    p.op(Op::Dot {
        x: "z".into(),
        y: "u".into(),
        out: "beta".into(),
    });
    p
}

fn bicg_program(n: usize, m: usize) -> Program {
    let mut p = Program::new();
    p.matrix("A", n, m)
        .vector("p", m)
        .vector("r", n)
        .vector("q", n)
        .vector("s", m);
    p.op(Op::Gemv {
        alpha: 1.0,
        beta: 0.0,
        a: "A".into(),
        transposed: false,
        x: "p".into(),
        y: None,
        out: "q".into(),
    });
    p.op(Op::Gemv {
        alpha: 1.0,
        beta: 0.0,
        a: "A".into(),
        transposed: true,
        x: "r".into(),
        y: None,
        out: "s".into(),
    });
    p
}

fn gemver_program(n: usize) -> Program {
    let mut p = Program::new();
    p.matrix("A", n, n).matrix("B1", n, n).matrix("B", n, n);
    for v in ["u1", "v1", "u2", "v2", "y", "z", "x", "w"] {
        p.vector(v, n);
    }
    p.op(Op::Ger {
        alpha: 1.0,
        a: "A".into(),
        x: "u1".into(),
        y: "v1".into(),
        out: "B1".into(),
    });
    p.op(Op::Ger {
        alpha: 1.0,
        a: "B1".into(),
        x: "u2".into(),
        y: "v2".into(),
        out: "B".into(),
    });
    p.op(Op::Gemv {
        alpha: 0.9,
        beta: 1.0,
        a: "B".into(),
        transposed: true,
        x: "y".into(),
        y: Some("z".into()),
        out: "x".into(),
    });
    p.op(Op::Gemv {
        alpha: 1.1,
        beta: 0.0,
        a: "B".into(),
        transposed: false,
        x: "x".into(),
        y: None,
        out: "w".into(),
    });
    p
}

#[test]
fn paper_compositions_verify_through_the_planner() {
    let programs: Vec<(&str, Program)> = vec![
        ("axpydot", axpydot_program(64)),
        ("scaled_axpydot", scaled_axpydot_program(64)),
        ("bicg", bicg_program(32, 32)),
        ("gemver", gemver_program(32)),
    ];
    let cfg = PlannerConfig::default();
    let mut fused_total = 0u64;
    let mut rejected_total = 0u64;
    for (name, program) in &programs {
        let planned = plan(program, &cfg).unwrap_or_else(|e| panic!("{name}: {e:?}"));
        for (ci, c) in planned.components.iter().enumerate() {
            let sems = sems_for_component(&c.mdag, program.ops(), 16);
            let fp = analyze_fusion(&c.mdag, &sems, &format!("{name}#c{ci}"), false);
            let (r, x) = verify_plan(&c.mdag, &sems, &fp, &format!("{name}#c{ci}"));
            fused_total += r;
            rejected_total += x;
        }
    }
    // The scaled AXPYDOT must actually fuse its scal→axpy prefix, and
    // the stateful/reducing compositions must produce witnessed
    // rejections.
    assert!(fused_total >= 1, "no fused region across paper programs");
    assert!(
        rejected_total >= 4,
        "expected witnessed rejections from dot/gemv/ger chains, got {rejected_total}"
    );
}

#[test]
fn reassociation_rejections_carry_the_reducing_witness() {
    let program = axpydot_program(64);
    let planned = plan(&program, &PlannerConfig::default()).unwrap();
    let c = &planned.components[0];
    let sems = sems_for_component(&c.mdag, program.ops(), 16);
    let fp = analyze_fusion(&c.mdag, &sems, "axpydot", false);
    let reassoc: Vec<_> = fp
        .rejections
        .iter()
        .filter(|r| r.reason == "reassociation")
        .collect();
    assert!(!reassoc.is_empty(), "{}", fp.to_json());
    for r in &reassoc {
        let w = r.witness_module.as_deref().expect("witness module");
        assert!(w.starts_with("dot#"), "witness should be the reducer: {w}");
    }
    // At W = 1 the adder no longer reassociates, but the reduction
    // still collapses N elements to 1: the rejection must downgrade to
    // `rate-change`, never disappear.
    let sems1 = sems_for_component(&c.mdag, program.ops(), 1);
    let fp1 = analyze_fusion(&c.mdag, &sems1, "axpydot-w1", false);
    assert!(
        fp1.rejections.iter().all(|r| r.reason != "reassociation"),
        "{}",
        fp1.to_json()
    );
    assert!(
        fp1.rejections.iter().any(|r| r.reason == "rate-change"),
        "{}",
        fp1.to_json()
    );
}

// ------------------------------------------------------------------
// Satellite: RateGraph::min_depth exactness on random multi-edge /
// burst graphs — the reported depth admits completion, depth − 1
// deadlocks, on both the abstract engine and (sampled) the simulator.
// ------------------------------------------------------------------

#[derive(Debug, Clone)]
struct BurstEdge {
    elements: u64,
    depth: u64,
    burst: u64,
}

fn burst_edges() -> impl Strategy<Value = Vec<BurstEdge>> {
    prop::collection::vec(
        (1u64..40, 1u64..4, 0u64..40).prop_map(|(elements, depth, burst)| BurstEdge {
            elements,
            depth,
            burst: burst.min(elements),
        }),
        2..5,
    )
}

/// src streams every parallel edge; the join's consumption order and
/// burst prefixes come from the MDAG translation — bursts larger than
/// the configured depth force real buffering before the first pop.
fn burst_mdag(edges: &[BurstEdge]) -> Mdag {
    let mut g = Mdag::new();
    let src = g.add_interface("src");
    let join = g.add_compute("join");
    let sink = g.add_interface("sink");
    let mut total = 0;
    for e in edges {
        let id = g.add_edge(src, join, e.elements, e.elements, e.depth);
        if e.burst > 0 {
            g.set_burst_before_consume(id, e.burst);
        }
        total += e.elements;
    }
    g.add_edge(join, sink, total, total, 8);
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn min_depth_is_exact_on_random_burst_graphs(edges in burst_edges()) {
        let g = burst_mdag(&edges);
        let rg = RateGraph::from_mdag(&g);
        let caps: Vec<u64> = (0..rg.channel_count()).map(|c| rg.capacity(c)).collect();
        let mut sim_budget = 2u32;
        for ch in 0..rg.channel_count() {
            let Some(d) = rg.min_depth(ch) else { continue };
            let mut at = caps.clone();
            at[ch] = d;
            prop_assert!(
                rg.analyze_with(&at).is_completed(),
                "channel {}: min depth {} must complete", ch, d
            );
            if d > 1 {
                let mut below = caps.clone();
                below[ch] = d - 1;
                prop_assert!(
                    !rg.analyze_with(&below).is_completed(),
                    "channel {}: depth {} must deadlock", ch, d - 1
                );
                // Sampled simulator agreement: real threads, real FIFOs.
                if d > caps[ch] && sim_budget > 0 {
                    sim_budget -= 1;
                    prop_assert_eq!(
                        run_on_simulator(&rg, &at, differential_grace()),
                        SimVerdict::Completed
                    );
                    prop_assert_eq!(
                        run_on_simulator(&rg, &below, differential_grace()),
                        SimVerdict::Stalled
                    );
                }
            }
        }
    }
}

// ------------------------------------------------------------------
// Satellite: every diagnostic code in the registry has a triggering
// fixture under examples/lint — walking the real files through the
// real linter, exactly as CI does.
// ------------------------------------------------------------------

#[test]
fn every_lint_code_has_a_triggering_fixture() {
    use fblas_lint::{lint_json, LintCode};
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/lint");
    let mut fired: std::collections::HashSet<LintCode> = std::collections::HashSet::new();
    let mut files = 0;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("examples/lint exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.extension().is_none_or(|x| x != "json") {
            continue;
        }
        files += 1;
        let text = std::fs::read_to_string(&path).expect("fixture readable");
        let report = lint_json(&text, &path.display().to_string());
        fired.extend(report.diagnostics.iter().map(|d| d.code));
    }
    assert!(files >= 10, "fixture corpus suspiciously small: {files}");
    let missing: Vec<_> = LintCode::ALL
        .iter()
        .filter(|c| !fired.contains(c))
        .collect();
    assert!(
        missing.is_empty(),
        "codes with no triggering fixture under examples/lint: {missing:?}"
    );
}

// ------------------------------------------------------------------
// The fused evaluator is total on its advertised domain: any plan that
// validates must also build and run. (Guards against plans that
// serialize fine but cannot execute.)
// ------------------------------------------------------------------

#[test]
fn every_region_of_every_seed_builds_an_evaluator() {
    for seed in 0..200u64 {
        let (g, sems) = random_fusion_graph(seed);
        let fp = analyze_fusion(&g, &sems, &format!("seed{seed}"), false);
        for region in &fp.regions {
            let ev = build_evaluator(&g, &sems, region)
                .unwrap_or_else(|e| panic!("seed {seed} {}: {e}", region.name));
            assert_eq!(ev.elements, region.elements);
            let empty: BTreeMap<String, Vec<f32>> = BTreeMap::new();
            if !ev.inputs.is_empty() {
                assert!(ev.run(&empty).is_err(), "missing streams must be an error");
            }
        }
    }
}
