//! Property-based tests (proptest) on the core invariants:
//! channel FIFO semantics, tiling permutations, streaming routines vs
//! the CPU oracle over random inputs and configurations, and the
//! rotation constructors' algebraic properties.

#![allow(clippy::needless_range_loop)] // explicit indices mirror the math

use proptest::prelude::*;

use fblas_core::routines::gemv::{Gemv, GemvVariant};
use fblas_core::routines::{Dot, Scal};
use fblas_core::tiling::{TileOrder, Tiling};
use fblas_hlssim::{channel, ModuleKind, SimContext, Simulation};
use fblas_refblas as refblas;

// ---------------- channels ----------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FIFO order is preserved for arbitrary payloads and capacities.
    #[test]
    fn channel_preserves_order(data in prop::collection::vec(any::<u32>(), 0..200), cap in 1usize..32) {
        let ctx = SimContext::new();
        let (tx, rx) = channel::<u32>(&ctx, cap, "ch");
        let expected = data.clone();
        std::thread::scope(|s| {
            s.spawn(move || {
                for v in data {
                    tx.push(v).unwrap();
                }
            });
            let got = rx.drain().unwrap();
            prop_assert_eq!(got, expected);
            Ok(())
        })?;
    }

    /// Occupancy never exceeds capacity.
    #[test]
    fn channel_occupancy_bounded(n in 0usize..300, cap in 1usize..16) {
        let ctx = SimContext::new();
        let (tx, rx) = channel::<usize>(&ctx, cap, "ch");
        std::thread::scope(|s| {
            s.spawn(move || tx.push_iter(0..n).unwrap());
            let v = rx.pop_n(n).unwrap();
            prop_assert_eq!(v.len(), n);
            prop_assert!(rx.stats().max_occupancy <= cap);
            Ok(())
        })?;
    }
}

// ---------------- tiling ----------------

fn tile_order_strategy() -> impl Strategy<Value = TileOrder> {
    prop_oneof![
        Just(TileOrder::RowTilesRowMajor),
        Just(TileOrder::RowTilesColMajor),
        Just(TileOrder::ColTilesRowMajor),
        Just(TileOrder::ColTilesColMajor),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every tiling order yields a permutation of all matrix indices.
    #[test]
    fn stream_indices_is_a_permutation(
        n in 1usize..20,
        m in 1usize..20,
        tn in 1usize..8,
        tm in 1usize..8,
        order in tile_order_strategy(),
    ) {
        let t = Tiling::new(tn, tm, order);
        let idx = t.stream_indices(n, m);
        prop_assert_eq!(idx.len(), n * m);
        let set: std::collections::HashSet<_> = idx.iter().copied().collect();
        prop_assert_eq!(set.len(), n * m);
        for (r, c) in idx {
            prop_assert!(r < n && c < m);
        }
    }

    /// Tiles-by-rows I/O decreases (weakly) as T_N grows.
    #[test]
    fn gemv_io_monotone_in_tile_size(n in 1usize..512, m in 1usize..512, t in 1usize..64) {
        use fblas_core::tiling::gemv_io_tiles_by_rows;
        let small = gemv_io_tiles_by_rows(n, m, t);
        let large = gemv_io_tiles_by_rows(n, m, 2 * t);
        prop_assert!(large <= small);
    }
}

// ---------------- streaming routines vs oracle ----------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Streaming DOT equals the reference dot for arbitrary inputs and
    /// widths.
    #[test]
    fn dot_matches_oracle(
        xs in prop::collection::vec(-100.0f64..100.0, 0..128),
        w in 1usize..32,
    ) {
        let n = xs.len();
        let ys: Vec<f64> = xs.iter().map(|v| v * 0.5 + 1.0).collect();
        let expected = refblas::level1::dot(&xs, &ys);

        let mut sim = Simulation::new();
        let (tx, rx) = channel(sim.ctx(), 64, "x");
        let (ty, ry) = channel(sim.ctx(), 64, "y");
        let (tr, rr) = channel(sim.ctx(), 1, "r");
        let xs2 = xs.clone();
        sim.add_module("sx", ModuleKind::Interface, move || tx.push_slice(&xs2));
        sim.add_module("sy", ModuleKind::Interface, move || ty.push_slice(&ys));
        Dot::new(n, w).attach(&mut sim, rx, ry, tr);
        let out = std::sync::Arc::new(parking_lot_mutex());
        let out2 = out.clone();
        sim.add_module("res", ModuleKind::Interface, move || {
            *out2.lock().unwrap() = rr.pop()?;
            Ok(())
        });
        sim.run().unwrap();
        let got = *out.lock().unwrap();
        prop_assert!((got - expected).abs() < 1e-6 * (1.0 + expected.abs()));
    }

    /// Streaming SCAL equals the reference for arbitrary widths.
    #[test]
    fn scal_matches_oracle(
        xs in prop::collection::vec(-50.0f64..50.0, 0..200),
        alpha in -4.0f64..4.0,
        w in 1usize..16,
    ) {
        let n = xs.len();
        let mut expected = xs.clone();
        refblas::level1::scal(alpha, &mut expected);

        let mut sim = Simulation::new();
        let (tx, rx) = channel(sim.ctx(), 32, "x");
        let (to, ro) = channel(sim.ctx(), 32, "o");
        let xs2 = xs.clone();
        sim.add_module("src", ModuleKind::Interface, move || tx.push_slice(&xs2));
        Scal::new(n, w).attach(&mut sim, alpha, rx, to);
        let out = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let out2 = out.clone();
        sim.add_module("sink", ModuleKind::Interface, move || {
            *out2.lock().unwrap() = ro.pop_n(n)?;
            Ok(())
        });
        sim.run().unwrap();
        let got = out.lock().unwrap().clone();
        prop_assert_eq!(got, expected);
    }

    /// All four GEMV streaming variants agree with the oracle for random
    /// shapes, tiles, and widths.
    #[test]
    fn gemv_variants_match_oracle(
        n in 1usize..14,
        m in 1usize..14,
        tn in 1usize..6,
        tm in 1usize..6,
        w in 1usize..8,
        variant_ix in 0usize..4,
    ) {
        use fblas_core::helpers::writers::replay_vector_through_memory;
        use fblas_core::helpers::{read_matrix, read_vector, read_vector_replayed, write_vector};
        use fblas_core::host::DeviceBuffer;

        let variant = [
            GemvVariant::RowStreamed,
            GemvVariant::ColStreamed,
            GemvVariant::TransRowStreamed,
            GemvVariant::TransColStreamed,
        ][variant_ix];
        let cfg = Gemv::new(variant, n, m, tn, tm, w);

        let a: Vec<f64> = (0..n * m).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let x: Vec<f64> = (0..cfg.x_len()).map(|i| ((i * 5 % 11) as f64) * 0.5).collect();
        let y: Vec<f64> = (0..cfg.y_len()).map(|i| ((i * 3 % 7) as f64) - 3.0).collect();
        let (alpha, beta) = (1.25f64, 0.75f64);

        let rt = if variant.transposed() { refblas::Trans::Yes } else { refblas::Trans::No };
        let mut expected = y.clone();
        refblas::level2::gemv(rt, n, m, alpha, &a, &x, beta, &mut expected);

        let mut sim = Simulation::new();
        let a_buf = DeviceBuffer::from_vec("a", a, 0);
        let x_buf = DeviceBuffer::from_vec("x", x, 0);
        let y_buf = DeviceBuffer::from_vec("y", y, 0);
        let out_buf = DeviceBuffer::<f64>::zeroed("out", cfg.y_len(), 0);
        let (ta, ra) = channel(sim.ctx(), 64, "a");
        let (txv, rxv) = channel(sim.ctx(), 64, "x");
        let (tyi, ryi) = channel(sim.ctx(), 64, "yi");
        let (tyo, ryo) = channel(sim.ctx(), 64, "yo");
        read_matrix(&mut sim, &a_buf, n, m, cfg.a_tiling(), ta, 1);
        read_vector_replayed(&mut sim, &x_buf, txv, cfg.x_repetitions());
        cfg.attach(&mut sim, alpha, beta, ra, rxv, ryi, tyo);
        if cfg.y_rounds() == 1 {
            read_vector(&mut sim, &y_buf, tyi);
            write_vector(&mut sim, &out_buf, cfg.y_len(), ryo);
        } else {
            replay_vector_through_memory(&mut sim, &y_buf, &out_buf, cfg.y_len(), cfg.y_rounds(), tyi, ryo);
        }
        sim.run().unwrap();
        let got = out_buf.to_host();
        for i in 0..got.len() {
            prop_assert!(
                (got[i] - expected[i]).abs() < 1e-9 * (1.0 + expected[i].abs()),
                "{:?} idx {}: {} vs {}", variant, i, got[i], expected[i]
            );
        }
    }
}

fn parking_lot_mutex() -> std::sync::Mutex<f64> {
    std::sync::Mutex::new(0.0)
}

// ---------------- rotations ----------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// rotg produces an orthonormal rotation that annihilates b.
    #[test]
    fn rotg_is_orthonormal(a in -1.0e3f64..1.0e3, b in -1.0e3f64..1.0e3) {
        let g = refblas::level1::rotg(a, b);
        // c² + s² = 1 (unless both inputs are zero).
        if a != 0.0 || b != 0.0 {
            prop_assert!((g.c * g.c + g.s * g.s - 1.0).abs() < 1e-9);
            // Rotation annihilates the second component.
            prop_assert!((-g.s * a + g.c * b).abs() < 1e-8 * (1.0 + a.abs() + b.abs()));
            // r preserves the magnitude.
            prop_assert!((g.r.abs() - (a * a + b * b).sqrt()).abs() < 1e-8 * (1.0 + a.abs() + b.abs()));
        }
    }

    /// rotmg's transform annihilates the second scaled component and
    /// preserves the weighted norm.
    #[test]
    fn rotmg_annihilates(
        d1 in 0.01f64..100.0,
        d2 in 0.01f64..100.0,
        x1 in -10.0f64..10.0,
        y1 in -10.0f64..10.0,
    ) {
        prop_assume!(x1.abs() > 1e-6 && y1.abs() > 1e-6);
        let r = refblas::level1::rotmg(d1, d2, x1, y1);
        let mut xv = [x1];
        let mut yv = [y1];
        refblas::level1::rotm(&mut xv, &mut yv, &r.param);
        prop_assert!(yv[0].abs() < 1e-6 * (1.0 + x1.abs() + y1.abs()),
            "residual {} for ({d1},{d2},{x1},{y1})", yv[0]);
        let before = d1 * x1 * x1 + d2 * y1 * y1;
        let after = r.d1 * r.x1 * r.x1 + r.d2 * yv[0] * yv[0];
        prop_assert!((before - after).abs() < 1e-6 * (1.0 + before.abs()));
    }
}

// ---------------- streaming TRSV vs oracle ----------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Streaming TRSV solves every (uplo, trans, diag) case for random
    /// well-conditioned triangles.
    #[test]
    fn trsv_matches_oracle(
        n in 1usize..12,
        w in 1usize..6,
        case in 0usize..8,
    ) {
        use fblas_core::helpers::{read_vector, write_vector};
        use fblas_core::host::DeviceBuffer;
        use fblas_core::routines::trsv::{read_triangle, Trsv};
        use fblas_core::routines::{Diag, Trans, Uplo};

        let uplo = if case & 1 == 0 { Uplo::Upper } else { Uplo::Lower };
        let trans = if case & 2 == 0 { Trans::No } else { Trans::Yes };
        let diag = if case & 4 == 0 { Diag::NonUnit } else { Diag::Unit };

        // Well-conditioned triangle in full storage.
        let mut a = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                let stored = match uplo {
                    Uplo::Upper => j >= i,
                    Uplo::Lower => j <= i,
                };
                if stored {
                    a[i * n + j] = 0.05 * ((i * 3 + j * 5) % 7) as f64 + 0.1;
                }
            }
            a[i * n + i] += 2.0;
        }
        let b: Vec<f64> = (0..n).map(|i| ((i * 11 % 13) as f64) - 6.0).collect();

        // Oracle.
        let (ru, rt, rd) = (
            match uplo { Uplo::Upper => refblas::Uplo::Upper, Uplo::Lower => refblas::Uplo::Lower },
            match trans { Trans::No => refblas::Trans::No, Trans::Yes => refblas::Trans::Yes },
            match diag { Diag::Unit => refblas::Diag::Unit, Diag::NonUnit => refblas::Diag::NonUnit },
        );
        let mut expected = b.clone();
        refblas::level2::trsv(ru, rt, rd, n, &a, &mut expected);

        // Streaming module.
        let cfg = Trsv::new(n, w, uplo, trans, diag);
        let mut sim = Simulation::new();
        let a_buf = DeviceBuffer::from_vec("a", a, 0);
        let b_buf = DeviceBuffer::from_vec("b", b, 0);
        let x_buf = DeviceBuffer::<f64>::zeroed("x", n, 0);
        let (ta, ra) = channel(sim.ctx(), 64, "a");
        let (tb, rb) = channel(sim.ctx(), 64, "b");
        let (txx, rxx) = channel(sim.ctx(), 64, "x");
        read_triangle(&mut sim, &a_buf, n, uplo, cfg.reverse_rows(), ta);
        read_vector(&mut sim, &b_buf, tb);
        cfg.attach(&mut sim, ra, rb, txx);
        write_vector(&mut sim, &x_buf, n, rxx);
        sim.run().unwrap();
        let got = x_buf.to_host();
        for i in 0..n {
            prop_assert!(
                (got[i] - expected[i]).abs() < 1e-8 * (1.0 + expected[i].abs()),
                "{uplo:?}/{trans:?}/{diag:?} idx {i}: {} vs {}", got[i], expected[i]
            );
        }
    }
}

// ---------------- codegen total function over valid specs ----------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every syntactically valid spec either generates or returns a
    /// typed error — never panics — and generated estimates are sane.
    #[test]
    fn codegen_never_panics(
        name_ix in 0usize..24,
        prec in 0usize..2,
        width in 0usize..512,
        tiles in proptest::option::of((1usize..256, 1usize..256)),
        uplo_ix in 0usize..3,
        systolic in proptest::option::of((1usize..16, 1usize..16)),
    ) {
        use fblas_core::codegen::{generate, RoutineKind, RoutineSpec};
        let base = if name_ix < 22 {
            let kind = RoutineKind::ALL[name_ix];
            match kind {
                RoutineKind::Sdsdot => "sdsdot".to_string(),
                RoutineKind::Iamax => format!("i{}amax", if prec == 0 { 's' } else { 'd' }),
                _ => format!("{}{}", if prec == 0 { 's' } else { 'd' }, kind.base_name()),
            }
        } else if name_ix == 22 {
            "zgemm".to_string() // unknown precision prefix
        } else {
            "sbogus".to_string() // unknown routine
        };
        let mut spec = RoutineSpec::named(base);
        spec.width = width;
        if let Some((tn, tm)) = tiles {
            spec.tile_n = Some(tn);
            spec.tile_m = Some(tm);
        }
        spec.uplo = match uplo_ix {
            0 => None,
            1 => Some("upper".into()),
            _ => Some("lower".into()),
        };
        if let Some((pr, pc)) = systolic {
            spec.systolic_rows = Some(pr);
            spec.systolic_cols = Some(pc);
        }
        match generate(&spec) {
            Ok(k) => {
                prop_assert!(k.estimate.latency > 0);
                prop_assert!(!k.source.is_empty());
                prop_assert!(k.width >= 1);
            }
            Err(e) => {
                prop_assert!(!e.to_string().is_empty());
            }
        }
    }
}

// ---------------- planner totality ----------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random chains of vector ops always plan into valid components
    /// whose op sets partition the program in topological order.
    #[test]
    fn planner_partitions_random_chains(
        n in 1usize..64,
        ops_code in prop::collection::vec(0usize..3, 1..10),
        allow_deep in proptest::bool::ANY,
    ) {
        use fblas_core::composition::{plan, Op, PlannerConfig, Program};
        let mut p = Program::new();
        p.vector("v0", n);
        p.vector("aux", n);
        let mut prev = "v0".to_string();
        for (i, &code) in ops_code.iter().enumerate() {
            let out = format!("v{}", i + 1);
            p.vector(&out, n);
            let op = match code {
                0 => Op::Copy { x: prev.clone(), out: out.clone() },
                1 => Op::Scal { alpha: 1.5, x: prev.clone(), out: out.clone() },
                _ => Op::Axpy { alpha: 0.5, x: prev.clone(), y: "aux".into(), out: out.clone() },
            };
            p.op(op);
            prev = out;
        }
        let cfg = PlannerConfig { allow_deep_channels: allow_deep, ..Default::default() };
        let plan = plan(&p, &cfg).unwrap();
        // A pure chain is always a single multitree component.
        prop_assert_eq!(plan.components.len(), 1);
        let c = &plan.components[0];
        prop_assert_eq!(c.ops.len(), ops_code.len());
        prop_assert!(c.deep_channels.is_empty());
        prop_assert!(plan.io_elements() > 0);
    }
}

// ---------------- planner + executor vs interpreter ----------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random straight-line programs over the full planner op set,
    /// planned and executed on the dataflow simulator, must agree with
    /// the sequential reference interpreter — for both planner modes.
    #[test]
    fn executed_plans_match_interpreter(
        n in 2usize..10,
        m in 2usize..10,
        op_codes in prop::collection::vec(0usize..6, 1..6),
        tn in 1usize..5,
        tm in 1usize..5,
        allow_deep in proptest::bool::ANY,
    ) {
        use std::collections::HashMap;
        use fblas_core::composition::{execute_plan, interpret, plan, Op, PlannerConfig, Program};
        use fblas_core::host::DeviceBuffer;

        let mut p = Program::new();
        let mut inputs: HashMap<String, Vec<f64>> = HashMap::new();
        let mut buffers: HashMap<String, DeviceBuffer<f64>> = HashMap::new();

        let declare_vec = |p: &mut Program,
                               inputs: &mut HashMap<String, Vec<f64>>,
                               buffers: &mut HashMap<String, DeviceBuffer<f64>>,
                               name: String,
                               len: usize,
                               seed: f64,
                               is_input: bool| {
            p.vector(&name, len);
            let data: Vec<f64> = if is_input {
                (0..len).map(|i| ((i as f64 + seed) * 0.591).sin()).collect()
            } else {
                vec![0.0; len]
            };
            if is_input {
                inputs.insert(name.clone(), data.clone());
            }
            buffers.insert(name.clone(), DeviceBuffer::from_vec(name, data, 0));
        };

        // Seed operands.
        declare_vec(&mut p, &mut inputs, &mut buffers, "vn0".into(), n, 0.0, true);
        declare_vec(&mut p, &mut inputs, &mut buffers, "vm0".into(), m, 1.0, true);
        let a0: Vec<f64> = (0..n * m).map(|i| ((i as f64) * 0.313).cos()).collect();
        p.matrix("A0", n, m);
        inputs.insert("A0".into(), a0.clone());
        buffers.insert("A0".into(), DeviceBuffer::from_vec("A0", a0, 0));

        // Latest operand of each shape, used as inputs for later ops.
        let mut last_n = "vn0".to_string();
        let mut last_m = "vm0".to_string();
        let mut last_mat = "A0".to_string();
        let mut scalar_names = Vec::new();

        for (i, &code) in op_codes.iter().enumerate() {
            match code {
                0 => {
                    let out = format!("c{i}");
                    declare_vec(&mut p, &mut inputs, &mut buffers, out.clone(), n, 0.0, false);
                    p.op(Op::Copy { x: last_n.clone(), out: out.clone() });
                    last_n = out;
                }
                1 => {
                    let out = format!("s{i}");
                    declare_vec(&mut p, &mut inputs, &mut buffers, out.clone(), m, 0.0, false);
                    p.op(Op::Scal { alpha: 1.25, x: last_m.clone(), out: out.clone() });
                    last_m = out;
                }
                2 => {
                    let out = format!("ax{i}");
                    declare_vec(&mut p, &mut inputs, &mut buffers, out.clone(), n, 0.0, false);
                    p.op(Op::Axpy {
                        alpha: -0.5,
                        x: last_n.clone(),
                        y: "vn0".into(),
                        out: out.clone(),
                    });
                    last_n = out;
                }
                3 => {
                    let out = format!("d{i}");
                    p.scalar(&out);
                    p.op(Op::Dot { x: last_n.clone(), y: "vn0".into(), out: out.clone() });
                    scalar_names.push(out);
                }
                4 => {
                    // y_out = A x (length n) or transposed (length m),
                    // alternating to exercise both shapes.
                    if i % 2 == 0 {
                        let out = format!("g{i}");
                        declare_vec(&mut p, &mut inputs, &mut buffers, out.clone(), n, 0.0, false);
                        p.op(Op::Gemv {
                            alpha: 0.75,
                            beta: 0.0,
                            a: last_mat.clone(),
                            transposed: false,
                            x: last_m.clone(),
                            y: None,
                            out: out.clone(),
                        });
                        last_n = out;
                    } else {
                        let out = format!("gt{i}");
                        declare_vec(&mut p, &mut inputs, &mut buffers, out.clone(), m, 0.0, false);
                        p.op(Op::Gemv {
                            alpha: 0.6,
                            beta: 0.0,
                            a: last_mat.clone(),
                            transposed: true,
                            x: last_n.clone(),
                            y: None,
                            out: out.clone(),
                        });
                        last_m = out;
                    }
                }
                _ => {
                    let out = format!("B{i}");
                    p.matrix(&out, n, m);
                    buffers.insert(out.clone(), DeviceBuffer::from_vec(out.clone(), vec![0.0; n * m], 0));
                    // GER's row operand must be DRAM-resident: use the
                    // seed vector, which is always a source.
                    p.op(Op::Ger {
                        alpha: 0.4,
                        a: last_mat.clone(),
                        x: last_n.clone(),
                        y: "vm0".into(),
                        out: out.clone(),
                    });
                    last_mat = out;
                }
            }
        }

        let cfg = PlannerConfig { tn, tm, allow_deep_channels: allow_deep, ..Default::default() };
        let the_plan = plan(&p, &cfg).unwrap();
        let outcome = execute_plan::<f64>(&p, &the_plan, &cfg, &buffers).unwrap();
        let expected = interpret(&p, &inputs).unwrap();

        for (name, buf) in &buffers {
            if !expected.contains_key(name) {
                continue;
            }
            let got = buf.to_host();
            let exp = &expected[name];
            for i in 0..got.len() {
                prop_assert!(
                    (got[i] - exp[i]).abs() < 1e-9 * (1.0 + exp[i].abs()),
                    "{name}[{i}]: {} vs {} (plan: {})",
                    got[i],
                    exp[i],
                    the_plan.describe(&p)
                );
            }
        }
        for sn in &scalar_names {
            let got = outcome.scalars[sn];
            let exp = expected[sn][0];
            prop_assert!((got - exp).abs() < 1e-9 * (1.0 + exp.abs()), "{sn}: {got} vs {exp}");
        }
    }
}

// ---------------- reference BLAS self-consistency ----------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Parallel CPU kernels equal the serial ones.
    #[test]
    fn parallel_matches_serial(
        n in 1usize..200,
        threads in 1usize..8,
    ) {
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.73).cos()).collect();
        let serial = refblas::level1::dot(&x, &y);
        let par = refblas::parallel::dot(&x, &y, threads);
        prop_assert!((serial - par).abs() < 1e-9 * (1.0 + serial.abs()));
    }

    /// TRSM really solves: op(A)·X == α·B after trsm(B).
    #[test]
    fn trsm_left_solves(m in 1usize..10, n in 1usize..8) {
        let mut a = vec![0.0f64; m * m];
        for i in 0..m {
            for j in i..m {
                a[i * m + j] = 0.1 + 0.07 * (i + j) as f64;
            }
            a[i * m + i] += 2.0;
        }
        let x: Vec<f64> = (0..m * n).map(|i| ((i % 9) as f64) - 4.0).collect();
        let mut b = vec![0.0f64; m * n];
        refblas::level3::gemm(refblas::Trans::No, refblas::Trans::No, m, n, m, 1.0, &a, &x, 0.0, &mut b);
        refblas::level3::trsm(
            refblas::Side::Left,
            refblas::Uplo::Upper,
            refblas::Trans::No,
            refblas::Diag::NonUnit,
            m, n, 1.0, &a, &mut b,
        );
        for i in 0..m * n {
            prop_assert!((b[i] - x[i]).abs() < 1e-7 * (1.0 + x[i].abs()));
        }
    }
}
