//! Integration: every FBLAS host-API routine against the CPU reference
//! BLAS oracle, in both precisions where meaningful.

#![allow(clippy::needless_range_loop)] // explicit indices mirror the math

use fblas_arch::Device;
use fblas_core::host::{blas, Fpga, GemvTuning};
use fblas_core::routines::gemm::SystolicShape;
use fblas_core::routines::{Diag, Side, Trans, Uplo};
use fblas_refblas as refblas;

fn seq64(n: usize, seed: f64) -> Vec<f64> {
    (0..n).map(|i| ((i as f64 + seed) * 0.317).sin()).collect()
}

fn seq32(n: usize, seed: f64) -> Vec<f32> {
    seq64(n, seed).into_iter().map(|v| v as f32).collect()
}

fn fpga() -> Fpga {
    Fpga::new(Device::Stratix10Gx2800)
}

fn assert_close64(got: &[f64], exp: &[f64], tol: f64, what: &str) {
    assert_eq!(got.len(), exp.len(), "{what}: length");
    for i in 0..got.len() {
        assert!(
            (got[i] - exp[i]).abs() <= tol * (1.0 + exp[i].abs()),
            "{what}[{i}]: {} vs {}",
            got[i],
            exp[i]
        );
    }
}

#[test]
fn scal_copy_swap_axpy() {
    let f = fpga();
    let n = 333;
    let x0 = seq64(n, 0.0);
    let y0 = seq64(n, 1.0);

    let x = f.alloc_from("x", x0.clone());
    blas::scal(&f, 1.7, &x, 8).unwrap();
    let mut exp = x0.clone();
    refblas::level1::scal(1.7, &mut exp);
    assert_close64(&x.to_host(), &exp, 1e-12, "scal");

    let y = f.alloc_from("y", vec![0.0f64; n]);
    blas::copy(&f, &x, &y, 8).unwrap();
    assert_close64(&y.to_host(), &exp, 0.0, "copy");

    let a = f.alloc_from("a", x0.clone());
    let b = f.alloc_from("b", y0.clone());
    blas::swap(&f, &a, &b, 4).unwrap();
    assert_close64(&a.to_host(), &y0, 0.0, "swap a");
    assert_close64(&b.to_host(), &x0, 0.0, "swap b");

    let yy = f.alloc_from("yy", y0.clone());
    let xx = f.alloc_from("xx", x0.clone());
    blas::axpy(&f, -0.6, &xx, &yy, 16).unwrap();
    let mut exp = y0.clone();
    refblas::level1::axpy(-0.6, &x0, &mut exp);
    assert_close64(&yy.to_host(), &exp, 1e-12, "axpy");
}

#[test]
fn reductions_match_reference() {
    let f = fpga();
    let n = 1021;
    let x0 = seq64(n, 2.0);
    let y0 = seq64(n, 3.0);
    let x = f.alloc_from("x", x0.clone());
    let y = f.alloc_from("y", y0.clone());

    let (d, _) = blas::dot(&f, &x, &y, 16).unwrap();
    assert!((d - refblas::level1::dot(&x0, &y0)).abs() < 1e-9, "dot");

    let (nr, _) = blas::nrm2(&f, &x, 8).unwrap();
    assert!((nr - refblas::level1::nrm2(&x0)).abs() < 1e-9, "nrm2");

    let (s, _) = blas::asum(&f, &x, 8).unwrap();
    assert!((s - refblas::level1::asum(&x0)).abs() < 1e-9, "asum");

    let (idx, _) = blas::iamax(&f, &x, 4).unwrap();
    assert_eq!(Some(idx), refblas::level1::iamax(&x0), "iamax");
}

#[test]
fn sdsdot_single_precision_accumulation() {
    let f = fpga();
    let x0 = vec![1.0e7f32, 1.0, -1.0e7, 2.0];
    let y0 = vec![1.0f32, 1.0, 1.0, 1.0];
    let x = f.alloc_from("x", x0.clone());
    let y = f.alloc_from("y", y0.clone());
    let (r, _) = blas::sdsdot(&f, 0.25, &x, &y, 2).unwrap();
    assert_eq!(r, refblas::level1::sdsdot(0.25, &x0, &y0));
}

#[test]
fn rotation_family() {
    let f = fpga();
    // rotg matches the reference Givens rotation.
    let ((r, z, c, s), _) = blas::rotg(&f, 3.0f64, -4.0).unwrap();
    let g = refblas::level1::rotg(3.0f64, -4.0);
    assert!((r - g.r).abs() < 1e-12);
    assert!((z - g.z).abs() < 1e-12);
    assert!((c - g.c).abs() < 1e-12);
    assert!((s - g.s).abs() < 1e-12);

    // rot: applying (c, s) matches reference.
    let n = 97;
    let x0 = seq64(n, 4.0);
    let y0 = seq64(n, 5.0);
    let x = f.alloc_from("x", x0.clone());
    let y = f.alloc_from("y", y0.clone());
    blas::rot(&f, &x, &y, c, s, 8).unwrap();
    let (mut xr, mut yr) = (x0.clone(), y0.clone());
    refblas::level1::rot(&mut xr, &mut yr, c, s);
    assert_close64(&x.to_host(), &xr, 1e-12, "rot x");
    assert_close64(&y.to_host(), &yr, 1e-12, "rot y");

    // rotmg + rotm round trip annihilates the second component.
    let ((_d1, _d2, x1n, param), _) = blas::rotmg(&f, 2.0f64, 3.0, 1.5, 0.5).unwrap();
    let xb = f.alloc_from("x1", vec![1.5f64]);
    let yb = f.alloc_from("y1", vec![0.5f64]);
    blas::rotm(&f, &xb, &yb, param, 1).unwrap();
    assert!(yb.get(0).abs() < 1e-10, "rotm must annihilate y1");
    assert!((xb.get(0) - x1n).abs() < 1e-10);
}

#[test]
fn gemv_both_transposes_and_precisions() {
    let f = fpga();
    let (n, m) = (37, 23);
    let a0 = seq64(n * m, 0.0);
    let tuning = GemvTuning::new(8, 8, 4);

    for trans in [Trans::No, Trans::Yes] {
        let (xl, yl) = match trans {
            Trans::No => (m, n),
            Trans::Yes => (n, m),
        };
        let x0 = seq64(xl, 1.0);
        let y0 = seq64(yl, 2.0);
        let a = f.alloc_from("a", a0.clone());
        let x = f.alloc_from("x", x0.clone());
        let y = f.alloc_from("y", y0.clone());
        blas::gemv(&f, trans, n, m, 1.3, &a, &x, 0.4, &y, &tuning).unwrap();
        let rtrans = match trans {
            Trans::No => refblas::Trans::No,
            Trans::Yes => refblas::Trans::Yes,
        };
        let mut exp = y0.clone();
        refblas::level2::gemv(rtrans, n, m, 1.3, &a0, &x0, 0.4, &mut exp);
        assert_close64(&y.to_host(), &exp, 1e-9, "gemv f64");
    }

    // Single precision spot check.
    let a0 = seq32(n * m, 6.0);
    let x0 = seq32(m, 7.0);
    let a = f.alloc_from("a32", a0.clone());
    let x = f.alloc_from("x32", x0.clone());
    let y = f.alloc_from("y32", vec![0.0f32; n]);
    blas::gemv(&f, Trans::No, n, m, 1.0f32, &a, &x, 0.0, &y, &tuning).unwrap();
    let mut exp = vec![0.0f32; n];
    refblas::level2::gemv(refblas::Trans::No, n, m, 1.0f32, &a0, &x0, 0.0, &mut exp);
    let got = y.to_host();
    for i in 0..n {
        assert!((got[i] - exp[i]).abs() < 1e-3, "gemv f32 [{i}]");
    }
}

#[test]
fn rank_updates_match_reference() {
    let f = fpga();
    let (n, m) = (19, 13);
    let tuning = GemvTuning::new(5, 4, 2);

    let a0 = seq64(n * m, 0.0);
    let x0 = seq64(n, 1.0);
    let y0 = seq64(m, 2.0);
    let a = f.alloc_from("a", a0.clone());
    let x = f.alloc_from("x", x0.clone());
    let y = f.alloc_from("y", y0.clone());
    blas::ger(&f, n, m, 0.9, &x, &y, &a, &tuning).unwrap();
    let mut exp = a0.clone();
    refblas::level2::ger(n, m, 0.9, &x0, &y0, &mut exp);
    assert_close64(&a.to_host(), &exp, 1e-12, "ger");

    for uplo in [Uplo::Upper, Uplo::Lower] {
        let ruplo = match uplo {
            Uplo::Upper => refblas::Uplo::Upper,
            Uplo::Lower => refblas::Uplo::Lower,
        };
        let s0 = seq64(n * n, 3.0);
        let xs = seq64(n, 4.0);
        let sa = f.alloc_from("sa", s0.clone());
        let sx = f.alloc_from("sx", xs.clone());
        blas::syr(&f, uplo, n, 1.1, &sx, &sa, &tuning).unwrap();
        let mut exp = s0.clone();
        refblas::level2::syr(ruplo, n, 1.1, &xs, &mut exp);
        assert_close64(&sa.to_host(), &exp, 1e-12, "syr");

        let ys = seq64(n, 5.0);
        let s2a = f.alloc_from("s2a", s0.clone());
        let s2x = f.alloc_from("s2x", xs.clone());
        let s2y = f.alloc_from("s2y", ys.clone());
        blas::syr2(&f, uplo, n, 0.8, &s2x, &s2y, &s2a, &tuning).unwrap();
        let mut exp = s0.clone();
        refblas::level2::syr2(ruplo, n, 0.8, &xs, &ys, &mut exp);
        assert_close64(&s2a.to_host(), &exp, 1e-12, "syr2");
    }
}

#[test]
fn trsv_all_cases_match_reference() {
    let f = fpga();
    let n = 14;
    for uplo in [Uplo::Upper, Uplo::Lower] {
        for trans in [Trans::No, Trans::Yes] {
            for diag in [Diag::Unit, Diag::NonUnit] {
                // Well-conditioned triangle in full storage.
                let mut a0 = vec![0.0f64; n * n];
                for i in 0..n {
                    for j in 0..n {
                        let stored = match uplo {
                            Uplo::Upper => j >= i,
                            Uplo::Lower => j <= i,
                        };
                        if stored {
                            a0[i * n + j] = 0.1 + 0.03 * (i + 2 * j) as f64;
                        }
                    }
                    a0[i * n + i] += 2.5;
                }
                let b0 = seq64(n, 6.0);
                let a = f.alloc_from("a", a0.clone());
                let x = f.alloc_from("x", b0.clone());
                blas::trsv(&f, uplo, trans, diag, n, &a, &x, 2).unwrap();
                let (ru, rt, rd) = (
                    match uplo {
                        Uplo::Upper => refblas::Uplo::Upper,
                        Uplo::Lower => refblas::Uplo::Lower,
                    },
                    match trans {
                        Trans::No => refblas::Trans::No,
                        Trans::Yes => refblas::Trans::Yes,
                    },
                    match diag {
                        Diag::Unit => refblas::Diag::Unit,
                        Diag::NonUnit => refblas::Diag::NonUnit,
                    },
                );
                let mut exp = b0.clone();
                refblas::level2::trsv(ru, rt, rd, n, &a0, &mut exp);
                assert_close64(
                    &x.to_host(),
                    &exp,
                    1e-9,
                    &format!("trsv {uplo:?}/{trans:?}/{diag:?}"),
                );
            }
        }
    }
}

#[test]
fn gemm_and_syrk_match_reference() {
    let f = fpga();
    let (n, m, k) = (18, 14, 10);
    let a0 = seq64(n * k, 0.0);
    let b0 = seq64(k * m, 1.0);
    let c0 = seq64(n * m, 2.0);
    let a = f.alloc_from("a", a0.clone());
    let b = f.alloc_from("b", b0.clone());
    let c = f.alloc_from("c", c0.clone());
    blas::gemm(
        &f,
        n,
        m,
        k,
        1.4,
        &a,
        &b,
        0.3,
        &c,
        SystolicShape::new(2, 2),
        4,
        4,
    )
    .unwrap();
    let mut exp = c0.clone();
    refblas::level3::gemm(
        refblas::Trans::No,
        refblas::Trans::No,
        n,
        m,
        k,
        1.4,
        &a0,
        &b0,
        0.3,
        &mut exp,
    );
    assert_close64(&c.to_host(), &exp, 1e-9, "gemm");

    let s0 = seq64(n * n, 3.0);
    let sa0 = seq64(n * k, 4.0);
    let sa = f.alloc_from("sa", sa0.clone());
    let sc = f.alloc_from("sc", s0.clone());
    blas::syrk(
        &f,
        Uplo::Upper,
        Trans::No,
        n,
        k,
        1.0,
        &sa,
        0.5,
        &sc,
        SystolicShape::new(2, 2),
        4,
        4,
    )
    .unwrap();
    let mut exp = s0.clone();
    refblas::level3::syrk(
        refblas::Uplo::Upper,
        refblas::Trans::No,
        n,
        k,
        1.0,
        &sa0,
        0.5,
        &mut exp,
    );
    // Only the triangle is compared; the reference leaves the other
    // triangle as beta-scaled... no: netlib leaves it untouched too.
    let got = sc.to_host();
    for i in 0..n {
        for j in i..n {
            assert!(
                (got[i * n + j] - exp[i * n + j]).abs() < 1e-9,
                "syrk ({i},{j})"
            );
        }
        for j in 0..i {
            assert_eq!(got[i * n + j], s0[i * n + j], "syrk lower untouched");
        }
    }
}

#[test]
fn syr2k_and_trsm_match_reference() {
    let f = fpga();
    let (n, k) = (12, 8);
    let a0 = seq64(n * k, 0.0);
    let b0 = seq64(n * k, 1.0);
    let c0 = seq64(n * n, 2.0);
    let a = f.alloc_from("a", a0.clone());
    let b = f.alloc_from("b", b0.clone());
    let c = f.alloc_from("c", c0.clone());
    blas::syr2k(
        &f,
        Uplo::Lower,
        Trans::No,
        n,
        k,
        0.7,
        &a,
        &b,
        0.2,
        &c,
        SystolicShape::new(2, 2),
        4,
        4,
    )
    .unwrap();
    let mut exp = c0.clone();
    refblas::level3::syr2k(
        refblas::Uplo::Lower,
        refblas::Trans::No,
        n,
        k,
        0.7,
        &a0,
        &b0,
        0.2,
        &mut exp,
    );
    let got = c.to_host();
    for i in 0..n {
        for j in 0..=i {
            assert!(
                (got[i * n + j] - exp[i * n + j]).abs() < 1e-9,
                "syr2k ({i},{j})"
            );
        }
    }

    // TRSM left/upper.
    let (m, nn) = (9, 6);
    let mut tri = vec![0.0f64; m * m];
    for i in 0..m {
        for j in i..m {
            tri[i * m + j] = 0.2 + 0.05 * (i + j) as f64;
        }
        tri[i * m + i] += 2.0;
    }
    let bb0 = seq64(m * nn, 5.0);
    let ta = f.alloc_from("ta", tri.clone());
    let tb = f.alloc_from("tb", bb0.clone());
    blas::trsm(
        &f,
        Side::Left,
        Uplo::Upper,
        Trans::No,
        Diag::NonUnit,
        m,
        nn,
        1.5,
        &ta,
        &tb,
        2,
    )
    .unwrap();
    let mut exp = bb0.clone();
    refblas::level3::trsm(
        refblas::Side::Left,
        refblas::Uplo::Upper,
        refblas::Trans::No,
        refblas::Diag::NonUnit,
        m,
        nn,
        1.5,
        &tri,
        &mut exp,
    );
    assert_close64(&tb.to_host(), &exp, 1e-9, "trsm");
}

#[test]
fn batched_routines_match_reference() {
    let f = fpga();
    let dim = 4;
    let batch = 50;
    let sz = dim * dim;
    let a0 = seq64(batch * sz, 0.0);
    let b0 = seq64(batch * sz, 1.0);
    let c0 = seq64(batch * sz, 2.0);
    let a = f.alloc_from("a", a0.clone());
    let b = f.alloc_from("b", b0.clone());
    let c = f.alloc_from("c", c0.clone());
    blas::gemm_batched(&f, dim, batch, 1.0, &a, &b, 0.5, &c).unwrap();
    let mut exp = c0.clone();
    refblas::batched::gemm_batched(dim, batch, 1.0, &a0, &b0, 0.5, &mut exp, 1);
    assert_close64(&c.to_host(), &exp, 1e-9, "gemm_batched");

    // Batched TRSM on well-conditioned lower triangles.
    let mut tri = vec![0.0f64; batch * sz];
    for p in 0..batch {
        for i in 0..dim {
            for j in 0..=i {
                tri[p * sz + i * dim + j] = 0.1 * (i + j + p % 5) as f64 + 0.3;
            }
            tri[p * sz + i * dim + i] += 2.0;
        }
    }
    let rhs0 = seq64(batch * sz, 3.0);
    let ta = f.alloc_from("ta", tri.clone());
    let tb = f.alloc_from("tb", rhs0.clone());
    blas::trsm_batched(&f, Uplo::Lower, Diag::NonUnit, dim, batch, 1.0, &ta, &tb).unwrap();
    let mut exp = rhs0.clone();
    refblas::batched::trsm_batched(
        refblas::Uplo::Lower,
        refblas::Diag::NonUnit,
        dim,
        batch,
        1.0,
        &tri,
        &mut exp,
        1,
    );
    assert_close64(&tb.to_host(), &exp, 1e-9, "trsm_batched");
}
