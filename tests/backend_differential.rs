//! Keystone differential for the fused *execution* backend.
//!
//! PR 8's `fusion_differential` proved the analysis: every region the
//! analyzer marks fusable evaluates bit-identically to its threaded
//! module chain, in isolation. This suite proves the **backend**: whole
//! programs routed through the real planner and executed end-to-end
//! must be indistinguishable across `Backend::Threaded` and
//! `Backend::Fused` —
//!
//! * every operand buffer and every DOT scalar bit-identical
//!   (`f32::to_bits`),
//! * the analytic model's predicted cycles identical per component
//!   (the `C = L + I·M` model is a property of the plan, not the
//!   backend),
//! * recovery reports byte-stable: hook-armed seeded chaos degrades
//!   fused runs to pure threaded (the `recovery-guards` obligation), so
//!   reports match by construction, and hook-free recovery exercises
//!   the staged write-back over genuinely fused regions.
//!
//! 220 seeded random programs (relay chains, reductions, GEMVs over
//! shared operands) run in four blocks, with a non-vacuity floor on how
//! many actually fused — a differential that never fuses proves
//! nothing.

// Test code may unwrap; the clippy.toml discipline targets library code.
#![allow(clippy::disallowed_methods)]

use std::collections::HashMap;
use std::sync::Arc;

use fblas_chaos::{FaultAction, FaultPlan, FaultSite};
use fblas_core::composition::{
    execute_plan_audited_with_backend, execute_plan_with_recovery_backend,
    fusion_plan_for_component, plan, Backend, Op, Plan, PlannerConfig, Program, RetryPolicy,
};
use fblas_core::host::DeviceBuffer;

// ------------------------------------------------------------------
// Deterministic xorshift64* generator: every failure names its seed.
// ------------------------------------------------------------------

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9e3779b97f4a7c15).max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo + 1)
    }
    fn chance(&mut self, percent: u64) -> bool {
        self.next() % 100 < percent
    }
}

/// Operand shapes the generator declared, so the harness can build
/// seeded buffers without re-deriving them from the program.
struct Shapes {
    /// (name, element count) for every vector and matrix operand.
    buffers: Vec<(String, usize)>,
}

/// A random planner program: 3–7 ops over equal-length vectors. Relays
/// (scal/copy/axpy) chain over the growing operand pool — consecutive
/// relays are what the fusion analysis collapses — with reductions and
/// square GEMVs mixed in (unfusable: they exercise the fused↔threaded
/// handoff at boundary buffers and the planner's component splits).
fn random_program(seed: u64) -> (Program, Shapes, u64) {
    let mut rng = Rng::new(seed);
    let n = rng.range(33, 72) as usize;
    let mut p = Program::new();
    let mut buffers: Vec<(String, usize)> = Vec::new();
    let mut vecs: Vec<String> = Vec::new();
    for i in 0..3 {
        let name = format!("x{i}");
        p.vector(&name, n);
        buffers.push((name.clone(), n));
        vecs.push(name);
    }

    let ops = rng.range(3, 7);
    for oi in 0..ops {
        let pick = |rng: &mut Rng, vecs: &[String]| -> String {
            vecs[(rng.next() % vecs.len() as u64) as usize].clone()
        };
        // Distinct operands for two-input ops: the executor models each
        // (operand, consumer) pair as one channel, so an op reading the
        // same operand on both ports is out of its domain.
        let pick2 = |rng: &mut Rng, vecs: &[String]| -> (String, String) {
            let a = pick(rng, vecs);
            let b = loop {
                let c = pick(rng, vecs);
                if c != a {
                    break c;
                }
            };
            (a, b)
        };
        let out = format!("t{oi}");
        match rng.range(0, 9) {
            0..=2 => {
                let x = pick(&mut rng, &vecs);
                p.vector(&out, n);
                p.op(Op::Scal {
                    alpha: (rng.range(1, 9) as f64) / 2.0,
                    x,
                    out: out.clone(),
                });
            }
            3 => {
                let x = pick(&mut rng, &vecs);
                p.vector(&out, n);
                p.op(Op::Copy {
                    x,
                    out: out.clone(),
                });
            }
            4..=6 => {
                let (x, y) = pick2(&mut rng, &vecs);
                p.vector(&out, n);
                p.op(Op::Axpy {
                    alpha: -((rng.range(1, 9) as f64) / 4.0),
                    x,
                    y,
                    out: out.clone(),
                });
            }
            7 => {
                let (x, y) = pick2(&mut rng, &vecs);
                let sout = format!("s{oi}");
                p.scalar(&sout);
                p.op(Op::Dot { x, y, out: sout });
                continue; // scalar result: no buffer, not in the pool
            }
            _ => {
                let a = format!("A{oi}");
                p.matrix(&a, n, n);
                buffers.push((a.clone(), n * n));
                let x = pick(&mut rng, &vecs);
                let y = rng.chance(40).then(|| pick(&mut rng, &vecs));
                p.vector(&out, n);
                p.op(Op::Gemv {
                    alpha: (rng.range(1, 5) as f64) / 2.0,
                    beta: 1.0,
                    a,
                    transposed: rng.chance(50),
                    x,
                    y,
                    out: out.clone(),
                });
            }
        }
        buffers.push((out.clone(), n));
        vecs.push(out);
    }
    (p, Shapes { buffers }, seed)
}

/// Seeded deterministic buffer content: a function of (seed, name,
/// index) only, so both backends start from identical bits.
fn bind(shapes: &Shapes, seed: u64) -> HashMap<String, DeviceBuffer<f32>> {
    shapes
        .buffers
        .iter()
        .enumerate()
        .map(|(bi, (name, len))| {
            let phase = (seed as f32).mul_add(0.131, bi as f32 * 7.0);
            let data: Vec<f32> = (0..*len)
                .map(|j| ((j as f32 + phase) * 0.2137).sin())
                .collect();
            (name.clone(), DeviceBuffer::from_vec(name, data, bi % 4))
        })
        .collect()
}

/// Everything observable from one end-to-end run, reduced to exact
/// bits: operand buffers (sorted by name), DOT scalars (sorted), and
/// the analytic model's predicted cycles per component.
struct Observed {
    buffer_bits: Vec<(String, Vec<u32>)>,
    scalar_bits: Vec<(String, u32)>,
    predicted_cycles: Vec<u64>,
}

fn run_backend(
    program: &Program,
    planned: &Plan,
    cfg: &PlannerConfig,
    shapes: &Shapes,
    seed: u64,
    backend: Backend,
) -> Observed {
    let bufs = bind(shapes, seed);
    let (out, audits) = execute_plan_audited_with_backend::<f32>(
        program, planned, cfg, &bufs, 200.0e6, 0.25, backend,
    )
    .unwrap_or_else(|e| panic!("seed {seed} {}: {e}", backend.as_str()));
    let mut buffer_bits: Vec<(String, Vec<u32>)> = shapes
        .buffers
        .iter()
        .map(|(name, _)| {
            (
                name.clone(),
                bufs[name].to_host().iter().map(|v| v.to_bits()).collect(),
            )
        })
        .collect();
    buffer_bits.sort();
    let mut scalar_bits: Vec<(String, u32)> = out
        .scalars
        .iter()
        .map(|(k, v)| (k.clone(), v.to_bits()))
        .collect();
    scalar_bits.sort();
    Observed {
        buffer_bits,
        scalar_bits,
        predicted_cycles: audits.iter().map(|a| a.predicted_cycles).collect(),
    }
}

/// Run one seed block; returns how many fused regions the population's
/// plans admitted (legality side, recovery disarmed) for non-vacuity.
fn run_seed_block(seeds: std::ops::Range<u64>, floor_regions: u64) {
    let cfg = PlannerConfig::default();
    let mut regions = 0u64;
    for seed in seeds {
        let (program, shapes, seed) = random_program(seed);
        let planned = plan(&program, &cfg).unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
        for c in &planned.components {
            let (_, fp) = fusion_plan_for_component(&program, c, false);
            regions += fp.regions.len() as u64;
        }
        let threaded = run_backend(&program, &planned, &cfg, &shapes, seed, Backend::Threaded);
        let fused = run_backend(&program, &planned, &cfg, &shapes, seed, Backend::Fused);
        for ((tn, tb), (fn_, fb)) in threaded.buffer_bits.iter().zip(&fused.buffer_bits) {
            assert_eq!(tn, fn_, "seed {seed}: buffer sets differ");
            assert_eq!(tb, fb, "seed {seed}: operand `{tn}` not bit-identical");
        }
        assert_eq!(
            threaded.scalar_bits, fused.scalar_bits,
            "seed {seed}: DOT scalars diverged"
        );
        assert_eq!(
            threaded.predicted_cycles, fused.predicted_cycles,
            "seed {seed}: analytic model diverged across backends"
        );
    }
    assert!(
        regions >= floor_regions,
        "population too thin: {regions} fused regions (< {floor_regions})"
    );
}

// 4 × 55 = 220 seeded programs, split across test threads. Each block
// must admit at least 8 fused regions (≥ 32 total).
#[test]
fn backends_are_bit_identical_block0() {
    run_seed_block(0..55, 8);
}
#[test]
fn backends_are_bit_identical_block1() {
    run_seed_block(55..110, 8);
}
#[test]
fn backends_are_bit_identical_block2() {
    run_seed_block(110..165, 8);
}
#[test]
fn backends_are_bit_identical_block3() {
    run_seed_block(165..220, 8);
}

// ------------------------------------------------------------------
// Recovery under both backends.
// ------------------------------------------------------------------

/// `t = 2·w; z = −t + v; beta-less tail copy` — a fusable chain whose
/// every output channel also exists in the threaded run (fault sites
/// address channels by name, which only the threaded path has).
fn chain_program(n: usize) -> (Program, Shapes) {
    let mut p = Program::new();
    let mut buffers = Vec::new();
    for name in ["w", "v"] {
        p.vector(name, n);
        buffers.push((name.to_string(), n));
    }
    for name in ["t", "z", "d"] {
        p.vector(name, n);
        buffers.push((name.to_string(), n));
    }
    p.op(Op::Scal {
        alpha: 2.0,
        x: "w".into(),
        out: "t".into(),
    });
    p.op(Op::Axpy {
        alpha: -1.0,
        x: "t".into(),
        y: "v".into(),
        out: "z".into(),
    });
    p.op(Op::Copy {
        x: "z".into(),
        out: "d".into(),
    });
    (p, Shapes { buffers })
}

fn recovery_run(backend: Backend, with_hook: bool) -> (String, Vec<(String, Vec<u32>)>) {
    let n = 96;
    let (program, shapes) = chain_program(n);
    let cfg = PlannerConfig::default();
    let planned = plan(&program, &cfg).unwrap();
    let bufs = bind(&shapes, 41);
    let hook = with_hook.then(|| {
        Arc::new(FaultPlan::new(Some(1234)).channel_fault(
            FaultSite::Push,
            "write_z",
            7,
            FaultAction::Corrupt { bit: 5 },
        )) as Arc<dyn fblas_hlssim::FaultHook>
    });
    let (_, report) = execute_plan_with_recovery_backend::<f32>(
        &program,
        &planned,
        &cfg,
        &bufs,
        &RetryPolicy {
            max_attempts: 4,
            ..RetryPolicy::default()
        },
        hook,
        None,
        backend,
    )
    .expect("recovers within budget");
    let mut bits: Vec<(String, Vec<u32>)> = shapes
        .buffers
        .iter()
        .map(|(name, _)| {
            (
                name.clone(),
                bufs[name].to_host().iter().map(|v| v.to_bits()).collect(),
            )
        })
        .collect();
    bits.sort();
    (serde_json::to_string(&report).unwrap(), bits)
}

/// Seeded chaos: the armed hook makes the fusion analysis reject every
/// region (`recovery-guards`), so the fused backend's injected attempts
/// run fully threaded and its deterministic recovery report must be
/// *byte*-identical to the threaded backend's.
#[test]
fn seeded_chaos_recovery_reports_are_byte_identical_across_backends() {
    let (rep_t, out_t) = recovery_run(Backend::Threaded, true);
    let (rep_f, out_f) = recovery_run(Backend::Fused, true);
    assert_eq!(rep_t, rep_f, "recovery reports diverged across backends");
    assert_eq!(out_t, out_f, "recovered outputs diverged across backends");
}

/// Hook-free recovery still stages and commits transactionally; with
/// the fused backend the component actually fuses, so this exercises
/// the staged write-back (and staged-overlay reads) over a real fused
/// region — outputs and reports must match the threaded run exactly.
#[test]
fn hook_free_recovery_is_bit_identical_across_backends() {
    let (rep_t, out_t) = recovery_run(Backend::Threaded, false);
    let (rep_f, out_f) = recovery_run(Backend::Fused, false);
    assert_eq!(rep_t, rep_f, "recovery reports diverged across backends");
    assert_eq!(out_t, out_f, "committed outputs diverged across backends");
}
