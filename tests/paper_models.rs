//! Integration: the paper's analytical claims, checked end to end
//! against the implemented models (Sections III–V, Tables I–II).

#![allow(clippy::needless_range_loop)] // explicit indices mirror the math

use fblas_arch::{
    design_overhead, estimate_circuit, optimal_width, optimal_width_tiled, CircuitClass, Device,
    FrequencyModel, Precision, RoutineClass,
};
use fblas_core::routines::gemm::{Gemm, SystolicShape};
use fblas_core::routines::{Dot, Scal};
use fblas_core::tiling::{gemv_io_tiles_by_cols, gemv_io_tiles_by_rows};
use fblas_hlssim::{CompositionCost, PipelineCost};

/// Paper Table I: SCAL resources are exactly linear in W with the
/// published coefficients; DOT tracks them within tolerance.
#[test]
fn table1_reproduction() {
    for (w, luts, ffs, dsps) in [
        (2u64, 98, 192, 2u64),
        (16, 784, 1536, 16),
        (64, 3136, 6144, 64),
    ] {
        let e = Scal::new(1024, w as usize).estimate::<f32>();
        assert_eq!(e.luts, luts);
        assert_eq!(e.resources.ffs, ffs);
        assert_eq!(e.resources.dsps, dsps);
        assert_eq!(e.latency, 50);
    }
    for (w, dsps, lat) in [(2usize, 2u64, 82u64), (16, 16, 93), (64, 64, 105)] {
        let e = Dot::new(1024, w).estimate::<f32>();
        assert_eq!(e.resources.dsps, dsps);
        assert!((e.latency as i64 - lat as i64).unsigned_abs() <= 4);
    }
}

/// Paper Table II: device resources as published.
#[test]
fn table2_reproduction() {
    let a = Device::Arria10Gx1150.model();
    assert_eq!((a.total.alms, a.total.dsps), (427_000, 1_518));
    assert_eq!(a.dram_banks, 2);
    let s = Device::Stratix10Gx2800.model();
    assert_eq!((s.total.alms, s.total.dsps), (933_000, 5_760));
    assert_eq!((s.available.alms, s.available.dsps), (692_000, 4_468));
    assert_eq!(s.dram_banks, 4);
    assert!((s.dram_bank_bandwidth - 19.2e9).abs() < 1.0);
}

/// Sec. IV-A: `C = L + I·M`, and doubling W halves the iteration count
/// while only adding one adder level of latency for DOT.
#[test]
fn cycle_model_scaling() {
    let n = 1 << 20;
    let c64 = Dot::new(n, 64).cost::<f32>();
    let c128 = Dot::new(n, 128).cost::<f32>();
    assert_eq!(c64.iterations, 2 * c128.iterations);
    assert!(c128.latency > c64.latency);
    assert!(c128.latency - c64.latency <= 8);
    assert!(c128.cycles() < c64.cycles());
}

/// Sec. IV-B: the optimal-width formulas, including the tiled GEMV
/// doubling.
#[test]
fn optimal_width_formulas() {
    let b = 19.2e9;
    let f = 300.0e6;
    assert_eq!(optimal_width(b, f, Precision::Single, 2), 8);
    assert_eq!(optimal_width(b, f, Precision::Single, 1), 16);
    assert_eq!(optimal_width(b, f, Precision::Double, 2), 4);
    let untiled = optimal_width(b, f, Precision::Single, 2);
    let tiled = optimal_width_tiled(b, f, Precision::Single, 1 << 20);
    assert_eq!(
        tiled,
        2 * untiled,
        "large tiles double the affordable width"
    );
}

/// Sec. III-B: GEMV I/O complexities and the crossover between the two
/// tilings.
#[test]
fn gemv_io_complexities() {
    let (n, m) = (4096usize, 4096usize);
    for t in [64usize, 256, 1024] {
        assert_eq!(
            gemv_io_tiles_by_rows(n, m, t),
            (n * m + m * n.div_ceil(t) + 2 * n) as u64
        );
        assert_eq!(
            gemv_io_tiles_by_cols(n, m, t),
            (n * m + m + 2 * n * m.div_ceil(t)) as u64
        );
    }
    // For square problems and equal tiles the two are comparable; for a
    // wide matrix (m >> n) the by-rows variant moves less data.
    let wide_rows = gemv_io_tiles_by_rows(64, 1 << 20, 64);
    let wide_cols = gemv_io_tiles_by_cols(64, 1 << 20, 64);
    assert!(wide_rows < wide_cols);
}

/// Sec. V-A: streaming composition reduces AXPYDOT's completion from 3N
/// to N (plus latencies), i.e. speedup → 3 in the cycle model.
#[test]
fn composition_cycle_reduction() {
    let n = 10_000_000u64;
    let copy = PipelineCost::pipelined(50, n);
    let axpy = PipelineCost::pipelined(56, n);
    let dot = PipelineCost::pipelined(90, n);
    let cc = CompositionCost::of(&[copy, axpy, dot]);
    let speedup = cc.speedup();
    assert!((speedup - 3.0).abs() < 1e-4, "speedup {speedup}");
}

/// Sec. VI-B: systolic array sizes of the paper fit their devices, and
/// the peak throughput reproduces the published 1.28 Tflop/s within
/// modeling tolerance.
#[test]
fn systolic_peak_performance() {
    // Stratix 40x80 single precision, largest memory tiles of Fig. 10.
    let shape = SystolicShape::new(40, 80);
    let g = Gemm::new(4800, 4800, 4800, shape, 480, 960);
    let est = g.estimate::<f32>();
    let dev = Device::Stratix10Gx2800.model();
    let total = est.resources + design_overhead(Device::Stratix10Gx2800, false);
    assert!(
        dev.fits(&total),
        "paper's largest SGEMM must place: {total}"
    );

    let util = total.max_utilization(&dev.available);
    let (freq, hf) = FrequencyModel::new(Device::Stratix10Gx2800).achieved_hz(
        RoutineClass::Systolic,
        true,
        util,
    );
    assert!(!hf, "GEMM could not use HyperFlex in the paper");
    let secs = g.cost::<f32>().cycles() as f64 / freq;
    let tflops = g.flops() as f64 / secs / 1e12;
    // Paper: 1.28 Tflop/s measured (93% of its 1.38 expected). Our
    // frequency model lands at ~230 MHz vs the measured 216 MHz, so the
    // modeled peak sits ~13% above — same order, same shape.
    assert!(
        tflops > 1.0 && tflops < 1.55,
        "peak {tflops} Tflop/s vs paper 1.28"
    );

    // The double-precision array is capped at 16x16 by DSP demand: a
    // 40x80 f64 array cannot place.
    let big_d = estimate_circuit(
        CircuitClass::Systolic { rows: 40, cols: 80 },
        Precision::Double,
    );
    assert!(!dev.fits(&big_d.resources), "f64 40x80 exceeds the device");
    let ok_d = estimate_circuit(
        CircuitClass::Systolic { rows: 16, cols: 16 },
        Precision::Double,
    );
    let total_d = ok_d.resources + design_overhead(Device::Stratix10Gx2800, false);
    assert!(dev.fits(&total_d), "f64 16x16 places (paper's choice)");
}

/// Sec. VI-B: the paper's Arria systolic sizes also place on the Arria.
#[test]
fn arria_systolic_sizes_place() {
    let dev = Device::Arria10Gx1150.model();
    let s32 = estimate_circuit(
        CircuitClass::Systolic { rows: 32, cols: 32 },
        Precision::Single,
    );
    let total = s32.resources + design_overhead(Device::Arria10Gx1150, false);
    assert!(dev.fits(&total), "Arria SGEMM 32x32: {total}");
    let d16x8 = estimate_circuit(
        CircuitClass::Systolic { rows: 16, cols: 8 },
        Precision::Double,
    );
    let total = d16x8.resources + design_overhead(Device::Arria10Gx1150, false);
    assert!(dev.fits(&total), "Arria DGEMM 16x8: {total}");
}

/// Fig. 10 (right): efficiency increases monotonically with the
/// compute/memory tile ratio and approaches 1.
#[test]
fn gemm_tile_ratio_monotonicity() {
    let shape = SystolicShape::new(8, 8);
    let mut last = 0.0;
    for ratio in [1usize, 2, 3, 4, 6, 8, 12] {
        let g = Gemm::new(2048, 2048, 2048, shape, 8 * ratio, 8 * ratio);
        let e = g.efficiency();
        assert!(e > last, "efficiency must grow with ratio");
        last = e;
    }
    assert!(last > 0.97);
}
