//! Differential validation of the static analyzer against the threaded
//! simulator.
//!
//! The linter's deadlock verdicts come from an abstract scheduler
//! (`fblas_core::composition::rates`); the simulator runs real threads
//! with blocking bounded FIFOs and a stall watchdog. Kahn-network
//! determinism says the two must agree on every composition:
//!
//! * lint **accept** ⟺ the simulation **completes**;
//! * lint **deadlock** ⟺ the watchdog reports a **stall**;
//! * every reported minimum channel depth is **exact** — the depth
//!   completes and depth − 1 stalls.
//!
//! The generated population is seeded and deterministic, so a failure
//! here reproduces byte-for-byte.

// Test/example code may unwrap; the clippy.toml discipline targets
// library code.
#![allow(clippy::disallowed_methods)]

use std::collections::HashMap;

use fblas_core::composition::{execute_plan, plan, Mdag, RateGraph, RateOutcome, RateStep};
use fblas_core::host::DeviceBuffer;
use fblas_lint::harness::{differential_grace, run_on_simulator, SimVerdict};
use fblas_lint::input::Document;
use fblas_lint::{classify, lint_json, LintCode};

// ------------------------------------------------------------------
// Deterministic xorshift64* generator — no external crates, and no
// time-based seeding: every failure names its seed.
// ------------------------------------------------------------------

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9e3779b97f4a7c15).max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }
    /// Uniform in `lo..=hi`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo + 1)
    }
}

// ------------------------------------------------------------------
// Random balanced stream graphs.
// ------------------------------------------------------------------

/// A random DAG of 2–5 actors: a chain plus up to two forward "skip"
/// edges, each edge carrying a balanced element total with random
/// chunked interleavings on both endpoints. Balance means the only
/// possible outcomes are completion and capacity/ordering deadlock —
/// exactly the property the linter rules on.
fn random_graph(seed: u64) -> RateGraph {
    let mut rng = Rng::new(seed);
    let n = rng.range(2, 5) as usize;
    let mut edges: Vec<(usize, usize, u64)> = Vec::new();
    for i in 0..n - 1 {
        edges.push((i, i + 1, rng.range(1, 6) * rng.range(1, 4)));
    }
    for _ in 0..rng.range(0, 2) {
        let a = rng.range(0, (n - 2) as u64) as usize;
        let b = rng.range((a + 1) as u64, (n - 1) as u64) as usize;
        edges.push((a, b, rng.range(1, 12)));
    }

    let mut rg = RateGraph::new();
    let chans: Vec<usize> = edges
        .iter()
        .enumerate()
        .map(|(i, _)| rg.add_channel(format!("c{i}"), rng.range(1, 6)))
        .collect();

    for a in 0..n {
        // (channel, is_push, remaining)
        let mut ports: Vec<(usize, bool, u64)> = Vec::new();
        for (i, &(f, t, total)) in edges.iter().enumerate() {
            if f == a {
                ports.push((chans[i], true, total));
            }
            if t == a {
                ports.push((chans[i], false, total));
            }
        }
        let mut steps = Vec::new();
        while ports.iter().any(|p| p.2 > 0) {
            let live: Vec<usize> = ports
                .iter()
                .enumerate()
                .filter(|(_, p)| p.2 > 0)
                .map(|(k, _)| k)
                .collect();
            let k = live[(rng.next() % live.len() as u64) as usize];
            let chunk = rng.range(1, 4).min(ports[k].2);
            ports[k].2 -= chunk;
            let (channel, is_push, _) = ports[k];
            steps.push(if is_push {
                RateStep::Push {
                    channel,
                    count: chunk,
                }
            } else {
                RateStep::Pop {
                    channel,
                    count: chunk,
                }
            });
        }
        rg.add_actor(format!("a{a}"), steps);
    }
    rg
}

/// Assert the abstract verdict and the simulator verdict agree for one
/// graph at its configured capacities.
fn assert_agreement(rg: &RateGraph, seed: u64) -> bool {
    let caps: Vec<u64> = (0..rg.channel_count()).map(|c| rg.capacity(c)).collect();
    let abstracted = rg.analyze();
    let simulated = run_on_simulator(rg, &caps, differential_grace());
    match (&abstracted, &simulated) {
        (RateOutcome::Completed { .. }, SimVerdict::Completed) => true,
        (RateOutcome::Deadlock { .. }, SimVerdict::Stalled) => false,
        (a, s) => panic!("seed {seed}: analyzer said {a:?}, simulator said {s:?}"),
    }
}

fn run_seed_block(seeds: std::ops::Range<u64>) {
    let (mut completed, mut deadlocked) = (0u32, 0u32);
    for seed in seeds {
        let rg = random_graph(seed);
        if assert_agreement(&rg, seed) {
            completed += 1;
        } else {
            deadlocked += 1;
        }
    }
    // The population must exercise both verdicts, or the test is vacuous.
    assert!(completed > 0, "population never completed");
    assert!(deadlocked > 0, "population never deadlocked");
}

// 4 × 60 = 240 generated compositions, split so the harness runs the
// blocks on separate test threads.
#[test]
fn generated_graphs_agree_block0() {
    run_seed_block(0..60);
}
#[test]
fn generated_graphs_agree_block1() {
    run_seed_block(60..120);
}
#[test]
fn generated_graphs_agree_block2() {
    run_seed_block(120..180);
}
#[test]
fn generated_graphs_agree_block3() {
    run_seed_block(180..240);
}

// ------------------------------------------------------------------
// Minimum-depth exactness.
// ------------------------------------------------------------------

#[test]
fn reported_min_depths_are_exact() {
    let mut repairable = 0u32;
    let mut simulated = 0u32;
    for seed in 1000..1400 {
        if repairable >= 40 {
            break;
        }
        let rg = random_graph(seed);
        if rg.analyze().is_completed() {
            continue;
        }
        let Some(fixes) = rg.repair() else {
            continue; // unrepairable deadlocks are covered by the blocks above
        };
        repairable += 1;
        let orig: Vec<u64> = (0..rg.channel_count()).map(|c| rg.capacity(c)).collect();
        let mut fixed = orig.clone();
        for &(ch, depth) in &fixes {
            fixed[ch] = depth;
        }
        // Abstract exactness for every repaired channel.
        assert!(
            rg.analyze_with(&fixed).is_completed(),
            "seed {seed}: repaired capacities must complete"
        );
        for &(ch, depth) in &fixes {
            assert!(depth > orig[ch], "seed {seed}: repair must raise capacity");
            let mut lowered = fixed.clone();
            lowered[ch] = depth - 1;
            assert!(
                !rg.analyze_with(&lowered).is_completed(),
                "seed {seed}: channel {ch} at depth {} must still deadlock",
                depth - 1
            );
        }
        // Simulator-side exactness on a bounded subset: the repaired
        // depths complete, and shaving one element off any single
        // repaired channel stalls.
        if simulated < 8 {
            simulated += 1;
            assert_eq!(
                run_on_simulator(&rg, &fixed, differential_grace()),
                SimVerdict::Completed,
                "seed {seed}: simulator at repaired depths"
            );
            for &(ch, depth) in &fixes {
                let mut lowered = fixed.clone();
                lowered[ch] = depth - 1;
                assert_eq!(
                    run_on_simulator(&rg, &lowered, differential_grace()),
                    SimVerdict::Stalled,
                    "seed {seed}: simulator with channel {ch} one short"
                );
            }
        }
    }
    assert!(repairable >= 20, "too few repairable cases: {repairable}");
    assert!(simulated >= 8, "too few simulated subsets: {simulated}");
}

// ------------------------------------------------------------------
// Fixture differentials: the paper's shapes, via Mdag → RateGraph.
// ------------------------------------------------------------------

/// ATAX in miniature: a burst edge (the matrix re-read) next to a
/// direct path, undersized. Both analyses must reject it, and the
/// repaired depths must run on the simulator.
#[test]
fn fixture_atax_shallow_repairs_and_runs() {
    let mut g = Mdag::new();
    let src = g.add_interface("read_a");
    let relay = g.add_compute("gemv");
    let join = g.add_compute("gemv_t");
    let burst = g.add_edge(src, join, 96, 96, 8);
    g.set_burst_before_consume(burst, 40);
    g.add_edge(src, relay, 96, 96, 16);
    g.add_edge(relay, join, 96, 96, 16);

    let rg = RateGraph::from_mdag(&g);
    let caps: Vec<u64> = (0..rg.channel_count()).map(|c| rg.capacity(c)).collect();
    assert!(matches!(rg.analyze(), RateOutcome::Deadlock { .. }));
    assert_eq!(
        run_on_simulator(&rg, &caps, differential_grace()),
        SimVerdict::Stalled
    );

    let fixes = rg.repair().expect("depth-repairable");
    assert!(
        fixes
            .iter()
            .any(|&(ch, depth)| { depth == 40 && rg.channel_name(ch).contains("gemv_t") }),
        "burst edge must need exactly the burst depth: {fixes:?}"
    );
    let mut fixed = caps;
    for (ch, depth) in fixes {
        fixed[ch] = depth;
    }
    assert_eq!(
        run_on_simulator(&rg, &fixed, differential_grace()),
        SimVerdict::Completed
    );
}

/// Two parallel edges between the same pair where one carries a burst:
/// the case the multitree heuristic misses — the sibling edge needs
/// deepening too.
#[test]
fn fixture_multi_edge_burst_agrees() {
    let mut g = Mdag::new();
    let a = g.add_interface("a");
    let b = g.add_compute("b");
    g.add_edge(a, b, 32, 32, 16);
    let bursty = g.add_edge(a, b, 32, 32, 8);
    g.set_burst_before_consume(bursty, 24);

    let rg = RateGraph::from_mdag(&g);
    let caps: Vec<u64> = (0..rg.channel_count()).map(|c| rg.capacity(c)).collect();
    assert!(matches!(rg.analyze(), RateOutcome::Deadlock { .. }));
    assert_eq!(
        run_on_simulator(&rg, &caps, differential_grace()),
        SimVerdict::Stalled
    );
    let fixes = rg.repair().expect("repairable");
    let mut fixed = caps;
    for (ch, depth) in fixes {
        fixed[ch] = depth;
    }
    assert_eq!(
        run_on_simulator(&rg, &fixed, differential_grace()),
        SimVerdict::Completed
    );
}

/// AXPYDOT's stream shape is a plain multitree — both sides accept it
/// as-is.
#[test]
fn fixture_axpydot_completes_on_both() {
    let n = 64;
    let mut g = Mdag::new();
    let rw = g.add_interface("read_w");
    let rv = g.add_interface("read_v");
    let ru = g.add_interface("read_u");
    let axpy = g.add_compute("axpy");
    let dot = g.add_compute("dot");
    let wr = g.add_interface("write_beta");
    g.add_edge(rw, axpy, n, n, 4);
    g.add_edge(rv, axpy, n, n, 4);
    g.add_edge(axpy, dot, n, n, 4);
    g.add_edge(ru, dot, n, n, 4);
    g.add_edge(dot, wr, 1, 1, 1);

    let rg = RateGraph::from_mdag(&g);
    let caps: Vec<u64> = (0..rg.channel_count()).map(|c| rg.capacity(c)).collect();
    assert!(rg.analyze().is_completed());
    assert_eq!(
        run_on_simulator(&rg, &caps, differential_grace()),
        SimVerdict::Completed
    );
}

// ------------------------------------------------------------------
// Program level: a lint *accept* must execute end-to-end, a lint
// *reject* must map to a planner failure.
// ------------------------------------------------------------------

const AXPYDOT_JSON: &str = r#"{"program": {
    "operands": [
        {"name":"w","kind":"vector","len":48},
        {"name":"v","kind":"vector","len":48},
        {"name":"u","kind":"vector","len":48},
        {"name":"z","kind":"vector","len":48},
        {"name":"beta","kind":"scalar"}
    ],
    "ops": [
        {"op":"axpy","alpha":-1.0,"x":"v","y":"w","out":"z"},
        {"op":"dot","x":"z","y":"u","out":"beta"}
    ],
    "config": {"tn":8,"tm":8}
}}"#;

#[test]
fn accepted_program_executes_on_the_simulator() {
    let report = lint_json(AXPYDOT_JSON, "axpydot.json");
    assert!(report.accepted(), "{}", report.render_table());

    let Document::Program(doc) = classify(AXPYDOT_JSON).unwrap() else {
        panic!("axpydot fixture must classify as a program");
    };
    let program = doc.to_program().unwrap();
    let cfg = doc.config.planner_config();
    let the_plan = plan(&program, &cfg).unwrap();

    let n = 48;
    let mk = |name: &str, seed: f64| {
        let data: Vec<f64> = (0..n).map(|i| ((i as f64 + seed) * 0.37).sin()).collect();
        DeviceBuffer::from_vec(name, data, 0)
    };
    let mut bufs: HashMap<String, DeviceBuffer<f64>> = HashMap::new();
    bufs.insert("w".into(), mk("w", 0.0));
    bufs.insert("v".into(), mk("v", 1.0));
    bufs.insert("u".into(), mk("u", 2.0));
    bufs.insert("z".into(), DeviceBuffer::from_vec("z", vec![0.0; n], 0));

    let out = execute_plan::<f64>(&program, &the_plan, &cfg, &bufs)
        .expect("lint-accepted program must execute");
    assert!(out.scalars.contains_key("beta"));
}

#[test]
fn rejected_program_fails_both_lint_and_plan() {
    let bad = r#"{"program": {
        "operands": [
            {"name":"x","kind":"vector","len":8},
            {"name":"y","kind":"vector","len":9},
            {"name":"d","kind":"scalar"}
        ],
        "ops": [{"op":"dot","x":"x","y":"y","out":"d"}]
    }}"#;
    let report = lint_json(bad, "bad.json");
    assert!(!report.accepted());
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.code == LintCode::FL0007));

    let Document::Program(doc) = classify(bad).unwrap() else {
        panic!("fixture must classify as a program");
    };
    let program = doc.to_program().unwrap();
    assert!(plan(&program, &doc.config.planner_config()).is_err());
}
